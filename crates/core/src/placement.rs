//! Mapping pipeline stages onto SCC cores for the three arrangements
//! (§IV-A, Figures 3–5).
//!
//! * **Unordered** — stages take consecutive SCC core ids, so pipelines can
//!   wrap around mesh rows mid-pipeline (Figure 3).
//! * **Ordered** — each pipeline is laid left-to-right along one mesh row,
//!   giving a one-way communication flow (Figure 4).
//! * **Flipped** — ordered, but every second pipeline runs right-to-left to
//!   spread the expensive front stages across both ends (and hence both
//!   memory-controller columns) of the die (Figure 5).

use crate::spec::{Arrangement, RendererMode, StageKind};
use scc_sim::topology::{CoreId, TileId, CORES_PER_TILE, MESH_H, MESH_W, NUM_CORES};
use std::collections::HashSet;

/// Extra DOALL replica cores the scheduler assigned to one replicated
/// stage of one lane (the primary stays in [`Placement::pipelines`];
/// frame `f` runs on replica `f mod (1 + extras.len())`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSlot {
    /// Which lane the replicas belong to.
    pub pipeline: u32,
    /// Which of the five filter stages is replicated (0-based).
    pub stage: usize,
    /// The replica cores beyond the primary, in replica order.
    pub extras: Vec<CoreId>,
}

/// Where every stage of a run lives.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Render cores: one (SingleRenderer), `p` (PerPipelineRenderer) or
    /// none (McpcRenderer).
    pub renderers: Vec<CoreId>,
    /// Connector core for the MCPC configuration.
    pub connector: Option<CoreId>,
    /// `pipelines[i]` = the five filter cores of pipeline `i` in stage
    /// order (sepia, blur, scratch, flicker, swap). Scheduler-produced
    /// placements may *merge* adjacent stages onto one core, in which
    /// case the core id repeats across those (contiguous) slots.
    pub pipelines: Vec<[CoreId; 5]>,
    /// Replica cores for scheduler-replicated stages. Empty for the
    /// fixed arrangements.
    pub replicas: Vec<ReplicaSlot>,
    /// The single transfer core.
    pub transfer: CoreId,
}

impl Placement {
    /// Every core used, each exactly once, in a deterministic order
    /// (merged stages contribute their shared core once).
    pub fn all_cores(&self) -> Vec<CoreId> {
        let mut v = Vec::new();
        let mut seen = HashSet::new();
        let mut push = |v: &mut Vec<CoreId>, c: CoreId| {
            if seen.insert(c) {
                v.push(c);
            }
        };
        for &c in &self.renderers {
            push(&mut v, c);
        }
        if let Some(c) = self.connector {
            push(&mut v, c);
        }
        for p in &self.pipelines {
            for &c in p {
                push(&mut v, c);
            }
        }
        for r in &self.replicas {
            for &c in &r.extras {
                push(&mut v, c);
            }
        }
        push(&mut v, self.transfer);
        v
    }

    /// Replica cores of stage `j` in lane `lane` beyond the primary
    /// (empty for fixed placements).
    pub fn replica_extras(&self, lane: u32, stage: usize) -> &[CoreId] {
        self.replicas
            .iter()
            .find(|r| r.pipeline == lane && r.stage == stage)
            .map_or(&[], |r| r.extras.as_slice())
    }

    /// The deterministic spare-core pool: every core the placement left
    /// unused, in SCC core-id order. The paper's 48-core mesh rarely has
    /// every core enlisted; the supervisor migrates a failed stage onto
    /// the first spare. Deliberately *not* part of [`Self::all_cores`] —
    /// spares idle (no spin-wait power, no heartbeats) until enlisted.
    pub fn spare_pool(&self) -> Vec<CoreId> {
        let used: HashSet<CoreId> = self.all_cores().into_iter().collect();
        CoreId::all().filter(|c| !used.contains(c)).collect()
    }

    /// The stage living on `core`, if any.
    pub fn stage_at(&self, core: CoreId) -> Option<(StageKind, Option<u32>)> {
        if self.renderers.contains(&core) {
            let pl = (self.renderers.len() > 1)
                .then(|| self.renderers.iter().position(|c| *c == core).unwrap() as u32);
            return Some((StageKind::Render, pl));
        }
        if self.connector == Some(core) {
            return Some((StageKind::Connect, None));
        }
        if core == self.transfer {
            return Some((StageKind::Transfer, None));
        }
        for (i, p) in self.pipelines.iter().enumerate() {
            if let Some(j) = p.iter().position(|c| *c == core) {
                return Some((StageKind::PIPELINE_FILTERS[j], Some(i as u32)));
            }
        }
        for r in &self.replicas {
            if r.extras.contains(&core) {
                return Some((StageKind::PIPELINE_FILTERS[r.stage], Some(r.pipeline)));
            }
        }
        None
    }

    pub(crate) fn assert_valid(&self) {
        // Endpoints and replica extras must be globally unique; a lane
        // core may repeat, but only across *contiguous* stage slots of
        // the same lane (a scheduler merge), never between lanes or
        // with an endpoint.
        let mut singular: HashSet<CoreId> = HashSet::new();
        for &c in self
            .renderers
            .iter()
            .chain(self.connector.iter())
            .chain(self.replicas.iter().flat_map(|r| r.extras.iter()))
            .chain(std::iter::once(&self.transfer))
        {
            assert!(singular.insert(c), "placement assigns {c} twice");
        }
        let mut lane_owner: std::collections::HashMap<CoreId, (usize, usize)> =
            std::collections::HashMap::new();
        for (i, lane) in self.pipelines.iter().enumerate() {
            for (j, &c) in lane.iter().enumerate() {
                assert!(!singular.contains(&c), "placement assigns {c} twice");
                match lane_owner.get(&c) {
                    None => {
                        lane_owner.insert(c, (i, j));
                    }
                    Some(&(li, lj)) => {
                        assert!(
                            li == i && lj + 1 == j,
                            "placement assigns {c} twice (non-contiguous reuse)"
                        );
                        lane_owner.insert(c, (i, j));
                    }
                }
            }
        }
    }
}

/// Core at mesh position (`x`,`y`), slot `slot`.
fn core_at(x: u8, y: u8, slot: u8) -> CoreId {
    CoreId::new(TileId::from_xy(x, y).raw() * CORES_PER_TILE + slot)
}

/// Compute the placement for `p` pipelines of `mode` under `arrangement`.
///
/// Panics if the configuration does not fit the chip; validate the
/// [`crate::spec::RunConfig`] first.
pub fn place(mode: RendererMode, arrangement: Arrangement, p: u32) -> Placement {
    assert!(p >= 1, "need at least one pipeline");
    assert!(
        mode.cores_needed(p) <= NUM_CORES as u32,
        "{p} pipelines of {mode:?} exceed 48 cores"
    );
    let placement = match arrangement {
        Arrangement::Unordered => place_unordered(mode, p),
        Arrangement::Ordered => place_rows(mode, p, false),
        Arrangement::Flipped => place_rows(mode, p, true),
    };
    placement.assert_valid();
    placement
}

/// Sequential core-id assignment (the SCC's natural processor order).
fn place_unordered(mode: RendererMode, p: u32) -> Placement {
    let mut next = 0u8;
    let mut take = || {
        let c = CoreId::new(next);
        next += 1;
        c
    };
    let mut renderers = Vec::new();
    let mut connector = None;
    let mut pipelines = Vec::new();
    match mode {
        RendererMode::SingleRenderer => {
            renderers.push(take());
            for _ in 0..p {
                pipelines.push([take(), take(), take(), take(), take()]);
            }
        }
        RendererMode::PerPipelineRenderer => {
            for _ in 0..p {
                renderers.push(take());
                pipelines.push([take(), take(), take(), take(), take()]);
            }
        }
        RendererMode::McpcRenderer => {
            connector = Some(take());
            for _ in 0..p {
                pipelines.push([take(), take(), take(), take(), take()]);
            }
        }
    }
    Placement {
        renderers,
        connector,
        pipelines,
        replicas: Vec::new(),
        transfer: take(),
    }
}

/// Row-parallel placement, optionally flipping every second pipeline.
fn place_rows(mode: RendererMode, p: u32, flip: bool) -> Placement {
    let mut used = [false; NUM_CORES as usize];
    let mut claim = |c: CoreId| {
        assert!(!used[c.index()], "double booking {c}");
        used[c.index()] = true;
        c
    };

    // Stages per pipeline laid along a row: 6 with a private renderer,
    // 5 otherwise.
    let per_pipeline_render = mode == RendererMode::PerPipelineRenderer;
    let row_len: u8 = if per_pipeline_render { 6 } else { 5 };

    let mut renderers = Vec::new();
    let mut pipelines = Vec::new();
    for i in 0..p {
        let y = (i % MESH_H as u32) as u8;
        let slot = (i / MESH_H as u32) as u8;
        let mut cores = Vec::with_capacity(row_len as usize);
        if slot < CORES_PER_TILE {
            for j in 0..row_len {
                let x = if flip && i % 2 == 1 {
                    row_len - 1 - j
                } else {
                    j
                };
                cores.push(claim(core_at(x, y, slot)));
            }
        } else {
            // Beyond two full layers of rows (only reachable for the
            // 9-pipeline corner of the connector/single modes): use the
            // spare east column, wrapping over its tiles.
            for j in 0..row_len {
                let jj = if flip && i % 2 == 1 {
                    row_len - 1 - j
                } else {
                    j
                };
                let tile_y = jj % MESH_H;
                let s = jj / MESH_H;
                cores.push(claim(core_at(MESH_W - 1, tile_y, s)));
            }
        }
        if per_pipeline_render {
            renderers.push(cores.remove(0));
        }
        pipelines.push([cores[0], cores[1], cores[2], cores[3], cores[4]]);
    }

    // Place source/sink in the spare east column if free, else scan.
    let fallback = move |used: &mut [bool; NUM_CORES as usize], prefer: &[CoreId]| -> CoreId {
        for c in prefer {
            if !used[c.index()] {
                used[c.index()] = true;
                return *c;
            }
        }
        for i in 0..NUM_CORES {
            let c = CoreId::new(i);
            if !used[c.index()] {
                used[c.index()] = true;
                return c;
            }
        }
        unreachable!("no free core despite budget check")
    };

    let east = MESH_W - 1;
    let prefer_src = [
        core_at(east, 0, 0),
        core_at(east, 0, 1),
        core_at(east, 1, 0),
        core_at(east, 1, 1),
    ];
    let prefer_sink = [
        core_at(east, MESH_H - 1, 0),
        core_at(east, MESH_H - 1, 1),
        core_at(east, MESH_H - 2, 0),
        core_at(east, MESH_H - 2, 1),
    ];

    let mut connector = None;
    match mode {
        RendererMode::SingleRenderer => {
            renderers.push(fallback(&mut used, &prefer_src));
        }
        RendererMode::McpcRenderer => {
            connector = Some(fallback(&mut used, &prefer_src));
        }
        RendererMode::PerPipelineRenderer => {}
    }
    let transfer = fallback(&mut used, &prefer_sink);

    Placement {
        renderers,
        connector,
        pipelines,
        replicas: Vec::new(),
        transfer,
    }
}

/// A placement for the DVFS experiment (§VI-D, Figure 18): a single
/// pipeline with the bottleneck filter *alone on its own tile*, in a
/// voltage island not shared with any other stage, so only that island
/// needs the 1.3 V uplift. Returns the placement; the isolated core is
/// `placement.pipelines[0][1]` (blur, under the calibrated cost model).
///
/// Which filter earns the isolation is read off the scheduler's own
/// weight table ([`crate::partition::auto_place`]'s decision graph)
/// rather than hardcoded, so a cost-model recalibration that moves the
/// bottleneck moves the 1.3 V uplift with it.
pub fn place_dvfs_single_pipeline(mode: RendererMode) -> Placement {
    let cfg = crate::spec::RunConfig {
        renderer: mode,
        pipelines: 1,
        ..crate::spec::RunConfig::default()
    };
    let auto = crate::partition::auto_place(&cfg);
    let interior = auto.graph.interior();
    let filters = interior.len();
    assert_eq!(filters, 5, "the film chain has five filter stages");
    let hot = (0..filters)
        .max_by(|&a, &b| {
            interior[a]
                .weight
                .partial_cmp(&interior[b].weight)
                .expect("finite stage weights")
        })
        .expect("non-empty chain");

    // Island geometry: islands are 2×2 tiles. The hot stage sits alone
    // on tile (2,0) — island 1, otherwise empty — while the remaining
    // filters pack into islands 0 and 2 (one neighbour beside the
    // source, the cool tail two-per-tile next to the transfer core), so
    // exactly one island pays for 800 MHz.
    let isolated = core_at(2, 0, 0);
    let shared = [
        core_at(1, 0, 0),
        core_at(4, 0, 0),
        core_at(4, 0, 1),
        core_at(5, 0, 0),
    ];
    let mut shared_slots = shared.iter();
    let mut lane = [isolated; 5];
    for (j, slot) in lane.iter_mut().enumerate() {
        if j != hot {
            *slot = *shared_slots.next().expect("four shared slots");
        }
    }
    let transfer = core_at(5, 0, 1);
    let source = core_at(0, 0, 0);
    let (renderers, connector) = match mode {
        RendererMode::McpcRenderer => (vec![], Some(source)),
        _ => (vec![source], None),
    };
    let p = Placement {
        renderers,
        connector,
        pipelines: vec![lane],
        replicas: Vec::new(),
        transfer,
    };
    p.assert_valid();
    // The isolated tile's island hosts nothing else.
    let hot_island = scc_sim::dvfs::IslandId::of_tile(lane[hot].tile());
    for c in p.all_cores() {
        if c != lane[hot] {
            assert_ne!(
                scc_sim::dvfs::IslandId::of_tile(c.tile()),
                hot_island,
                "the bottleneck island must not be shared"
            );
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sim::dvfs::IslandId;

    fn distinct(p: &Placement) -> bool {
        let v = p.all_cores();
        let s: HashSet<_> = v.iter().collect();
        s.len() == v.len()
    }

    #[test]
    fn all_modes_and_arrangements_produce_valid_placements() {
        for mode in [
            RendererMode::SingleRenderer,
            RendererMode::PerPipelineRenderer,
            RendererMode::McpcRenderer,
        ] {
            for arr in Arrangement::all() {
                for p in 1..=mode.max_pipelines() {
                    let pl = place(mode, arr, p);
                    assert!(distinct(&pl), "{mode:?}/{arr:?}/{p}");
                    assert_eq!(pl.pipelines.len(), p as usize);
                    assert_eq!(
                        pl.all_cores().len() as u32,
                        mode.cores_needed(p),
                        "{mode:?}/{arr:?}/{p}"
                    );
                }
            }
        }
    }

    #[test]
    fn unordered_is_sequential() {
        let pl = place(RendererMode::SingleRenderer, Arrangement::Unordered, 2);
        assert_eq!(pl.renderers, vec![CoreId::new(0)]);
        assert_eq!(pl.pipelines[0][0], CoreId::new(1));
        assert_eq!(pl.pipelines[1][4], CoreId::new(10));
        assert_eq!(pl.transfer, CoreId::new(11));
    }

    #[test]
    fn unordered_pipelines_cross_rows() {
        // The defining flaw of the unordered arrangement: a pipeline can
        // start in one mesh row and end in another (12 cores per row).
        let pl = place(RendererMode::SingleRenderer, Arrangement::Unordered, 3);
        let crossing = pl.pipelines.iter().any(|p| {
            let rows: HashSet<u8> = p.iter().map(|c| c.tile().y()).collect();
            rows.len() > 1
        });
        assert!(crossing, "expected at least one row-crossing pipeline");
    }

    #[test]
    fn ordered_pipelines_stay_in_one_row() {
        let pl = place(RendererMode::PerPipelineRenderer, Arrangement::Ordered, 4);
        for (i, pipe) in pl.pipelines.iter().enumerate() {
            let rows: HashSet<u8> = pipe.iter().map(|c| c.tile().y()).collect();
            assert_eq!(rows.len(), 1, "pipeline {i} crosses rows");
            // Stages progress east.
            let xs: Vec<u8> = pipe.iter().map(|c| c.tile().x()).collect();
            assert!(xs.windows(2).all(|w| w[1] > w[0]), "not one-way: {xs:?}");
        }
        // Renderer sits west of its sepia stage.
        for (i, r) in pl.renderers.iter().enumerate() {
            assert!(r.tile().x() < pl.pipelines[i][0].tile().x());
        }
    }

    #[test]
    fn flipped_reverses_every_second_pipeline() {
        let pl = place(RendererMode::McpcRenderer, Arrangement::Flipped, 4);
        for (i, pipe) in pl.pipelines.iter().enumerate() {
            let xs: Vec<u8> = pipe.iter().map(|c| c.tile().x()).collect();
            if i % 2 == 0 {
                assert!(xs.windows(2).all(|w| w[1] > w[0]), "pipe {i}: {xs:?}");
            } else {
                assert!(xs.windows(2).all(|w| w[1] < w[0]), "pipe {i}: {xs:?}");
            }
        }
    }

    #[test]
    fn flipped_spreads_blur_across_columns() {
        // With flipping, blur stages (index 1) land on both sides of the
        // die, spreading quadrant memory-controller load.
        let flipped = place(RendererMode::McpcRenderer, Arrangement::Flipped, 4);
        let xs: HashSet<u8> = flipped.pipelines.iter().map(|p| p[1].tile().x()).collect();
        assert!(xs.len() > 1, "flipped blur columns: {xs:?}");
        let ordered = place(RendererMode::McpcRenderer, Arrangement::Ordered, 4);
        let xs_o: HashSet<u8> = ordered.pipelines.iter().map(|p| p[1].tile().x()).collect();
        assert_eq!(xs_o.len(), 1, "ordered blur stays in one column");
    }

    #[test]
    fn stage_at_inverts_placement() {
        let pl = place(RendererMode::PerPipelineRenderer, Arrangement::Ordered, 3);
        assert_eq!(
            pl.stage_at(pl.pipelines[2][1]),
            Some((StageKind::Blur, Some(2)))
        );
        assert_eq!(
            pl.stage_at(pl.renderers[1]),
            Some((StageKind::Render, Some(1)))
        );
        assert_eq!(pl.stage_at(pl.transfer), Some((StageKind::Transfer, None)));
        // Some unused core maps to nothing.
        let used: HashSet<_> = pl.all_cores().into_iter().collect();
        let free = CoreId::all().find(|c| !used.contains(c)).unwrap();
        assert_eq!(pl.stage_at(free), None);
    }

    #[test]
    fn spare_pool_is_the_unused_complement_in_id_order() {
        for mode in [
            RendererMode::SingleRenderer,
            RendererMode::PerPipelineRenderer,
            RendererMode::McpcRenderer,
        ] {
            for arr in Arrangement::all() {
                let pl = place(mode, arr, 3);
                let spares = pl.spare_pool();
                assert_eq!(
                    spares.len() as u32,
                    48 - mode.cores_needed(3),
                    "{mode:?}/{arr:?}"
                );
                // Disjoint from the placement, sorted by core id.
                let used: HashSet<_> = pl.all_cores().into_iter().collect();
                assert!(spares.iter().all(|c| !used.contains(c)));
                assert!(spares.windows(2).all(|w| w[0].raw() < w[1].raw()));
                // Deterministic.
                assert_eq!(spares, place(mode, arr, 3).spare_pool());
            }
        }
    }

    #[test]
    fn nine_pipelines_fit_via_spare_column() {
        let pl = place(RendererMode::McpcRenderer, Arrangement::Ordered, 9);
        assert!(distinct(&pl));
        assert_eq!(pl.all_cores().len(), 47);
    }

    #[test]
    fn dvfs_placement_isolates_blur_island() {
        for mode in [RendererMode::McpcRenderer, RendererMode::SingleRenderer] {
            let pl = place_dvfs_single_pipeline(mode);
            let blur = pl.pipelines[0][1];
            let blur_island = IslandId::of_tile(blur.tile());
            for c in pl.all_cores() {
                if c == blur {
                    continue;
                }
                assert_ne!(
                    IslandId::of_tile(c.tile()),
                    blur_island,
                    "{c} shares blur's voltage island"
                );
            }
        }
    }

    #[test]
    fn dvfs_downstream_stages_share_islands_for_undervolting() {
        // Scratch, flicker, swap and transfer should sit in one island so
        // a single island can be dropped to 0.7 V (§VI-D).
        let pl = place_dvfs_single_pipeline(RendererMode::McpcRenderer);
        let downstream = [
            pl.pipelines[0][2],
            pl.pipelines[0][3],
            pl.pipelines[0][4],
            pl.transfer,
        ];
        let islands: HashSet<IslandId> = downstream
            .iter()
            .map(|c| IslandId::of_tile(c.tile()))
            .collect();
        assert_eq!(islands.len(), 1, "downstream stages span {islands:?}");
    }
}

impl Placement {
    /// ASCII map of the die: 6×4 tile grid, two characters per tile (one
    /// per core). `R` render, `C` connector, `T` transfer, `s b c f w`
    /// the filter stages, `.` unused — the textual cousin of the paper's
    /// Figures 3–5.
    pub fn ascii_map(&self) -> String {
        let mut grid = vec!['.'; NUM_CORES as usize];
        for c in CoreId::all() {
            if let Some((kind, _)) = self.stage_at(c) {
                grid[c.index()] = match kind {
                    StageKind::Render => 'R',
                    StageKind::Connect => 'C',
                    StageKind::Sepia => 's',
                    StageKind::Blur => 'b',
                    StageKind::Scratch => 'c',
                    StageKind::Flicker => 'f',
                    StageKind::Swap => 'w',
                    StageKind::Transfer => 'T',
                };
            }
        }
        // Row y=MESH_H-1 on top (north up), like the paper's figures.
        let mut out = String::new();
        for y in (0..MESH_H).rev() {
            for x in 0..MESH_W {
                let t = TileId::from_xy(x, y);
                let cores = t.cores();
                out.push(grid[cores[0].index()]);
                out.push(grid[cores[1].index()]);
                if x + 1 < MESH_W {
                    out.push(' ');
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod ascii_tests {
    use super::*;

    #[test]
    fn map_shows_every_stage_once_per_assignment() {
        let p = place(RendererMode::McpcRenderer, Arrangement::Ordered, 3);
        let map = p.ascii_map();
        assert_eq!(map.lines().count(), 4);
        assert_eq!(map.matches('C').count(), 1);
        assert_eq!(map.matches('T').count(), 1);
        assert_eq!(map.matches('b').count(), 3, "one blur per pipeline");
        assert_eq!(map.matches('s').count(), 3);
        // Unused cores shown as dots: 48 - 17 used.
        assert_eq!(map.matches('.').count(), 48 - 17);
    }

    #[test]
    fn ordered_map_reads_left_to_right() {
        let p = place(RendererMode::PerPipelineRenderer, Arrangement::Ordered, 1);
        let map = p.ascii_map();
        // The single pipeline occupies the bottom row: R s b c f w west
        // to east on slot 0 of each tile.
        let bottom = map.lines().last().unwrap();
        let stages: String = bottom.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(stages.starts_with("R.s.b.c.f.w."), "bottom row: {stages}");
    }
}
