//! # Dependency-driven task runtime over the simulated SCC
//!
//! The static executor ([`crate::runner::sim`]) nails every stage to one
//! core and lets the rendezvous protocol clock the pipeline at the
//! bottleneck's rate — faithful to the paper, but cores hosting cheap
//! stages idle while the blur core saturates (the Figure 15 spread).
//! This module is the alternative execution model behind
//! [`crate::spec::Runtime::Tasks`]: every strip walk becomes a *chain of
//! tasks* — one per [`StagePlan`] group — with the data dependence
//! `(frame, strip, group) → (frame, strip, group + 1)` derived from the
//! stage graph, executed by per-core bounded deques with randomized work
//! stealing over the rcce steal/claim control plane.
//!
//! Execution rules:
//!
//! * **Home affinity** — a task is enqueued at the *home* core of its
//!   group (the static placement's core, replica-rotated per frame), so
//!   the healthy NoC pattern matches the paper's pipeline. Stealing only
//!   drains backlogs.
//! * **Bounded deques, backpressure** — a producer whose target deque is
//!   full parks the handoff; it is admitted (and its payload message
//!   booked) when the consumer next pops. Queues can never grow beyond
//!   [`crate::spec::TaskTuning::queue_capacity`].
//! * **Randomized stealing** — an idle core picks a loaded victim with a
//!   seeded RNG and runs the four-leg steal/claim handshake
//!   ([`scc_rcce::steal`]) with real encoded frames; any lost or
//!   corrupted leg burns an exponential-backoff window and leaves *no
//!   net change* (the victim-side [`ClaimTable`] keeps hand-off
//!   idempotent, so a task is never executed twice nor lost).
//! * **Fence + re-queue recovery** — a fail-stopped (or forever-stalled)
//!   worker is *fenced*: its claim epoch advances (straggling claims are
//!   rejected), the chains it held restart from the source's
//!   [`CheckpointRing`] copy on a surviving core. No spare provisioning
//!   is needed, so re-queue MTTR is structurally at or below the static
//!   supervisor's migration MTTR. Only when no worker survives does the
//!   run abort — the same "no surviving pipeline" terminal state as the
//!   static executor's total loss.
//! * **Exactly-once accounting** — the ledger invariant
//!   `completed + degraded == spawned` (checked by
//!   [`crate::invariant::check_report`]) holds because completions are
//!   counted once per task identity; re-runs after a fence re-enter the
//!   same chain under a bumped *chain epoch* and stale-epoch completions
//!   are discarded before they can spawn duplicate successors.
//!
//! The delivered film is bit-identical to the static placement's: the
//! same filter kernels run over the same strip identities, and strip
//! assembly is order-independent.

use crate::frame::Frame;
use crate::metrics::{RecoveryEvent, StageReport, TaskStats, WalkthroughReport};
use crate::partition::StagePlan;
use crate::runner::sim::{
    faulted_send, make_strips, record_stage_telemetry, strip_info, SimRunner, StageState,
};
use crate::spec::{Fidelity, RendererMode, StageKind};
use crate::supervise::Supervisor;
use scc_filters::{Blur, Flicker, Image, ImageFilter, Scratch, Sepia, StripInfo, VSwap};
use scc_rcce::{
    decode_claim_ack, decode_steal_grant, decode_steal_request, decode_task_claim,
    encode_claim_ack, encode_steal_grant, encode_steal_request, encode_task_claim, ClaimAck,
    ClaimTable, ClaimVerdict, StealGrant, StealRequest, TaskClaim, TaskId,
};
use scc_sim::fault::MessageOutcome;
use scc_sim::platform::MemOp;
use scc_sim::{CoreId, SimTime, HEARTBEAT_BYTES};
use scc_telemetry::{names, EventKind, SECONDS_BUCKETS};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Which backend drives the engine. Both flavors execute the identical
/// task graph; they differ only in *schedule* (steal-RNG stream and
/// idle-scan order), which is exactly what the differential suite wants:
/// the film and the conservation ledgers must be schedule-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScheduleFlavor {
    /// The frame-major runner's dispatch (`Backend::Sim`).
    Sim,
    /// The event-driven validator's dispatch (`Backend::Des`).
    Des,
}

/// In-flight frames the source keeps outstanding in a fault-free run:
/// deep enough that the steal scheduler always has chains to balance.
/// Under a fault plan the window shrinks to the checkpoint ring depth so
/// every live chain stays replayable.
const DEFAULT_WINDOW: u32 = 8;

/// One schedulable unit: the strip `(frame, strip)` passing through stage
/// group `group` of the plan. `epoch` is the chain's re-queue generation;
/// a completion whose epoch is stale is discarded.
struct Task {
    frame: u64,
    strip: usize,
    group: usize,
    epoch: u32,
    data: Frame,
    /// When the payload is resident in the executing worker's partition.
    avail: SimTime,
}

/// A handoff parked on a full deque: payload still in the producer's
/// partition; the message is booked at admission time.
struct Pending {
    frame: u64,
    strip: usize,
    group: usize,
    epoch: u32,
    data: Frame,
    from: CoreId,
    ready: SimTime,
}

/// Where a worker's busy/idle ledgers land in the stage-report grid.
#[derive(Clone, Copy)]
enum Slot {
    /// `filters[lane][stage]`.
    Primary(usize, usize),
    /// `extras[lane][stage][k]` — replica `k + 1` of the stage.
    Extra(usize, usize, usize),
}

struct Worker {
    core: CoreId,
    slot: Slot,
    free: SimTime,
    /// Start time of the most recent pop — the earliest instant a parked
    /// handoff could have been admitted.
    room_at: SimTime,
    deque: VecDeque<Task>,
    parked: VecDeque<Pending>,
    dead: bool,
    claims: ClaimTable,
    /// Failed steal attempts since the deque was last non-empty.
    idle_attempts: u32,
}

pub(crate) fn run_tasks(runner: SimRunner, flavor: ScheduleFlavor) -> WalkthroughReport {
    Engine::new(runner, flavor).run()
}

struct Engine {
    r: SimRunner,
    flavor: ScheduleFlavor,
    plan: StagePlan,
    impls: [Box<dyn ImageFilter>; 5],
    pool: crate::pool::BufferPool,
    strip_bounds: Vec<(u32, u32)>,

    workers: Vec<Worker>,
    worker_of: HashMap<u8, usize>,

    // Stage-report ledgers, shaped exactly like the static executor's.
    renderers: Vec<StageState>,
    connector: Option<StageState>,
    filters: Vec<[StageState; 5]>,
    extras: Vec<[Vec<StageState>; 5]>,
    transfer: StageState,
    mcpc_free: SimTime,
    mcpc_busy: SimTime,

    rings: Vec<crate::supervise::CheckpointRing>,
    window: u32,
    cap: usize,

    chain_epoch: HashMap<(u64, usize), u32>,
    completed_task: HashSet<(u64, usize, usize)>,
    completed_stage: HashSet<(u64, usize, usize)>,
    delivered: HashMap<(u64, usize), (SimTime, Frame)>,

    stats: TaskStats,
    recoveries: Vec<RecoveryEvent>,
    outputs: Vec<Image>,
    seqs: HashMap<(u8, u8), u64>,
    rng: u64,
    nonce: u64,
    supervisor: Option<Supervisor>,

    next_out: u64,
    f_src: u64,
    finish: SimTime,
}

impl Engine {
    fn new(runner: SimRunner, flavor: ScheduleFlavor) -> Engine {
        let cfg = &runner.cfg;
        let p = cfg.pipelines as usize;
        let full = cfg.renderer != RendererMode::PerPipelineRenderer;
        let plan = runner.plan.clone();
        let strip_bounds = Image::strip_bounds(cfg.height, cfg.pipelines);

        let renderers: Vec<StageState> = runner
            .placement
            .renderers
            .iter()
            .enumerate()
            .map(|(i, c)| StageState::new(StageKind::Render, *c, (!full).then_some(i as u32)))
            .collect();
        let connector = runner
            .placement
            .connector
            .map(|c| StageState::new(StageKind::Connect, c, None));
        let filters: Vec<[StageState; 5]> = runner
            .placement
            .pipelines
            .iter()
            .enumerate()
            .map(|(i, cores)| {
                let mk = |j: usize| {
                    StageState::new(StageKind::PIPELINE_FILTERS[j], cores[j], Some(i as u32))
                };
                [mk(0), mk(1), mk(2), mk(3), mk(4)]
            })
            .collect();
        let extras: Vec<[Vec<StageState>; 5]> = (0..p)
            .map(|i| {
                let mk = |j: usize| -> Vec<StageState> {
                    runner
                        .placement
                        .replica_extras(i as u32, j)
                        .iter()
                        .map(|&c| {
                            StageState::new(StageKind::PIPELINE_FILTERS[j], c, Some(i as u32))
                        })
                        .collect()
                };
                [mk(0), mk(1), mk(2), mk(3), mk(4)]
            })
            .collect();
        let transfer = StageState::new(StageKind::Transfer, runner.placement.transfer, None);

        // Workers: one per distinct core hosting a stage group (primary or
        // replica). The slot maps the worker's busy/idle ledgers back to
        // its home report.
        let mut workers: Vec<Worker> = Vec::new();
        let mut worker_of: HashMap<u8, usize> = HashMap::new();
        let add = |core: CoreId,
                   slot: Slot,
                   workers: &mut Vec<Worker>,
                   worker_of: &mut HashMap<u8, usize>| {
            worker_of.entry(core.raw()).or_insert_with(|| {
                workers.push(Worker {
                    core,
                    slot,
                    free: SimTime::ZERO,
                    room_at: SimTime::ZERO,
                    deque: VecDeque::new(),
                    parked: VecDeque::new(),
                    dead: false,
                    claims: ClaimTable::new(),
                    idle_attempts: 0,
                });
                workers.len() - 1
            });
        };
        for i in 0..p {
            for g in &plan.groups {
                let j0 = g.start;
                add(
                    runner.placement.pipelines[i][j0],
                    Slot::Primary(i, j0),
                    &mut workers,
                    &mut worker_of,
                );
                for (k, &c) in runner
                    .placement
                    .replica_extras(i as u32, j0)
                    .iter()
                    .enumerate()
                {
                    add(c, Slot::Extra(i, j0, k), &mut workers, &mut worker_of);
                }
            }
        }

        let depth = cfg
            .fault
            .as_ref()
            .map_or(DEFAULT_WINDOW, |s| s.checkpoint_depth.max(1));
        let rings = (0..p)
            .map(|_| crate::supervise::CheckpointRing::new(depth))
            .collect();
        let supervisor = cfg
            .fault
            .as_ref()
            .filter(|s| s.supervised())
            .map(|s| Supervisor::new(&runner.placement, s));

        let stats = TaskStats {
            spawned: cfg.frames * p as u64 * plan.groups.len() as u64,
            ..TaskStats::default()
        };
        let salt = match flavor {
            ScheduleFlavor::Sim => 0x7461_736b_7274_0001u64,
            ScheduleFlavor::Des => 0x7461_736b_7274_0002u64,
        };
        let cap = cfg.task_tuning.queue_capacity.max(1) as usize;
        let pool = crate::pool::BufferPool::from_enabled(cfg.tuning.buffer_pool);

        Engine {
            flavor,
            plan,
            impls: [
                Box::new(Sepia),
                Box::new(Blur::default()),
                Box::new(Scratch::default()),
                Box::new(Flicker::default()),
                Box::new(VSwap),
            ],
            pool,
            strip_bounds,
            workers,
            worker_of,
            renderers,
            connector,
            filters,
            extras,
            transfer,
            mcpc_free: SimTime::ZERO,
            mcpc_busy: SimTime::ZERO,
            rings,
            window: depth,
            cap,
            chain_epoch: HashMap::new(),
            completed_task: HashSet::new(),
            completed_stage: HashSet::new(),
            delivered: HashMap::new(),
            stats,
            recoveries: Vec::new(),
            outputs: Vec::new(),
            seqs: HashMap::new(),
            rng: runner.cfg.seed ^ salt,
            nonce: 0,
            supervisor,
            next_out: 0,
            f_src: 0,
            finish: SimTime::ZERO,
            r: runner,
        }
    }

    // ---- small helpers -------------------------------------------------

    fn rng_next(&mut self) -> u64 {
        // splitmix64: deterministic, dependency-free.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_seq(&mut self, from: CoreId, to: CoreId) -> u64 {
        let c = self.seqs.entry((from.raw(), to.raw())).or_insert(0);
        let s = *c;
        *c += 1;
        s
    }

    fn groups(&self) -> usize {
        self.plan.groups.len()
    }

    /// The home worker of `(strip, group)` for `frame` — the static
    /// placement's core with the frame-rotated replica choice.
    fn home(&self, strip: usize, group: usize, frame: u64) -> usize {
        let g = &self.plan.groups[group];
        let r = u64::from(g.replicas.max(1));
        let k = (frame % r) as usize;
        let core = if k == 0 {
            self.r.placement.pipelines[strip][g.start]
        } else {
            self.r.placement.replica_extras(strip as u32, g.start)[k - 1]
        };
        self.worker_of[&core.raw()]
    }

    /// Fail-stop-equivalent at `at`: the core is killed, or stalled past
    /// the full ARQ horizon (no peer waits that long — the fence path
    /// owns it). Every engine-issued platform op on such a core would be
    /// pushed past the stall window by the platform's stall model, so the
    /// engine must never book work there.
    fn dead_equivalent(&self, core: CoreId, at: SimTime) -> bool {
        self.r.fault.as_ref().is_some_and(|fc| {
            fc.plan.kill_time(core.raw()).is_some_and(|k| k <= at)
                || fc.plan.stall_remaining(core.raw(), at) > fc.horizon()
        })
    }

    /// Earliest-free surviving worker, or the static executor's terminal
    /// panic when the whole worker set is dead.
    fn earliest_free_survivor(&self) -> usize {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.dead)
            .min_by_key(|(idx, w)| (w.free, *idx))
            .map(|(idx, _)| idx)
            .expect("no surviving pipeline to adopt the strip")
    }

    /// The core that produced (and checkpointed) strip `i` — re-queues
    /// replay from here.
    fn source_core(&self, strip: usize) -> CoreId {
        match self.r.cfg.renderer {
            RendererMode::SingleRenderer => self.renderers[0].core,
            RendererMode::PerPipelineRenderer => self.renderers[strip].core,
            RendererMode::McpcRenderer => {
                self.connector.as_ref().expect("MCPC has a connector").core
            }
        }
    }

    fn chain_epoch_of(&self, frame: u64, strip: usize) -> u32 {
        self.chain_epoch.get(&(frame, strip)).copied().unwrap_or(0)
    }

    /// Ship `bytes` from `from` into worker `widx`'s partition starting at
    /// `t`, through the ARQ when faults are armed. `Err(at)` means the
    /// receiver was declared dead at `at`.
    fn ship(
        &mut self,
        from: CoreId,
        widx: usize,
        t: SimTime,
        bytes: u64,
    ) -> Result<SimTime, SimTime> {
        let to = self.workers[widx].core;
        if from == to {
            // Continuation hand-off: the strip is already resident.
            return Ok(t);
        }
        match self.r.fault.clone() {
            Some(fc) => faulted_send(
                &mut self.r.platform,
                &fc,
                &mut self.seqs,
                from,
                to,
                t,
                bytes,
            ),
            None => Ok(self.r.platform.send_to_partition(from, to, t, bytes)),
        }
    }

    /// Enqueue a task at worker `widx` (push to the deque, or park on a
    /// full deque with a backpressure stall). The payload send is booked
    /// immediately on a direct push, or at admission time when parked.
    /// Falls over to a survivor when the target turns out to be dead.
    fn enqueue(&mut self, mut widx: usize, p: Pending) {
        let mut p = p;
        loop {
            if self.workers[widx].dead {
                widx = self.earliest_free_survivor();
                continue;
            }
            if self.workers[widx].deque.len() >= self.cap {
                self.stats.backpressure_stalls += 1;
                self.r
                    .tel
                    .count(names::TASK_BACKPRESSURE_STALLS_TOTAL, &[], 1);
                self.workers[widx].parked.push_back(p);
                return;
            }
            let bytes = p.data.byte_len();
            match self.ship(p.from, widx, p.ready, bytes) {
                Ok(resident) => {
                    let w = &mut self.workers[widx];
                    w.deque.push_back(Task {
                        frame: p.frame,
                        strip: p.strip,
                        group: p.group,
                        epoch: p.epoch,
                        data: p.data,
                        avail: resident,
                    });
                    w.idle_attempts = 0;
                    self.stats.max_queue_depth =
                        self.stats.max_queue_depth.max(w.deque.len() as u64);
                    return;
                }
                Err(at) => {
                    self.fence(widx, at);
                    p.ready = p.ready.max(at);
                }
            }
        }
    }

    /// Admit parked handoffs wherever room has opened up.
    fn admit_parked(&mut self) {
        for widx in 0..self.workers.len() {
            loop {
                let w = &self.workers[widx];
                if w.dead || w.parked.is_empty() || w.deque.len() >= self.cap {
                    break;
                }
                let room_at = w.room_at;
                let mut p = self.workers[widx].parked.pop_front().expect("non-empty");
                p.ready = p.ready.max(room_at);
                self.enqueue(widx, p);
            }
        }
    }

    // ---- source --------------------------------------------------------

    /// Produce frame `f_src` when the checkpoint window has room. The
    /// render/split booking mirrors the static executor exactly; strips
    /// are injected at the home worker of the first stage group.
    fn produce_source(&mut self) -> bool {
        let frames = self.r.cfg.frames;
        if self.f_src >= frames || self.f_src - self.next_out >= u64::from(self.window) {
            return false;
        }
        let f = self.f_src;
        self.f_src += 1;
        let cam = self.r.walkthrough.camera(f);
        let p = self.r.cfg.pipelines as usize;
        let fidelity = self.r.cfg.fidelity;
        let full_px = self.r.cfg.width as u64 * self.r.cfg.height as u64;
        let full_bytes = self.r.cfg.frame_bytes();
        let width = self.r.cfg.width;
        let height = self.r.cfg.height;
        let bounds = self.strip_bounds.clone();

        match self.r.cfg.renderer {
            RendererMode::SingleRenderer => {
                let (_, cull, coverage) =
                    self.r.renderer.cull_strip(&cam, width, height, 0, height);
                let work = crate::cost::RenderWork {
                    nodes_visited: cull.nodes_visited,
                    triangles_out: cull.triangles_out,
                    est_coverage: coverage,
                };
                let core = self.renderers[0].core;
                let mut t = self.renderers[0].free;
                let t0 = t;
                let scene_bytes = self.r.cost.render_scene_bytes(&work);
                t = self.r.platform.mem_raw(core, t, MemOp::Read, scene_bytes);
                let cycles = self.r.cost.render_cycles(&work, false)
                    + self.r.cost.split_cycles(full_px, self.r.cfg.pipelines);
                t = self.r.platform.compute(core, t, cycles as u64);
                t = self
                    .r
                    .platform
                    .mem_stream(core, t, MemOp::Write, full_bytes);
                self.r.platform.record_busy(core, t0, t);
                let image = (fidelity == Fidelity::Full).then(|| {
                    let (img, _) = self.r.renderer.render_full(&cam, width, height);
                    img
                });
                let strips = make_strips(f, &bounds, width, image);
                for (i, frame) in strips.into_iter().enumerate() {
                    self.rings[i].push(f, frame.clone());
                    self.inject_strip(i, f, frame, core, t);
                }
                let r = &mut self.renderers[0];
                r.busy += t - r.free;
                r.free = t;
                r.frames += 1;
            }
            RendererMode::PerPipelineRenderer => {
                let (_, _, full_coverage) =
                    self.r.renderer.cull_strip(&cam, width, height, 0, height);
                for i in 0..p {
                    let (y0, h) = bounds[i];
                    let core = self.renderers[i].core;
                    let (_, cull, _) = self.r.renderer.cull_strip(&cam, width, height, y0, h);
                    let work = crate::cost::RenderWork {
                        nodes_visited: cull.nodes_visited,
                        triangles_out: cull.triangles_out,
                        est_coverage: full_coverage / p as u64,
                    };
                    let mut t = self.renderers[i].free;
                    let t0 = t;
                    let scene_bytes = self.r.cost.render_scene_bytes(&work);
                    t = self.r.platform.mem_raw(core, t, MemOp::Read, scene_bytes);
                    let cycles = self.r.cost.render_cycles(&work, true);
                    t = self.r.platform.compute(core, t, cycles as u64);
                    let strip_bytes = width as u64 * h as u64 * 4;
                    t = self
                        .r
                        .platform
                        .mem_stream(core, t, MemOp::Write, strip_bytes);
                    self.r.platform.record_busy(core, t0, t);
                    let image = (fidelity == Fidelity::Full).then(|| {
                        let (img, _) = self.r.renderer.render_strip(&cam, width, height, y0, h);
                        img
                    });
                    let frame = Frame {
                        id: f,
                        strip: strip_info(i, &bounds, height),
                        full_width: width,
                        image,
                    };
                    self.rings[i].push(f, frame.clone());
                    self.inject_strip(i, f, frame, core, t);
                    let r = &mut self.renderers[i];
                    r.busy += t - r.free;
                    r.free = t;
                    r.frames += 1;
                }
            }
            RendererMode::McpcRenderer => {
                let (_, cull, coverage) =
                    self.r.renderer.cull_strip(&cam, width, height, 0, height);
                let work = crate::cost::RenderWork {
                    nodes_visited: cull.nodes_visited,
                    triangles_out: cull.triangles_out,
                    est_coverage: coverage,
                };
                let p54c_cycles = self.r.cost.render_cycles(&work, false);
                let render_dur =
                    SimTime::from_secs_f64(self.r.cost.mcpc_render_seconds(p54c_cycles));
                let render_done = self.mcpc_free + render_dur;
                self.mcpc_busy += render_dur;
                let conn_core = self.connector.as_ref().expect("MCPC connector").core;
                let conn_free = self.connector.as_ref().expect("MCPC connector").free;
                let send_start = render_done.max(conn_free);
                let resident = self
                    .r
                    .platform
                    .host_to_chip(conn_core, send_start, full_bytes);
                self.mcpc_free = resident;
                let idle = resident.saturating_sub(conn_free);
                let start = resident.max(conn_free);
                let mut t = self
                    .r
                    .platform
                    .fetch_from_partition(conn_core, start, full_bytes);
                let cycles = self
                    .r
                    .cost
                    .connector_cycles(full_bytes, self.r.cfg.pipelines)
                    + self.r.cost.split_cycles(full_px, self.r.cfg.pipelines);
                t = self.r.platform.compute(conn_core, t, cycles as u64);
                t = self
                    .r
                    .platform
                    .mem_stream(conn_core, t, MemOp::Write, full_bytes);
                self.r.platform.record_busy(conn_core, start, t);
                let image = (fidelity == Fidelity::Full).then(|| {
                    let (img, _) = self.r.renderer.render_full(&cam, width, height);
                    img
                });
                let strips = make_strips(f, &bounds, width, image);
                for (i, frame) in strips.into_iter().enumerate() {
                    self.rings[i].push(f, frame.clone());
                    self.inject_strip(i, f, frame, conn_core, t);
                }
                let conn = self.connector.as_mut().expect("MCPC connector");
                conn.idle_samples.push(idle);
                conn.busy += t - start;
                conn.free = t;
                conn.frames += 1;
            }
        }
        true
    }

    fn inject_strip(&mut self, strip: usize, f: u64, data: Frame, from: CoreId, t: SimTime) {
        // Root placement rotates round-robin over the worker set, so the
        // heavy stages spread evenly by construction and stealing only
        // has to absorb the residual imbalance (chains are not all the
        // same length, and the transfer fan-in skews the tail).
        let p = self.r.cfg.pipelines as usize;
        let mut widx = (f as usize * p + strip) % self.workers.len();
        let mut probe = 0;
        while self.workers[widx].dead {
            widx = (widx + 1) % self.workers.len();
            probe += 1;
            assert!(
                probe <= self.workers.len(),
                "no surviving pipeline to adopt the strip"
            );
        }
        let epoch = self.chain_epoch_of(f, strip);
        self.enqueue(
            widx,
            Pending {
                frame: f,
                strip,
                group: 0,
                epoch,
                data,
                from,
                ready: t,
            },
        );
    }

    // ---- execution -----------------------------------------------------

    /// Execute the most urgent ready task (the min-start worker's deque
    /// front). Returns false when no worker holds a task.
    fn execute_one(&mut self) -> bool {
        let mut best: Option<(SimTime, usize)> = None;
        let iter: Box<dyn Iterator<Item = usize>> = match self.flavor {
            ScheduleFlavor::Sim => Box::new(0..self.workers.len()),
            ScheduleFlavor::Des => Box::new((0..self.workers.len()).rev()),
        };
        for widx in iter {
            let w = &self.workers[widx];
            if w.dead {
                continue;
            }
            if let Some(task) = w.deque.front() {
                let start = w.free.max(task.avail);
                if best.is_none_or(|(bs, _)| start < bs) {
                    best = Some((start, widx));
                }
            }
        }
        let Some((start, widx)) = best else {
            return false;
        };
        // A worker that is dead (or stalled beyond the whole ARQ horizon)
        // by the time it would run: fence it instead of executing.
        if self.dead_equivalent(self.workers[widx].core, start) {
            self.fence(widx, start);
            return true;
        }

        let mut task = self.workers[widx].deque.pop_front().expect("non-empty");
        let core = self.workers[widx].core;
        let wfree = self.workers[widx].free;
        self.workers[widx].room_at = start;
        let idle = start.saturating_sub(wfree);

        // Book the group's stage walk on this core, exactly like the
        // static lane walk: one fetch at group entry, then per stage
        // compute + cache-model traffic; merged siblings stay on-core.
        let bytes = task.data.byte_len();
        let ctx = task.data.ctx(self.r.cfg.seed);
        let mut t = self.r.platform.fetch_from_partition(core, start, bytes);
        let group = self.plan.groups[task.group].clone();
        for j in group.stages() {
            let cycles = match &task.data.image {
                Some(img) => {
                    let c = self.r.cost.filter_cycles(self.impls[j].as_ref(), img, &ctx);
                    self.impls[j].apply_vectored(
                        task.data.image.as_mut().expect("image present"),
                        &ctx,
                        self.r.cfg.tuning.kernel.resolve(),
                        1,
                    );
                    c
                }
                None => {
                    let proxy = self.pool.acquire(self.r.cfg.width, task.data.strip.height);
                    let c = self
                        .r
                        .cost
                        .filter_cycles(self.impls[j].as_ref(), &proxy, &ctx);
                    self.pool.release(proxy);
                    c
                }
            };
            t = self.r.platform.compute(core, t, cycles as u64);
            let traffic = self
                .r
                .cost
                .stage_traffic(StageKind::PIPELINE_FILTERS[j], bytes);
            t = self
                .r
                .platform
                .mem_stream(core, t, MemOp::Read, traffic.read_bytes);
            t = self
                .r
                .platform
                .mem_stream(core, t, MemOp::Write, traffic.write_bytes);
        }
        self.r.platform.record_busy(core, start, t);
        self.workers[widx].free = t;
        self.stats.executed += 1;

        // Busy/idle land on the executing worker's home report.
        {
            let (busy_ref, idle_ref) = match self.workers[widx].slot {
                Slot::Primary(i, j) => {
                    let s = &mut self.filters[i][j];
                    (&mut s.busy, &mut s.idle_samples)
                }
                Slot::Extra(i, j, k) => {
                    let s = &mut self.extras[i][j][k];
                    (&mut s.busy, &mut s.idle_samples)
                }
            };
            *busy_ref += t - start;
            idle_ref.push(idle);
        }

        // Stale-epoch completions (a steal that raced a fence, or a chain
        // restarted underneath the thief) are discarded: no frame counts,
        // no successor — the restarted chain owns the strip now.
        if task.epoch != self.chain_epoch_of(task.frame, task.strip) {
            return true;
        }

        // First completion of this task identity counts toward the
        // conservation ledger and the per-stage frame counts; a re-run
        // after a re-queue only adds `executed`.
        if self
            .completed_task
            .insert((task.frame, task.strip, task.group))
        {
            self.stats.completed += 1;
            for j in group.stages() {
                if self.completed_stage.insert((task.frame, task.strip, j)) {
                    self.filters[task.strip][j].frames += 1;
                }
            }
        }

        if task.group + 1 < self.groups() {
            // The continuation runs where the strip is resident: no
            // transfer, and chains spread across cores through stealing
            // alone — which is what flattens the idle quartiles.
            self.enqueue(
                widx,
                Pending {
                    frame: task.frame,
                    strip: task.strip,
                    group: task.group + 1,
                    epoch: task.epoch,
                    data: task.data,
                    from: core,
                    ready: t,
                },
            );
        } else {
            // Final group: ship the finished strip to the transfer stage.
            let tcore = self.transfer.core;
            let resident = match self.r.fault.clone() {
                Some(fc) => {
                    faulted_send(
                        &mut self.r.platform,
                        &fc,
                        &mut self.seqs,
                        core,
                        tcore,
                        t,
                        bytes,
                    )
                    .unwrap_or_else(|at| {
                        // The transfer core is never a kill target;
                        // worst case the ARQ burned its horizon.
                        self.r.platform.send_to_partition(core, tcore, at, bytes)
                    })
                }
                None => self.r.platform.send_to_partition(core, tcore, t, bytes),
            };
            self.delivered
                .insert((task.frame, task.strip), (resident, task.data));
        }
        true
    }

    // ---- stealing ------------------------------------------------------

    /// One pass over idle workers: each may run a single steal handshake
    /// against a seeded-random loaded victim. The handshake's four legs
    /// are real encoded wire frames rolled against the fault plan; a lost
    /// or corrupted leg leaves no net deque change.
    fn steal_pass(&mut self) {
        let retries = self.r.cfg.task_tuning.steal_retries.max(1);
        let order: Vec<usize> = match self.flavor {
            ScheduleFlavor::Sim => (0..self.workers.len()).collect(),
            ScheduleFlavor::Des => (0..self.workers.len()).rev().collect(),
        };
        for widx in order {
            let w = &self.workers[widx];
            if w.dead || !w.deque.is_empty() || !w.parked.is_empty() || w.idle_attempts >= retries {
                continue;
            }
            // A killed or hopelessly-stalled thief must not run the
            // handshake: the platform would push its legs past the stall
            // window (forever, for a permanent stall) and the "steal"
            // would book unbounded time. Fence it — its chains re-queue.
            if self.dead_equivalent(w.core, w.free) {
                let at = self.workers[widx].free;
                self.fence(widx, at);
                continue;
            }
            let thief_free = self.workers[widx].free;
            let victims: Vec<usize> = (0..self.workers.len())
                .filter(|&v| {
                    let w = &self.workers[v];
                    // Profitability: rob only when the queued task would
                    // actually WAIT on the victim (victim clock past the
                    // task's data arrival) and the thief could start it
                    // earlier (thief clock behind the victim's). A task
                    // still waiting on its data starts at `avail` on any
                    // core — stealing it gains nothing and just scatters
                    // the balanced root placement. A dead-equivalent
                    // victim can't grant (its reply leg would never
                    // issue): skip it, execute_one's fence re-queues its
                    // chains instead.
                    v != widx
                        && !w.dead
                        && !self.dead_equivalent(w.core, w.free)
                        && w.deque.back().is_some_and(|t| w.free > t.avail)
                        && w.free > thief_free
                })
                .collect();
            if victims.is_empty() {
                continue;
            }
            // Power-of-two-choices: sample two random victims and rob the
            // busier one. Still randomized, but load drains from the most
            // loaded cores almost as fast as a full scan would — and a
            // full scan is exactly what the message-passing mesh cannot
            // afford.
            let a = victims[(self.rng_next() % victims.len() as u64) as usize];
            let b = victims[(self.rng_next() % victims.len() as u64) as usize];
            let victim = if self.workers[b].free > self.workers[a].free {
                b
            } else {
                a
            };
            self.attempt_steal(widx, victim);
        }
    }

    /// Run the four-leg steal/claim handshake thief→victim. Encodes and
    /// decodes every control frame through the real codec; each leg rolls
    /// its fate from the fault plan. On success the victim's *back* task
    /// moves (with its payload) into the thief's deque.
    fn attempt_steal(&mut self, thief: usize, victim: usize) {
        self.stats.steal_attempts += 1;
        self.r.tel.count(names::TASK_STEAL_ATTEMPTS_TOTAL, &[], 1);
        let attempt = self.workers[thief].idle_attempts;
        let tcore = self.workers[thief].core;
        let vcore = self.workers[victim].core;
        let t0 = self.workers[thief].free;
        let timeout = SimTime::from_us(self.r.cfg.task_tuning.steal_timeout_us.max(1));
        let backoff = timeout * (1u64 << attempt.min(16));
        self.nonce += 1;
        let nonce = self.nonce;
        let fail = |engine: &mut Engine, offered: bool, lost: bool| {
            if offered {
                engine.workers[victim].claims.cancel(nonce);
            }
            if lost {
                engine.stats.steal_losses += 1;
            }
            engine.workers[thief].idle_attempts += 1;
            engine.workers[thief].free = t0 + backoff;
        };

        // Leg 1: StealRequest thief → victim.
        let epoch = self.workers[victim].claims.epoch();
        let req = StealRequest {
            thief: u32::from(tcore.raw()),
            epoch,
            nonce,
        };
        let wire = encode_steal_request(req);
        debug_assert_eq!(decode_steal_request(&wire), Some(req));
        let Some(t1) = self.leg(tcore, vcore, t0, wire.len() as u64) else {
            return fail(self, false, true);
        };
        if self.victim_died(victim, t1) {
            self.stats.midsteal_kills += 1;
            return fail(self, false, false);
        }

        // The victim answers with a grant for its back task and parks the
        // offer in its claim table (idempotent hand-off bookkeeping).
        let task_ref = self.workers[victim].deque.back().expect("victim loaded");
        let tid = TaskId {
            frame: task_ref.frame as u32,
            strip: task_ref.strip as u32,
            group: task_ref.group as u32,
        };
        self.workers[victim]
            .claims
            .offer(nonce, u32::from(tcore.raw()), tid);
        let grant = StealGrant {
            victim: u32::from(vcore.raw()),
            epoch,
            nonce,
            task: tid,
        };
        let wire = encode_steal_grant(grant);
        debug_assert_eq!(decode_steal_grant(&wire), Some(grant));
        let Some(t2) = self.leg(vcore, tcore, t1, wire.len() as u64) else {
            return fail(self, true, true);
        };

        // Leg 3: TaskClaim thief → victim.
        let claim = TaskClaim {
            thief: u32::from(tcore.raw()),
            epoch,
            nonce,
        };
        let wire = encode_task_claim(claim);
        debug_assert_eq!(decode_task_claim(&wire), Some(claim));
        let Some(t3) = self.leg(tcore, vcore, t2, wire.len() as u64) else {
            return fail(self, true, true);
        };
        if self.victim_died(victim, t3) {
            // The victim fail-stopped between grant and claim: fence it
            // (bumping its claim epoch) and watch the straggling claim be
            // rejected — the task went back with the fence's re-queue.
            self.fence(victim, t3);
            let verdict = self.workers[victim].claims.claim(claim);
            assert!(
                matches!(verdict, ClaimVerdict::Rejected(_)),
                "stale claim must be rejected after a fence"
            );
            self.stats.midsteal_kills += 1;
            self.stats.steal_rejects += 1;
            self.workers[thief].idle_attempts += 1;
            self.workers[thief].free = t0 + backoff;
            return;
        }
        let verdict = self.workers[victim].claims.claim(claim);
        let ClaimVerdict::Accepted(got) = verdict else {
            self.stats.steal_rejects += 1;
            return fail(self, false, false);
        };
        debug_assert_eq!(got, tid);

        // Leg 4: ClaimAck victim → thief.
        let ack = ClaimAck {
            accepted: true,
            nonce,
        };
        let wire = encode_claim_ack(ack);
        debug_assert_eq!(decode_claim_ack(&wire), Some(ack));
        let Some(t4) = self.leg(vcore, tcore, t3, wire.len() as u64) else {
            // The ack was lost *after* the claim was accepted. The thief
            // owns the task (the claim table is idempotent: a retransmit
            // re-answers Accepted), so the hand-off still happens — it
            // just burned the retransmission window first.
            self.stats.steal_losses += 1;
            let t4 = t3 + backoff;
            self.finish_steal(thief, victim, t4);
            return;
        };
        self.finish_steal(thief, victim, t4);
    }

    /// Move the claimed back task from victim to thief at `t`, booking the
    /// payload transfer into the thief's partition.
    fn finish_steal(&mut self, thief: usize, victim: usize, t: SimTime) {
        let mut task = self.workers[victim].deque.pop_back().expect("claimed task");
        let vcore = self.workers[victim].core;
        let tcore = self.workers[thief].core;
        let resident = self.r.platform.send_to_partition(
            vcore,
            tcore,
            t.max(task.avail),
            task.data.byte_len(),
        );
        task.avail = resident;
        self.workers[thief].free = t;
        self.workers[thief].deque.push_back(task);
        self.workers[thief].idle_attempts = 0;
        self.stats.max_queue_depth = self
            .stats
            .max_queue_depth
            .max(self.workers[thief].deque.len() as u64);
        self.stats.steals += 1;
        self.r.tel.count(names::TASK_STEALS_TOTAL, &[], 1);
    }

    /// Book one control-frame leg; `None` means the leg was lost or
    /// corrupted (a corrupted leg is round-tripped through the codec to
    /// prove the CRC rejects it).
    fn leg(&mut self, from: CoreId, to: CoreId, t: SimTime, bytes: u64) -> Option<SimTime> {
        let Some(fc) = self.r.fault.clone() else {
            return Some(self.r.platform.message(from, to, t, bytes));
        };
        let seq = self.next_seq(from, to);
        match fc
            .plan
            .message_outcome(u64::from(from.raw()), u64::from(to.raw()), seq, 0)
        {
            MessageOutcome::Deliver => Some(self.r.platform.message(from, to, t, bytes)),
            MessageOutcome::Delay(d) => Some(self.r.platform.message(from, to, t + d, bytes)),
            MessageOutcome::Corrupt { .. } => {
                // Prove the wire layer rejects the mangled frame instead
                // of smuggling garbage into the handshake.
                let mut mangled = encode_steal_request(StealRequest {
                    thief: u32::from(from.raw()),
                    epoch: 0,
                    nonce: seq,
                })
                .to_vec();
                mangled[4] ^= 0x5A;
                debug_assert_eq!(decode_steal_request(&mangled), None);
                self.r.tel.count(names::ARQ_CORRUPT_DROPS_TOTAL, &[], 1);
                None
            }
            MessageOutcome::Drop => None,
        }
    }

    fn victim_died(&self, victim: usize, at: SimTime) -> bool {
        let core = self.workers[victim].core;
        self.r
            .fault
            .as_ref()
            .and_then(|fc| fc.plan.kill_time(core.raw()))
            .is_some_and(|k| k <= at)
    }

    // ---- fence + re-queue recovery -------------------------------------

    /// Fence a dead (or hopelessly stalled) worker at `observed`: bump its
    /// claim epoch so straggling claims are rejected, re-route handoffs
    /// parked against it (their payloads still live in their producers'
    /// partitions), and restart the chains whose in-flight strips died in
    /// its partition from the source's checkpoint ring — on surviving
    /// cores, with *no* spare provisioning.
    fn fence(&mut self, widx: usize, observed: SimTime) {
        if self.workers[widx].dead {
            return;
        }
        let core = self.workers[widx].core;
        let fc = self.r.fault.clone().expect("fences require a fault plan");
        let killed_at = fc.plan.kill_time(core.raw()).unwrap_or(observed);
        let hb_latency = self.r.platform.host_path_latency(core, HEARTBEAT_BYTES);
        let detected = match &self.supervisor {
            Some(sup) => sup.detect_time(killed_at, hb_latency),
            // Unsupervised: peers only learn of the silence through the
            // ARQ's full retry horizon.
            None => killed_at + fc.horizon(),
        };
        let detected = detected.max(killed_at);
        self.workers[widx].dead = true;
        let epoch = self.workers[widx].claims.epoch();
        self.workers[widx].claims.fence(epoch + 1);

        // Chains whose current-epoch strips were resident in the dead
        // partition: everything queued here restarts from the checkpoint.
        let mut chains: BTreeSet<(u64, usize)> = BTreeSet::new();
        let drained: Vec<Task> = self.workers[widx].deque.drain(..).collect();
        for task in drained {
            if task.epoch == self.chain_epoch_of(task.frame, task.strip) {
                chains.insert((task.frame, task.strip));
            }
        }
        // Handoffs parked against the dead worker still hold their
        // payloads upstream: redirect them to survivors untouched.
        let parked: Vec<Pending> = self.workers[widx].parked.drain(..).collect();
        for mut p in parked {
            p.ready = p.ready.max(detected);
            let target = self.earliest_free_survivor();
            self.enqueue(target, p);
        }

        if chains.is_empty() {
            self.r.tel.count(names::HEARTBEAT_MISSES_TOTAL, &[], 1);
            return;
        }
        let frames_replayed = chains
            .iter()
            .map(|&(f, _)| f)
            .collect::<BTreeSet<u64>>()
            .len() as u32;
        let (first_f, first_i) = *chains.iter().next().expect("non-empty");
        let mut first_resident = SimTime::ZERO;
        let mut first_target = core;
        for (k, (f, i)) in chains.into_iter().enumerate() {
            *self.chain_epoch.entry((f, i)).or_insert(0) += 1;
            self.stats.requeued += 1;
            self.r.tel.count(names::TASK_REQUEUES_TOTAL, &[], 1);
            let data = self.rings[i]
                .get(f)
                .expect("in-flight strip still checkpointed")
                .clone();
            let src = self.source_core(i);
            let target = {
                let home = self.home(i, 0, f);
                if self.workers[home].dead {
                    self.earliest_free_survivor()
                } else {
                    home
                }
            };
            if k == 0 {
                first_target = self.workers[target].core;
                // The replay lands when the re-sent strip is resident on
                // the adopting worker — approximate with the ship below.
            }
            let epoch = self.chain_epoch_of(f, i);
            let before = self.workers[target].free.max(detected);
            self.enqueue(
                target,
                Pending {
                    frame: f,
                    strip: i,
                    group: 0,
                    epoch,
                    data,
                    from: src,
                    ready: detected,
                },
            );
            if k == 0 {
                let resumed = self.workers[target]
                    .deque
                    .back()
                    .map(|task| task.avail)
                    .unwrap_or(before);
                first_resident = resumed.max(detected);
            }
        }
        let kind = match self.workers[widx].slot {
            Slot::Primary(_, j) | Slot::Extra(_, j, _) => StageKind::PIPELINE_FILTERS[j],
        };
        let mttr = first_resident.saturating_sub(killed_at).as_secs_f64();
        self.recoveries.push(RecoveryEvent {
            frame: first_f,
            pipeline: first_i as u32,
            stage: kind,
            failed_core: core.raw(),
            migration_target: first_target.raw(),
            killed_at_secs: killed_at.as_secs_f64(),
            detected_at_secs: detected.as_secs_f64(),
            resumed_at_secs: first_resident.as_secs_f64(),
            frames_replayed,
            mttr_secs: mttr,
        });
        self.r.tel.count(names::HEARTBEAT_MISSES_TOTAL, &[], 1);
        self.r.tel.count(
            names::FRAMES_REPLAYED_TOTAL,
            &[],
            u64::from(frames_replayed),
        );
        self.r
            .tel
            .observe(names::MTTR_SECONDS, &[], SECONDS_BUCKETS, mttr);
        self.r.tel.event(
            detected.as_ps() / 1_000,
            EventKind::HeartbeatMiss {
                core: u32::from(core.raw()),
                suspicion: self.supervisor.as_ref().map_or(0.0, |s| s.phi_dead()),
            },
        );
    }

    // ---- transfer ------------------------------------------------------

    /// Assemble and ship every fully-arrived frame, in order. Mirrors the
    /// static transfer booking; acks the checkpoint rings as frames leave
    /// the chip (which re-opens the source window).
    fn drain_transfer(&mut self) -> bool {
        let p = self.r.cfg.pipelines as usize;
        let full_px = self.r.cfg.width as u64 * self.r.cfg.height as u64;
        let full_bytes = self.r.cfg.frame_bytes();
        let mut any = false;
        while self.next_out < self.r.cfg.frames {
            let f = self.next_out;
            if !(0..p).all(|i| self.delivered.contains_key(&(f, i))) {
                break;
            }
            let strips: Vec<(SimTime, Frame)> = (0..p)
                .map(|i| self.delivered.remove(&(f, i)).expect("checked"))
                .collect();
            let first_avail = strips.iter().map(|(t, _)| *t).min().expect("p >= 1");
            self.transfer
                .idle_samples
                .push(first_avail.saturating_sub(self.transfer.free));
            let cycle_start = self.transfer.free.max(first_avail);
            let mut t = self.transfer.free;
            for (arr, frame) in &strips {
                let start = (*arr).max(t);
                t = self.r.platform.fetch_from_partition(
                    self.transfer.core,
                    start,
                    frame.byte_len(),
                );
            }
            t = self.r.platform.compute(
                self.transfer.core,
                t,
                self.r.cost.assemble_cycles(full_px) as u64,
            );
            t = self
                .r
                .platform
                .mem_stream(self.transfer.core, t, MemOp::Write, full_bytes);
            let t_out = self
                .r
                .platform
                .chip_to_host(self.transfer.core, t, full_bytes);
            self.r
                .platform
                .record_busy(self.transfer.core, cycle_start, t_out);
            self.transfer.busy += t_out - cycle_start;
            self.transfer.free = t_out;
            self.transfer.frames += 1;
            self.finish = self.finish.max(t_out);
            if self.r.cfg.fidelity == Fidelity::Full {
                let parts: Vec<(StripInfo, Image)> = strips
                    .iter()
                    .map(|(_, fr)| {
                        (
                            scc_filters::vswap::mirrored_info(fr.strip),
                            fr.image.clone().expect("image present"),
                        )
                    })
                    .collect();
                self.outputs.push(Image::assemble(&parts));
            }
            for ring in &mut self.rings {
                ring.ack(f);
            }
            self.next_out += 1;
            any = true;
        }
        any
    }

    // ---- the run -------------------------------------------------------

    fn run(mut self) -> WalkthroughReport {
        let dvfs = self.r.dvfs.settings.clone();
        for (core, freq) in dvfs {
            self.r.platform.set_core_frequency(core, freq);
        }
        self.r.platform.set_spinning(self.r.placement.all_cores());

        while self.next_out < self.r.cfg.frames {
            self.admit_parked();
            if self.drain_transfer() {
                continue;
            }
            if self.produce_source() {
                continue;
            }
            self.steal_pass();
            self.admit_parked();
            if self.execute_one() {
                continue;
            }
            // Nothing ran: with tasks outstanding this is a lost-task bug
            // (the deques, parked lists and source window are all empty
            // but the film is incomplete).
            if self.next_out < self.r.cfg.frames {
                panic!(
                    "task runtime wedged at frame {} of {}: no actionable work",
                    self.next_out, self.r.cfg.frames
                );
            }
        }

        // Liveness traffic, as in the static executor.
        if let Some(spec) = self.r.cfg.fault.clone().filter(|s| s.supervised()) {
            let fc = self.r.fault.as_ref().expect("fault ctx exists");
            let booked = crate::supervise::book_heartbeats(
                &mut self.r.platform,
                &self.r.placement,
                &fc.plan,
                SimTime::from_us(spec.heartbeat_period_us),
                self.finish,
            );
            self.r.tel.count(names::HEARTBEATS_TOTAL, &[], booked);
        }

        // ---- reports ----
        let mut stage_reports: Vec<StageReport> = Vec::new();
        for r in &self.renderers {
            stage_reports.push(r.report());
        }
        if let Some(c) = &self.connector {
            stage_reports.push(c.report());
        }
        for lane in &self.filters {
            for s in lane {
                stage_reports.push(s.report());
            }
        }
        for lane in &self.extras {
            for states in lane {
                for s in states {
                    stage_reports.push(s.report());
                }
            }
        }
        stage_reports.push(self.transfer.report());

        let power_trace = self
            .r
            .platform
            .power_trace(self.finish, SimTime::from_secs(1));
        let energy = self.r.platform.energy_joules(self.finish);

        if self.r.tel.is_enabled() {
            for r in &self.renderers {
                record_stage_telemetry(&self.r.tel, r);
            }
            if let Some(c) = &self.connector {
                record_stage_telemetry(&self.r.tel, c);
            }
            for lane in &self.filters {
                for s in lane {
                    record_stage_telemetry(&self.r.tel, s);
                }
            }
            for lane in &self.extras {
                for states in lane {
                    for s in states {
                        record_stage_telemetry(&self.r.tel, s);
                    }
                }
            }
            record_stage_telemetry(&self.r.tel, &self.transfer);
            self.r
                .tel
                .count(names::FRAMES_TOTAL, &[], self.transfer.frames);
            self.r
                .tel
                .gauge(names::WALKTHROUGH_SECONDS, &[], self.finish.as_secs_f64());
            self.r.tel.gauge(names::ENERGY_JOULES, &[], energy);
            let stats = self.r.platform.stats();
            self.r
                .tel
                .count(names::NOC_MESSAGES_TOTAL, &[], stats.noc_messages);
            self.r
                .tel
                .count(names::NOC_BYTES_TOTAL, &[], stats.noc_bytes);
            self.r
                .tel
                .count(names::TASK_SPAWNED_TOTAL, &[], self.stats.spawned);
            self.r.tel.gauge(
                names::TASK_QUEUE_DEPTH_MAX,
                &[],
                self.stats.max_queue_depth as f64,
            );
        }

        let report = WalkthroughReport {
            config: self.r.cfg.clone(),
            total_secs: self.finish.as_secs_f64(),
            stage_reports,
            power_trace,
            scc_energy_joules: energy,
            scc_idle_power: self.r.platform.idle_power(),
            mcpc_busy_secs: self.mcpc_busy.as_secs_f64(),
            platform: self.r.platform.stats(),
            degradations: Vec::new(),
            recoveries: self.recoveries,
            task_stats: Some(self.stats),
            dvfs_decisions: Vec::new(),
            outputs: (self.r.cfg.fidelity == Fidelity::Full).then_some(self.outputs),
            // The steal scheduler interleaves strips across cores, so the
            // static trace invariants (per-stage frame monotonicity) do
            // not apply; the task ledger is the runtime's audit trail.
            trace: None,
            telemetry: self.r.tel.snapshot(),
        };
        if self.r.cfg.verify {
            let mut violations = crate::invariant::check_report(&report);
            if let Err(e) = self.r.platform.audit_noc() {
                violations.push(crate::invariant::Violation::new("noc-conservation", e));
            }
            crate::invariant::enforce(&report.config, &violations);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Arrangement, FaultSpec, KillSpec, RunConfig, Runtime};
    use scc_render::{CityConfig, Scene};
    use std::sync::Arc;

    fn tiny_scene() -> Arc<Scene> {
        Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 3,
        }))
    }

    fn cfg(mode: RendererMode, pipelines: u32, frames: u64) -> RunConfig {
        RunConfig::builder()
            .renderer(mode)
            .arrangement(Arrangement::Ordered)
            .pipelines(pipelines)
            .size(100, 100)
            .frames(frames)
            .seed(42)
            .fidelity(Fidelity::TimingOnly)
            .runtime(Runtime::Tasks)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn tasks_runtime_completes_and_conserves() {
        for mode in [
            RendererMode::SingleRenderer,
            RendererMode::PerPipelineRenderer,
            RendererMode::McpcRenderer,
        ] {
            let mut c = cfg(mode, 2, 8);
            c.verify = true;
            let report = SimRunner::new(c, tiny_scene()).run();
            let stats = report.task_stats.expect("task ledger present");
            assert_eq!(stats.completed + stats.degraded, stats.spawned);
            assert!(stats.executed >= stats.completed);
            assert!(report.total_secs > 0.0);
        }
    }

    #[test]
    fn tasks_film_matches_static_film() {
        let scene = tiny_scene();
        let mut st = cfg(RendererMode::SingleRenderer, 2, 4);
        st.runtime = Runtime::Static;
        st.fidelity = Fidelity::Full;
        let mut tk = st.clone();
        tk.runtime = Runtime::Tasks;
        let a = SimRunner::new(st, Arc::clone(&scene)).run();
        let b = SimRunner::new(tk, scene).run();
        assert_eq!(
            a.outputs.expect("static frames"),
            b.outputs.expect("task frames"),
            "task scheduling changed the film"
        );
    }

    #[test]
    fn tasks_steal_under_load() {
        // With one renderer feeding three lanes, cheap stages go hungry
        // and the runtime must actually steal.
        let c = cfg(RendererMode::SingleRenderer, 3, 16);
        let report = SimRunner::new(c, tiny_scene()).run();
        let stats = report.task_stats.expect("ledger");
        assert!(stats.steal_attempts > 0, "no steal attempts at all");
        assert!(stats.steals > 0, "no successful steals: {stats:?}");
        assert!(stats.max_queue_depth >= 1);
    }

    #[test]
    fn kill_recovers_by_requeue_with_no_lost_or_duplicate_task() {
        let scene = tiny_scene();
        let mut clean = cfg(RendererMode::SingleRenderer, 2, 6);
        clean.fidelity = Fidelity::Full;
        clean.runtime = Runtime::Static;
        let reference = SimRunner::new(clean.clone(), Arc::clone(&scene)).run();

        let mut c = clean.clone();
        c.runtime = Runtime::Tasks;
        c.verify = true;
        // Kill while the core is mid-chain on frame 0 (first strip lands
        // ~15 ms in, the chain runs to ~36 ms), so recovery is exercised
        // as a *re-queue* of queued work — a kill that lands before any
        // strip arrives is observed at injection time and merely
        // re-routes.
        c.fault = Some(FaultSpec {
            kills: vec![KillSpec {
                pipeline: 0,
                stage: 1,
                at_ms: 20,
            }],
            heartbeat_period_us: 2_000,
            phi_dead: 2.0,
            ..FaultSpec::default()
        });
        let report = SimRunner::new(c, scene).run();
        let stats = report.task_stats.expect("ledger");
        assert_eq!(
            stats.completed + stats.degraded,
            stats.spawned,
            "task conservation broke under a kill: {stats:?}"
        );
        assert!(stats.requeued > 0, "the kill must force re-queues");
        assert!(!report.recoveries.is_empty(), "fence recorded a recovery");
        let ev = &report.recoveries[0];
        assert!(ev.killed_at_secs <= ev.detected_at_secs);
        assert!(ev.detected_at_secs <= ev.resumed_at_secs);
        let want = reference.outputs.expect("clean frames");
        let got = report.outputs.expect("recovered frames");
        assert_eq!(got.len(), want.len(), "a frame was lost");
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                crate::viz::frame_checksum(a),
                crate::viz::frame_checksum(b),
                "frame {i} differs after re-queue recovery"
            );
        }
    }

    #[test]
    fn permanent_stall_is_fenced_not_stolen_through() {
        // Regression: a forever-stalled worker is idle (empty deque) and
        // used to run the steal handshake as a thief. The platform's
        // stall model pushed its legs past the stall window — to the end
        // of virtual time for a permanent stall — so the "steal" booked
        // unbounded busy spans and the run never terminated. A stalled
        // core past the ARQ horizon is fail-stop-equivalent: it must be
        // fenced, its chains re-queued, and the film unchanged.
        let scene = tiny_scene();
        let mut clean = cfg(RendererMode::SingleRenderer, 2, 4);
        clean.fidelity = Fidelity::Full;
        clean.runtime = Runtime::Static;
        let reference = SimRunner::new(clean.clone(), Arc::clone(&scene)).run();

        let mut c = clean.clone();
        c.runtime = Runtime::Tasks;
        c.verify = true;
        c.fault = Some(FaultSpec {
            stall: Some(crate::spec::StallSpec {
                pipeline: 0,
                stage: 2,
                at_ms: 0,
                for_ms: u64::MAX,
            }),
            heartbeat_period_us: 2_000,
            phi_dead: 2.0,
            ..FaultSpec::default()
        });
        let report = SimRunner::new(c, scene).run();
        let stats = report.task_stats.expect("ledger");
        assert_eq!(
            stats.completed + stats.degraded,
            stats.spawned,
            "task conservation broke under a permanent stall: {stats:?}"
        );
        assert!(
            report.total_secs < 3600.0,
            "stalled core leaked into the timeline: {} s",
            report.total_secs
        );
        let want = reference.outputs.expect("clean frames");
        let got = report.outputs.expect("stall-recovered frames");
        assert_eq!(got.len(), want.len(), "a frame was lost");
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                crate::viz::frame_checksum(a),
                crate::viz::frame_checksum(b),
                "frame {i} differs after fencing the stalled core"
            );
        }
    }

    #[test]
    fn deterministic_per_flavor_and_schedule_independent_film() {
        let scene = tiny_scene();
        let mut c = cfg(RendererMode::PerPipelineRenderer, 2, 4);
        c.fidelity = Fidelity::Full;
        let a = run_tasks(
            SimRunner::new(c.clone(), Arc::clone(&scene)),
            ScheduleFlavor::Sim,
        );
        let b = run_tasks(
            SimRunner::new(c.clone(), Arc::clone(&scene)),
            ScheduleFlavor::Sim,
        );
        assert_eq!(a.fingerprint(), b.fingerprint(), "same flavor must repeat");
        let d = run_tasks(SimRunner::new(c, scene), ScheduleFlavor::Des);
        assert_eq!(
            a.outputs.expect("sim frames"),
            d.outputs.expect("des frames"),
            "film must be schedule-independent"
        );
        let sa = a.task_stats.expect("ledger");
        let sd = d.task_stats.expect("ledger");
        assert_eq!(sa.spawned, sd.spawned);
        assert_eq!(sa.completed, sd.completed);
    }

    #[test]
    fn bounded_queues_never_exceed_capacity() {
        let mut c = cfg(RendererMode::SingleRenderer, 2, 12);
        c.task_tuning.queue_capacity = 2;
        let report = SimRunner::new(c, tiny_scene()).run();
        let stats = report.task_stats.expect("ledger");
        assert!(
            stats.max_queue_depth <= 2,
            "deque exceeded its bound: {}",
            stats.max_queue_depth
        );
        assert_eq!(stats.completed, stats.spawned);
    }
}
