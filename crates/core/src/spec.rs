//! Pipeline configuration: renderer mode, arrangement, geometry, fidelity.

use scc_sim::{CoreId, FreqMHz};
use serde::Serialize;

/// The stage types of the paper's macro pipeline (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum StageKind {
    /// RS — renders a strip (or the full frame) from the CAD data.
    Render,
    /// CS — receives frames from the MCPC and distributes them.
    Connect,
    /// SeS — sepia tone.
    Sepia,
    /// BS — blur (the most expensive filter stage).
    Blur,
    /// ScS — random vertical scratches.
    Scratch,
    /// FS — per-frame brightness flicker.
    Flicker,
    /// SwS — vertical mirror.
    Swap,
    /// TrS — collects strips, assembles, sends to the visualisation client.
    Transfer,
}

impl StageKind {
    /// The five filter stages inside one pipeline, in order.
    pub const PIPELINE_FILTERS: [StageKind; 5] = [
        StageKind::Sepia,
        StageKind::Blur,
        StageKind::Scratch,
        StageKind::Flicker,
        StageKind::Swap,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StageKind::Render => "render",
            StageKind::Connect => "connect",
            StageKind::Sepia => "sepia",
            StageKind::Blur => "blur",
            StageKind::Scratch => "scratch",
            StageKind::Flicker => "flicker",
            StageKind::Swap => "swap",
            StageKind::Transfer => "transfer",
        }
    }
}

/// Who renders (§V's three scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RendererMode {
    /// One SCC core renders full frames and splits them among pipelines.
    SingleRenderer,
    /// One render stage per pipeline, each rendering its own strip
    /// (sort-first).
    PerPipelineRenderer,
    /// The MCPC's Xeon renders; a connector core on the SCC distributes.
    McpcRenderer,
}

impl RendererMode {
    pub fn name(self) -> &'static str {
        match self {
            RendererMode::SingleRenderer => "1 renderer",
            RendererMode::PerPipelineRenderer => "n renderers",
            RendererMode::McpcRenderer => "MCPC renderer",
        }
    }

    /// SCC cores needed for `p` pipelines in this mode.
    pub fn cores_needed(self, p: u32) -> u32 {
        match self {
            // render + 5p filters + transfer
            RendererMode::SingleRenderer => 5 * p + 2,
            // p renderers + 5p filters + transfer
            RendererMode::PerPipelineRenderer => 6 * p + 1,
            // connector + 5p filters + transfer
            RendererMode::McpcRenderer => 5 * p + 2,
        }
    }

    /// Largest pipeline count that fits on the 48-core SCC.
    pub fn max_pipelines(self) -> u32 {
        let mut p = 1;
        while self.cores_needed(p + 1) <= 48 {
            p += 1;
        }
        p
    }
}

/// Physical placement strategies for the pipeline stages (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Arrangement {
    /// Stages assigned in SCC core-id order.
    Unordered,
    /// Pipelines laid in parallel along the mesh rows.
    Ordered,
    /// Like ordered, but every second pipeline reversed.
    Flipped,
}

impl Arrangement {
    pub fn name(self) -> &'static str {
        match self {
            Arrangement::Unordered => "unordered",
            Arrangement::Ordered => "ordered",
            Arrangement::Flipped => "flipped",
        }
    }

    pub fn all() -> [Arrangement; 3] {
        [
            Arrangement::Unordered,
            Arrangement::Ordered,
            Arrangement::Flipped,
        ]
    }
}

/// Whether frames carry real pixels through the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Fidelity {
    /// Process real images (output comparable to the reference).
    Full,
    /// Charge costs only; frames carry byte counts. Timing is identical
    /// to `Full` by construction.
    TimingOnly,
}

/// A core stall injected into the simulated run, addressed by pipeline
/// position rather than raw core id so it survives placement changes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StallSpec {
    /// Which pipeline's stage stalls (0-based).
    pub pipeline: u32,
    /// Which of the five filter stages stalls (0-based, sepia..swap).
    pub stage: u32,
    /// Start of the stall window, milliseconds of virtual time.
    pub at_ms: u64,
    /// Stall length, milliseconds; `u64::MAX` = never recovers.
    pub for_ms: u64,
}

/// A permanent fail-stop core kill, addressed like [`StallSpec`] by
/// pipeline position. Unlike a stall the core never comes back; with a
/// spare core available the supervisor *migrates* the stage instead of
/// failing the whole lane over.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct KillSpec {
    /// Which pipeline's stage dies (0-based).
    pub pipeline: u32,
    /// Which of the five filter stages dies (0-based, sepia..swap).
    pub stage: u32,
    /// Instant of the fail-stop, milliseconds of virtual time.
    pub at_ms: u64,
}

/// Fault-injection knobs for a run. All rates are per transmission
/// attempt; the same seed always produces the same fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultSpec {
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Probability a message transmission attempt is lost.
    pub drop_rate: f64,
    /// Probability a message transmission attempt arrives corrupted.
    pub corrupt_rate: f64,
    /// Probability a NoC message / transmission attempt is delayed.
    pub delay_rate: f64,
    /// Upper bound of an injected delay, microseconds.
    pub max_delay_us: u64,
    /// Number of mesh links running at `degrade_factor` bandwidth.
    pub degraded_links: u32,
    /// Bandwidth multiplier of a degraded link (0 < f ≤ 1).
    pub degrade_factor: f64,
    /// Optional core stall.
    pub stall: Option<StallSpec>,
    /// Per-attempt acknowledgement timeout, microseconds of virtual time
    /// (wall-clock milliseconds on the native runner).
    pub timeout_us: u64,
    /// Retransmissions allowed after the first attempt.
    pub retry_budget: u32,
    /// Permanent core kills. Non-empty kills arm the MCPC supervisor:
    /// placed cores emit heartbeats and a dead stage is migrated to a
    /// spare core (when one is available) instead of degrading the lane.
    pub kills: Vec<KillSpec>,
    /// Heartbeat emission period, microseconds of virtual time.
    pub heartbeat_period_us: u64,
    /// Phi-style suspicion threshold: a core is declared dead once no
    /// heartbeat has arrived for `phi_dead` periods (beyond the mesh
    /// latency of the freshest possible heartbeat). Must be ≥ 2, which
    /// also keeps detection latency monotone in the heartbeat period.
    pub phi_dead: f64,
    /// Bound of the per-strip checkpoint ring the replay path restores
    /// from (frames retained until acknowledged by the transfer stage).
    pub checkpoint_depth: u32,
    /// Spare cores the supervisor may enlist before falling back to
    /// graceful degradation (0 forces the PR-1 failover path).
    pub max_spares: u32,
}

impl Default for FaultSpec {
    /// A seeded but quiet plan: retry machinery armed, no faults injected.
    fn default() -> Self {
        FaultSpec {
            seed: 0xFA_017,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            delay_rate: 0.0,
            max_delay_us: 200,
            degraded_links: 0,
            degrade_factor: 1.0,
            stall: None,
            timeout_us: 5_000,
            retry_budget: 3,
            kills: Vec::new(),
            heartbeat_period_us: 50_000,
            phi_dead: 4.0,
            checkpoint_depth: 4,
            max_spares: u32::MAX,
        }
    }
}

impl FaultSpec {
    pub fn validate(&self, pipelines: u32) -> Result<(), String> {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("corrupt_rate", self.corrupt_rate),
            ("delay_rate", self.delay_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} {rate} outside [0, 1]"));
            }
        }
        if self.drop_rate + self.corrupt_rate + self.delay_rate > 1.0 {
            return Err("fault rates sum beyond 1".into());
        }
        if !(self.degrade_factor > 0.0 && self.degrade_factor <= 1.0) {
            return Err(format!(
                "degrade_factor {} outside (0, 1]",
                self.degrade_factor
            ));
        }
        if let Some(stall) = &self.stall {
            if stall.pipeline >= pipelines {
                return Err(format!(
                    "stall targets pipeline {} of {pipelines}",
                    stall.pipeline
                ));
            }
            if stall.stage >= StageKind::PIPELINE_FILTERS.len() as u32 {
                return Err(format!("stall targets stage {} of 5", stall.stage));
            }
        }
        for kill in &self.kills {
            if kill.pipeline >= pipelines {
                return Err(format!(
                    "kill targets pipeline {} of {pipelines}",
                    kill.pipeline
                ));
            }
            if kill.stage >= StageKind::PIPELINE_FILTERS.len() as u32 {
                return Err(format!("kill targets stage {} of 5", kill.stage));
            }
        }
        if !self.kills.is_empty() {
            if self.heartbeat_period_us < 1_000 {
                return Err(format!(
                    "heartbeat period {}us below the 1ms floor",
                    self.heartbeat_period_us
                ));
            }
            if !(self.phi_dead >= 2.0 && self.phi_dead.is_finite()) {
                return Err(format!("phi_dead {} below 2", self.phi_dead));
            }
            if self.checkpoint_depth == 0 {
                return Err("checkpoint_depth must be at least 1".into());
            }
        }
        Ok(())
    }

    /// Does this spec arm the MCPC supervisor (heartbeats, migration)?
    pub fn supervised(&self) -> bool {
        !self.kills.is_empty()
    }
}

/// Which filter-kernel backend the runners execute. `Auto` (the
/// default, and the only value the golden configs use) resolves to the
/// build's default backend: vectorized when `scc-filters` was compiled
/// with the `simd` feature, scalar otherwise. Both backends are always
/// compiled and bit-identical, so this knob — like the rest of
/// [`NativeTuning`] — can never move a pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub enum KernelChoice {
    #[default]
    Auto,
    /// Force the paper-literal scalar loops.
    Scalar,
    /// Force the lane-vectorized kernels.
    Simd,
}

impl KernelChoice {
    /// Resolve to a concrete backend.
    pub fn resolve(&self) -> scc_filters::KernelBackend {
        match self {
            KernelChoice::Auto => scc_filters::KernelBackend::default_backend(),
            KernelChoice::Scalar => scc_filters::KernelBackend::Scalar,
            KernelChoice::Simd => scc_filters::KernelBackend::Simd,
        }
    }

    /// Short name for digests and fuzz-repro lines.
    pub fn name(&self) -> &'static str {
        match self {
            KernelChoice::Auto => "auto",
            KernelChoice::Scalar => "scalar",
            KernelChoice::Simd => "simd",
        }
    }
}

/// Whether the native runner fuses maximal pointwise stage runs into a
/// single memory traversal per row pair (see `scc_filters::FusedPass`).
/// `Auto` resolves to on. Fusion only ever applies inside a merged
/// placement group, so fixed arrangements (singleton groups) are
/// unaffected by construction; auto-placed runs additionally feed the
/// fused group weights to the partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub enum FuseChoice {
    #[default]
    Auto,
    /// Run every stage as its own pass (the pre-fusion executor).
    Off,
    /// Fuse maximal pointwise runs.
    On,
}

impl FuseChoice {
    /// Resolve to a concrete on/off decision.
    pub fn enabled(&self) -> bool {
        !matches!(self, FuseChoice::Off)
    }

    /// Short name for digests and fuzz-repro lines.
    pub fn name(&self) -> &'static str {
        match self {
            FuseChoice::Auto => "auto",
            FuseChoice::Off => "off",
            FuseChoice::On => "on",
        }
    }
}

/// How strips are scheduled onto cores.
///
/// `Static` is the paper's model: every stage owns a core for the whole
/// run (possibly merged/replicated by the auto-placer). `Tasks` turns
/// each (frame, strip, stage-group) into a dependency-tracked task and
/// runs a randomized work-stealing protocol over the same placement —
/// the BDDT-SCC direction of ROADMAP item 4. Output film is guaranteed
/// bit-identical across both runtimes; only *when and where* a strip is
/// processed changes, which is exactly what flattens the paper's
/// Figure 15 idle-time spread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub enum Runtime {
    /// Fixed stage-to-core placement (the paper's execution model).
    #[default]
    Static,
    /// Dependency-driven task runtime with per-core deques, randomized
    /// work stealing, and re-queue recovery.
    Tasks,
}

impl Runtime {
    /// Short name for digests and fuzz-repro lines.
    pub fn name(&self) -> &'static str {
        match self {
            Runtime::Static => "static",
            Runtime::Tasks => "tasks",
        }
    }
}

/// Knobs of the dependency-driven task runtime ([`Runtime::Tasks`]).
/// Like [`NativeTuning`] these are performance/robustness knobs only:
/// the output film is bit-identical for every legal setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TaskTuning {
    /// Bounded per-core deque capacity. A producer whose target deque is
    /// full *stalls* (backpressure) instead of growing the queue — the
    /// runtime can never OOM on a slow consumer.
    pub queue_capacity: u32,
    /// Per-attempt steal-request acknowledgement window, microseconds of
    /// virtual time. Attempt `n` waits `2^n` times as long (exponential
    /// backoff), mirroring the ARQ layer's schedule.
    pub steal_timeout_us: u64,
    /// Steal attempts a hungry core makes (each against a fresh random
    /// victim) before re-checking its own deque.
    pub steal_retries: u32,
}

impl Default for TaskTuning {
    fn default() -> Self {
        TaskTuning {
            queue_capacity: 8,
            steal_timeout_us: 200,
            steal_retries: 3,
        }
    }
}

impl TaskTuning {
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("task queue_capacity must be at least 1".into());
        }
        if self.steal_timeout_us == 0 {
            return Err("steal_timeout_us must be at least 1".into());
        }
        if self.steal_retries == 0 {
            return Err("steal_retries must be at least 1".into());
        }
        Ok(())
    }
}

/// Host-execution tuning for the native runner (and the runners' buffer
/// management). These knobs affect performance only: output is guaranteed
/// bit-identical across every setting, which `tests/parallel_equivalence.rs`
/// enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct NativeTuning {
    /// Worker threads one filter stage may spread its row-chunked kernel
    /// over (1 = plain sequential kernels). This is data parallelism
    /// *inside* a stage, on top of the one-thread-per-stage macro
    /// pipelining.
    pub kernel_threads: u32,
    /// Recycle frame/strip allocations through `scc-core`'s buffer pool
    /// instead of hitting the allocator every hop.
    pub buffer_pool: bool,
    /// Filter-kernel backend (scalar reference loops vs lane-vectorized
    /// kernels; `Auto` follows the build's `simd` feature).
    pub kernel: KernelChoice,
    /// Pointwise stage fusion in the native executor (`Auto` = on).
    pub fuse: FuseChoice,
}

impl Default for NativeTuning {
    fn default() -> Self {
        NativeTuning {
            kernel_threads: 1,
            buffer_pool: true,
            kernel: KernelChoice::Auto,
            fuse: FuseChoice::Auto,
        }
    }
}

impl NativeTuning {
    pub fn validate(&self) -> Result<(), String> {
        if self.kernel_threads == 0 {
            return Err("kernel_threads must be at least 1".into());
        }
        Ok(())
    }
}

/// Tuning of the closed-loop per-tile DVFS governor
/// ([`PowerConfig::Governed`]). The governor samples per-stage idle
/// fractions once per `epoch_frames` delivered frames and moves one tile
/// (or one voltage island) one frequency step at a time: the stage with
/// the smallest idle fraction is raised when it sits below
/// `bottleneck_idle_frac`, and a whole island is throttled when every
/// stage on it idles above `throttle_idle_frac`. Raises are suppressed
/// once the floor-power delta over the uniform-533 baseline would exceed
/// `power_cap_watts`. A candidate move must repeat for
/// `hysteresis_epochs` consecutive epochs before it is applied, which
/// bounds frequency flips (the no-oscillation invariant).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GovernorTuning {
    /// Frames (or generic work items) per control epoch. Decisions made
    /// at the end of epoch `e` take effect in epoch `e + 2`, so both
    /// virtual-time backends — frame-major and event-driven — see the
    /// identical work-to-frequency mapping despite pipelined lookahead.
    pub epoch_frames: u32,
    /// Consecutive epochs a candidate move must persist before it is
    /// applied.
    pub hysteresis_epochs: u32,
    /// A stage idling below this fraction of the epoch is a bottleneck
    /// candidate.
    pub bottleneck_idle_frac: f64,
    /// An island whose every resident stage idles above this fraction is
    /// a throttle candidate.
    pub throttle_idle_frac: f64,
    /// Energy budget: cap on the chip floor-power increase (watts) over
    /// the uniform-533 baseline that raises may accumulate.
    pub power_cap_watts: f64,
}

impl Default for GovernorTuning {
    fn default() -> Self {
        GovernorTuning {
            epoch_frames: 8,
            hysteresis_epochs: 2,
            bottleneck_idle_frac: 0.10,
            throttle_idle_frac: 0.55,
            power_cap_watts: 8.0,
        }
    }
}

impl GovernorTuning {
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch_frames == 0 {
            return Err("governor epoch_frames must be at least 1 (zero epoch)".into());
        }
        if self.hysteresis_epochs == 0 {
            return Err("governor hysteresis_epochs must be at least 1".into());
        }
        for (name, v) in [
            ("bottleneck_idle_frac", self.bottleneck_idle_frac),
            ("throttle_idle_frac", self.throttle_idle_frac),
        ] {
            if !v.is_finite() || !(0.0..1.0).contains(&v) {
                return Err(format!("governor {name} {v} outside [0, 1)"));
            }
        }
        if self.bottleneck_idle_frac >= self.throttle_idle_frac {
            return Err(format!(
                "governor bottleneck_idle_frac {} must sit below throttle_idle_frac {}",
                self.bottleneck_idle_frac, self.throttle_idle_frac
            ));
        }
        if !self.power_cap_watts.is_finite() || self.power_cap_watts < 0.0 {
            return Err(format!(
                "governor power_cap_watts {} is not a finite non-negative budget",
                self.power_cap_watts
            ));
        }
        Ok(())
    }
}

/// The power plane of a run: how per-tile frequencies are chosen.
///
/// This lifts the sim-runner-private `DvfsPlan` into [`RunConfig`], so
/// both virtual-time backends honor the same plan. `Static` is the
/// paper's open-loop experiment (a fixed frequency per listed core's
/// tile, everything else at the 533 MHz default); `Governed` closes the
/// loop with the [`GovernorTuning`] controller.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum PowerConfig {
    /// Fixed per-tile settings applied before the run starts. The empty
    /// list is the uniform-533 default.
    Static(Vec<(CoreId, FreqMHz)>),
    /// Closed-loop per-tile DVFS driven by live idle telemetry.
    Governed(GovernorTuning),
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig::Static(Vec::new())
    }
}

impl PowerConfig {
    /// Build a static plan from raw core ids, rejecting ids off the die.
    pub fn static_plan(
        pairs: impl IntoIterator<Item = (u8, FreqMHz)>,
    ) -> Result<PowerConfig, String> {
        let mut settings = Vec::new();
        for (raw, freq) in pairs {
            let core =
                CoreId::try_new(raw).ok_or_else(|| format!("unknown core {raw} (0..48)"))?;
            settings.push((core, freq));
        }
        Ok(PowerConfig::Static(settings))
    }

    /// Is this the uniform-533 default (empty static plan)?
    pub fn is_default(&self) -> bool {
        matches!(self, PowerConfig::Static(s) if s.is_empty())
    }

    /// Is the closed-loop governor armed?
    pub fn governed(&self) -> bool {
        matches!(self, PowerConfig::Governed(_))
    }

    /// Short name for digests and fuzz-repro lines.
    pub fn name(&self) -> &'static str {
        match self {
            PowerConfig::Static(_) => "static",
            PowerConfig::Governed(_) => "governed",
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        match self {
            PowerConfig::Static(settings) => {
                let mut tiles_seen = Vec::new();
                for (core, _) in settings {
                    let tile = core.tile();
                    if tiles_seen.contains(&tile) {
                        return Err(format!(
                            "duplicate tile {}: frequency is per tile, set it once",
                            tile.raw()
                        ));
                    }
                    tiles_seen.push(tile);
                }
                Ok(())
            }
            PowerConfig::Governed(tuning) => tuning.validate(),
        }
    }
}

/// A declarative stage of a generic macro pipeline: work is an affine
/// function of the item's input payload, so the whole chain's work
/// profile is a pure function of the spec (deterministic across
/// backends).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GenericStageSpec {
    /// Stage name for reports.
    pub name: String,
    /// Cycles charged per item regardless of payload.
    pub fixed_cycles: f64,
    /// Cycles charged per input byte.
    pub cycles_per_byte: f64,
    /// Auxiliary DRAM reads as a fraction of the input payload.
    pub read_factor: f64,
    /// Auxiliary DRAM writes as a fraction of the input payload.
    pub write_factor: f64,
    /// Output payload as a fraction of the input payload.
    pub out_factor: f64,
}

impl GenericStageSpec {
    /// A compute-only stage passing its payload through unchanged.
    pub fn compute(name: &str, cycles_per_byte: f64) -> GenericStageSpec {
        GenericStageSpec {
            name: name.to_string(),
            fixed_cycles: 0.0,
            cycles_per_byte,
            read_factor: 0.0,
            write_factor: 0.0,
            out_factor: 1.0,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("generic stage name must not be empty".into());
        }
        for (field, v) in [
            ("fixed_cycles", self.fixed_cycles),
            ("cycles_per_byte", self.cycles_per_byte),
            ("read_factor", self.read_factor),
            ("write_factor", self.write_factor),
            ("out_factor", self.out_factor),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "generic stage {} {field} = {v} is not a finite non-negative value",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

/// A declarative generic chain (the spec form of the old
/// `run_generic_chain` side door, routable through `scc_core::run`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GenericChainSpec {
    pub stages: Vec<GenericStageSpec>,
    /// Work items streamed through the chain.
    pub items: u64,
    /// Payload bytes entering stage 0 per item.
    pub source_bytes: u64,
}

impl GenericChainSpec {
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("generic chain has no stages".into());
        }
        if self.stages.len() > 48 {
            return Err(format!(
                "generic chain has {} stages; the SCC has 48 cores",
                self.stages.len()
            ));
        }
        if self.items == 0 {
            return Err("generic chain needs at least one item".into());
        }
        if self.source_bytes == 0 {
            return Err("generic chain needs a non-empty source payload".into());
        }
        for stage in &self.stages {
            stage.validate()?;
        }
        Ok(())
    }
}

/// The irregular wavefront-propagation workload: morphological
/// reconstruction of a seeded marker under a seeded mask grid (Gomes &
/// Teodoro). Each propagation wave is one pipeline item whose work is
/// proportional to the wave's frontier size — queue-driven,
/// data-dependent load, the stress case the film pipeline never shows.
/// The grids, the wave profile, and the reconstructed-grid digest are
/// pure functions of `(width, height, seeds, seed)`, so the workload is
/// deterministic across backends and the digest gates output drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WavefrontSpec {
    /// Grid width in cells.
    pub width: u32,
    /// Grid height in cells.
    pub height: u32,
    /// Marker seed points planted into the mask.
    pub seeds: u32,
    /// Cap on propagation waves (0 = run until the frontier drains).
    pub max_waves: u32,
}

impl Default for WavefrontSpec {
    fn default() -> Self {
        WavefrontSpec {
            width: 96,
            height: 96,
            seeds: 3,
            max_waves: 0,
        }
    }
}

impl WavefrontSpec {
    pub fn validate(&self) -> Result<(), String> {
        if self.width < 8 || self.height < 8 {
            return Err(format!(
                "wavefront grid {}x{} below the 8x8 floor",
                self.width, self.height
            ));
        }
        if self.width > 1024 || self.height > 1024 {
            return Err(format!(
                "wavefront grid {}x{} beyond the 1024x1024 cap",
                self.width, self.height
            ));
        }
        if self.seeds == 0 {
            return Err("wavefront needs at least one marker seed".into());
        }
        if self.seeds as u64 > self.width as u64 * self.height as u64 {
            return Err(format!(
                "{} marker seeds exceed the {}x{} grid",
                self.seeds, self.width, self.height
            ));
        }
        Ok(())
    }
}

/// What the pipeline processes: the paper's silent-film walkthrough
/// (default), a user-declared generic chain, or the irregular wavefront
/// workload. Non-film workloads run on the sim and DES virtual-time
/// backends through the same `scc_core::run` facade, with the same
/// telemetry, power plane, and invariant checking.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub enum Workload {
    /// The paper's render → 5-filter → transfer silent-film pipeline.
    #[default]
    Film,
    /// A declarative generic macro-pipeline chain.
    Generic(GenericChainSpec),
    /// Irregular wavefront propagation (morphological reconstruction).
    Wavefront(WavefrontSpec),
}

impl Workload {
    pub fn is_film(&self) -> bool {
        matches!(self, Workload::Film)
    }

    /// Short name for digests and fuzz-repro lines.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Film => "film",
            Workload::Generic(_) => "generic",
            Workload::Wavefront(_) => "wavefront",
        }
    }
}

/// A complete experiment description.
#[derive(Debug, Clone, Serialize)]
pub struct RunConfig {
    pub renderer: RendererMode,
    pub arrangement: Arrangement,
    pub pipelines: u32,
    /// Full frame width in pixels.
    pub width: u32,
    /// Full frame height in pixels.
    pub height: u32,
    /// Walkthrough length in frames.
    pub frames: u64,
    /// Run seed for the scratch/flicker randomness.
    pub seed: u64,
    pub fidelity: Fidelity,
    /// Record per-stage phase spans (exportable to Chrome trace JSON).
    pub trace: bool,
    /// Run the invariant checker during sim/DES execution: frame
    /// conservation, trace causality, NoC flit conservation, energy
    /// identity. A violation panics with the seed + config that
    /// produced it. Costs a little memory (the trace is collected
    /// internally even when `trace` is off) but never changes results.
    pub verify: bool,
    /// Fault injection; `None` runs the healthy fast path unchanged.
    pub fault: Option<FaultSpec>,
    /// Host-execution tuning (kernel threads, buffer pooling). Never
    /// changes output, only how fast the host produces it.
    pub tuning: NativeTuning,
    /// Record metrics and events into a [`scc_telemetry::TelemetrySink`]
    /// during the run. Observation only: the sink never feeds back into
    /// scheduling, so enabling it cannot move a result, and disabling it
    /// (the default) leaves golden digests byte-identical.
    pub telemetry: bool,
    /// Let the stage-graph scheduler compute the placement instead of
    /// the fixed arrangement: cheap adjacent stages merge onto one
    /// core and the bottleneck stage is replicated across spare cores
    /// (frame-round-robin, order preserving). Off by default; the
    /// output film is bit-identical either way.
    pub auto_place: bool,
    /// Explicit per-stage weights for the scheduler, in
    /// [`StageKind::PIPELINE_FILTERS`] order (five finite, non-negative
    /// values; relative scale only). `None` uses the static cost-model
    /// estimate. Telemetry-driven placement extracts weights from a
    /// previous run's `scc_stage_idle_ms` histograms and feeds them in
    /// here.
    pub stage_weights: Option<Vec<f64>>,
    /// Execution model: static stage-to-core placement (default) or the
    /// dependency-driven work-stealing task runtime. Film output is
    /// bit-identical either way.
    pub runtime: Runtime,
    /// Knobs of the task runtime (ignored under [`Runtime::Static`]).
    pub task_tuning: TaskTuning,
    /// The power plane: fixed per-tile frequencies (the paper's open-loop
    /// experiment) or the closed-loop governor. Honored by the sim and
    /// DES backends; frequency never moves a pixel, so output is
    /// bit-identical across every power plan.
    pub power: PowerConfig,
    /// What the pipeline processes (default: the paper's silent film).
    pub workload: Workload,
}

impl Default for RunConfig {
    /// The paper's default experiment: 400-frame walkthrough over 400×400
    /// frames (Figure 12's largest point matches the walkthrough time of
    /// the single-pipeline MCPC configuration).
    fn default() -> Self {
        RunConfig {
            renderer: RendererMode::SingleRenderer,
            arrangement: Arrangement::Ordered,
            pipelines: 1,
            width: 400,
            height: 400,
            frames: 400,
            seed: 0x51CC_F11F,
            fidelity: Fidelity::TimingOnly,
            trace: false,
            verify: false,
            fault: None,
            tuning: NativeTuning::default(),
            telemetry: false,
            auto_place: false,
            stage_weights: None,
            runtime: Runtime::Static,
            task_tuning: TaskTuning::default(),
            power: PowerConfig::default(),
            workload: Workload::Film,
        }
    }
}

impl RunConfig {
    /// Start a fluent [`RunConfigBuilder`] seeded with the defaults.
    /// `build()` runs [`RunConfig::validate`] once, so a successfully
    /// built config is known-runnable on every backend.
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder::default()
    }

    /// Check the configuration fits the machine.
    pub fn validate(&self) -> Result<(), String> {
        if self.pipelines == 0 {
            return Err("at least one pipeline required".into());
        }
        let needed = self.renderer.cores_needed(self.pipelines);
        if needed > 48 {
            return Err(format!(
                "{} pipelines need {needed} cores; the SCC has 48",
                self.pipelines
            ));
        }
        if self.height < self.pipelines {
            return Err("more pipelines than image rows".into());
        }
        if self.width == 0 || self.height == 0 || self.frames == 0 {
            return Err("degenerate geometry".into());
        }
        if let Some(fault) = &self.fault {
            fault.validate(self.pipelines)?;
        }
        self.tuning.validate()?;
        self.task_tuning.validate()?;
        if let Some(w) = &self.stage_weights {
            if w.len() != StageKind::PIPELINE_FILTERS.len() {
                return Err(format!(
                    "stage_weights has {} entries, need {}",
                    w.len(),
                    StageKind::PIPELINE_FILTERS.len()
                ));
            }
            for (j, v) in w.iter().enumerate() {
                if !v.is_finite() || *v < 0.0 {
                    return Err(format!("stage_weights[{j}] = {v} is not a finite weight"));
                }
            }
        }
        self.power.validate()?;
        if self.power.governed() && self.runtime == Runtime::Tasks {
            return Err("the DVFS governor requires the static runtime".into());
        }
        match &self.workload {
            Workload::Film => {}
            Workload::Generic(spec) => {
                spec.validate()?;
                self.validate_non_film()?;
            }
            Workload::Wavefront(spec) => {
                spec.validate()?;
                self.validate_non_film()?;
            }
        }
        Ok(())
    }

    /// Current boundary of the unified workload plane: non-film
    /// workloads run on both virtual-time backends with telemetry, the
    /// power plane (static and governed), chain-merge auto-placement,
    /// and invariant checking — but not yet fault injection or the task
    /// runtime, which remain film-only.
    fn validate_non_film(&self) -> Result<(), String> {
        if self.fault.is_some() {
            return Err(format!(
                "fault injection requires the film workload (got {})",
                self.workload.name()
            ));
        }
        if self.runtime == Runtime::Tasks {
            return Err(format!(
                "the task runtime requires the film workload (got {})",
                self.workload.name()
            ));
        }
        Ok(())
    }

    /// Bytes of one full frame.
    pub fn frame_bytes(&self) -> u64 {
        self.width as u64 * self.height as u64 * 4
    }
}

/// Fluent construction for [`RunConfig`] — the supported alternative to
/// struct-literal configs. Starts from [`RunConfig::default`]; every
/// setter is chainable; [`RunConfigBuilder::build`] validates exactly
/// once and refuses configurations the machine cannot run.
///
/// ```
/// use scc_core::spec::{Arrangement, RendererMode, RunConfig};
///
/// let cfg = RunConfig::builder()
///     .renderer(RendererMode::McpcRenderer)
///     .arrangement(Arrangement::Ordered)
///     .pipelines(3)
///     .size(64, 48)
///     .frames(4)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.pipelines, 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunConfigBuilder {
    cfg: RunConfig,
    /// Raw-id static power pairs from [`RunConfigBuilder::power_static`],
    /// converted (and range-checked: "unknown core") in `build`.
    raw_power: Option<Vec<(u8, FreqMHz)>>,
}

impl RunConfigBuilder {
    pub fn renderer(mut self, renderer: RendererMode) -> Self {
        self.cfg.renderer = renderer;
        self
    }

    pub fn arrangement(mut self, arrangement: Arrangement) -> Self {
        self.cfg.arrangement = arrangement;
        self
    }

    pub fn pipelines(mut self, pipelines: u32) -> Self {
        self.cfg.pipelines = pipelines;
        self
    }

    pub fn width(mut self, width: u32) -> Self {
        self.cfg.width = width;
        self
    }

    pub fn height(mut self, height: u32) -> Self {
        self.cfg.height = height;
        self
    }

    /// Set both frame dimensions at once.
    pub fn size(mut self, width: u32, height: u32) -> Self {
        self.cfg.width = width;
        self.cfg.height = height;
        self
    }

    pub fn frames(mut self, frames: u64) -> Self {
        self.cfg.frames = frames;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.cfg.fidelity = fidelity;
        self
    }

    pub fn trace(mut self, trace: bool) -> Self {
        self.cfg.trace = trace;
        self
    }

    pub fn verify(mut self, verify: bool) -> Self {
        self.cfg.verify = verify;
        self
    }

    /// Enable telemetry recording (off by default).
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.cfg.telemetry = telemetry;
        self
    }

    /// Install a fault-injection plan (`fault(None)` clears it).
    pub fn fault(mut self, fault: impl Into<Option<FaultSpec>>) -> Self {
        self.cfg.fault = fault.into();
        self
    }

    /// Hand placement to the stage-graph scheduler (off by default).
    pub fn auto_place(mut self, auto_place: bool) -> Self {
        self.cfg.auto_place = auto_place;
        self
    }

    /// Explicit scheduler weights (`stage_weights(None)` reverts to the
    /// static cost-model estimate).
    pub fn stage_weights(mut self, stage_weights: impl Into<Option<Vec<f64>>>) -> Self {
        self.cfg.stage_weights = stage_weights.into();
        self
    }

    pub fn tuning(mut self, tuning: NativeTuning) -> Self {
        self.cfg.tuning = tuning;
        self
    }

    pub fn kernel_threads(mut self, kernel_threads: u32) -> Self {
        self.cfg.tuning.kernel_threads = kernel_threads;
        self
    }

    pub fn buffer_pool(mut self, buffer_pool: bool) -> Self {
        self.cfg.tuning.buffer_pool = buffer_pool;
        self
    }

    /// Pick the filter-kernel backend (default `Auto`, which follows
    /// the build's `simd` feature).
    pub fn kernel(mut self, kernel: KernelChoice) -> Self {
        self.cfg.tuning.kernel = kernel;
        self
    }

    /// Toggle pointwise stage fusion in the native executor (default
    /// `Auto` = on).
    pub fn fuse(mut self, fuse: FuseChoice) -> Self {
        self.cfg.tuning.fuse = fuse;
        self
    }

    /// Pick the execution model (default [`Runtime::Static`]).
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.cfg.runtime = runtime;
        self
    }

    /// Replace the whole task-runtime tuning block.
    pub fn task_tuning(mut self, task_tuning: TaskTuning) -> Self {
        self.cfg.task_tuning = task_tuning;
        self
    }

    /// Bounded per-core task deque capacity (task runtime only).
    pub fn task_queue_capacity(mut self, queue_capacity: u32) -> Self {
        self.cfg.task_tuning.queue_capacity = queue_capacity;
        self
    }

    /// Per-attempt steal-request timeout in microseconds (task runtime
    /// only; attempts back off exponentially).
    pub fn steal_timeout_us(mut self, steal_timeout_us: u64) -> Self {
        self.cfg.task_tuning.steal_timeout_us = steal_timeout_us;
        self
    }

    /// Steal attempts per hunger episode (task runtime only).
    pub fn steal_retries(mut self, steal_retries: u32) -> Self {
        self.cfg.task_tuning.steal_retries = steal_retries;
        self
    }

    /// Set the whole power plane at once.
    pub fn power(mut self, power: PowerConfig) -> Self {
        self.cfg.power = power;
        self.raw_power = None;
        self
    }

    /// Open-loop static frequency plan from raw core ids. Ids off the
    /// die surface as an "unknown core" error from [`Self::build`].
    pub fn power_static(mut self, pairs: impl IntoIterator<Item = (u8, FreqMHz)>) -> Self {
        self.raw_power = Some(pairs.into_iter().collect());
        self
    }

    /// Arm the closed-loop DVFS governor.
    pub fn power_governed(mut self, tuning: GovernorTuning) -> Self {
        self.cfg.power = PowerConfig::Governed(tuning);
        self.raw_power = None;
        self
    }

    /// Pick the workload (default [`Workload::Film`]).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.cfg.workload = workload;
        self
    }

    /// Validate once and hand out the finished config.
    pub fn build(mut self) -> Result<RunConfig, String> {
        if let Some(raw) = self.raw_power.take() {
            self.cfg.power = PowerConfig::static_plan(raw)?;
        }
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_budgets_match_paper() {
        // §V/§VI: the n-renderer configuration tops out at 7 pipelines
        // (6·7+1 = 43 ≤ 48); the others support more.
        assert_eq!(RendererMode::PerPipelineRenderer.max_pipelines(), 7);
        assert_eq!(RendererMode::SingleRenderer.max_pipelines(), 9);
        assert_eq!(RendererMode::McpcRenderer.max_pipelines(), 9);
        // Figure 14's x-axis: 5p+2 cores = 7, 12, ..., 42 for p = 1..8.
        assert_eq!(RendererMode::McpcRenderer.cores_needed(1), 7);
        assert_eq!(RendererMode::McpcRenderer.cores_needed(8), 42);
    }

    #[test]
    fn validation_rejects_oversubscription() {
        let cfg = RunConfig {
            renderer: RendererMode::PerPipelineRenderer,
            pipelines: 8,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let ok = RunConfig {
            renderer: RendererMode::PerPipelineRenderer,
            pipelines: 7,
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate() {
        assert!(RunConfig {
            pipelines: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RunConfig {
            frames: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RunConfig {
            height: 4,
            pipelines: 5,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn fault_spec_validation() {
        let mut cfg = RunConfig {
            fault: Some(FaultSpec::default()),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok(), "quiet fault spec is valid");

        cfg.fault = Some(FaultSpec {
            drop_rate: 1.5,
            ..FaultSpec::default()
        });
        assert!(cfg.validate().is_err(), "rate beyond 1 rejected");

        cfg.fault = Some(FaultSpec {
            drop_rate: 0.5,
            corrupt_rate: 0.4,
            delay_rate: 0.3,
            ..FaultSpec::default()
        });
        assert!(cfg.validate().is_err(), "rates summing beyond 1 rejected");

        cfg.fault = Some(FaultSpec {
            degrade_factor: 0.0,
            ..FaultSpec::default()
        });
        assert!(cfg.validate().is_err(), "zero-bandwidth link rejected");

        cfg.fault = Some(FaultSpec {
            stall: Some(StallSpec {
                pipeline: 5,
                stage: 0,
                at_ms: 0,
                for_ms: 1,
            }),
            ..FaultSpec::default()
        });
        assert!(
            cfg.validate().is_err(),
            "stall beyond pipeline count rejected"
        );

        cfg.pipelines = 2;
        cfg.fault = Some(FaultSpec {
            stall: Some(StallSpec {
                pipeline: 1,
                stage: 4,
                at_ms: 10,
                for_ms: 50,
            }),
            ..FaultSpec::default()
        });
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn kill_spec_validation() {
        let mut cfg = RunConfig {
            pipelines: 2,
            ..Default::default()
        };
        let kill = |pipeline, stage| KillSpec {
            pipeline,
            stage,
            at_ms: 5,
        };
        cfg.fault = Some(FaultSpec {
            kills: vec![kill(1, 3)],
            ..FaultSpec::default()
        });
        assert!(cfg.validate().is_ok(), "in-range kill accepted");
        assert!(cfg.fault.as_ref().unwrap().supervised());

        cfg.fault = Some(FaultSpec {
            kills: vec![kill(2, 0)],
            ..FaultSpec::default()
        });
        assert!(cfg.validate().is_err(), "kill beyond pipeline count");

        cfg.fault = Some(FaultSpec {
            kills: vec![kill(0, 5)],
            ..FaultSpec::default()
        });
        assert!(cfg.validate().is_err(), "kill beyond stage count");

        cfg.fault = Some(FaultSpec {
            kills: vec![kill(0, 0)],
            heartbeat_period_us: 10,
            ..FaultSpec::default()
        });
        assert!(cfg.validate().is_err(), "sub-millisecond heartbeat period");

        cfg.fault = Some(FaultSpec {
            kills: vec![kill(0, 0)],
            phi_dead: 1.5,
            ..FaultSpec::default()
        });
        assert!(cfg.validate().is_err(), "phi threshold below 2");

        cfg.fault = Some(FaultSpec {
            kills: vec![kill(0, 0)],
            checkpoint_depth: 0,
            ..FaultSpec::default()
        });
        assert!(cfg.validate().is_err(), "zero checkpoint depth");

        // Supervision knobs are not policed while supervision is unarmed.
        cfg.fault = Some(FaultSpec {
            phi_dead: 0.0,
            ..FaultSpec::default()
        });
        assert!(!cfg.fault.as_ref().unwrap().supervised());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn tuning_validation() {
        let mut cfg = RunConfig::default();
        assert_eq!(cfg.tuning, NativeTuning::default());
        cfg.tuning.kernel_threads = 0;
        assert!(cfg.validate().is_err(), "zero kernel threads rejected");
        cfg.tuning = NativeTuning {
            kernel_threads: 8,
            buffer_pool: false,
            ..NativeTuning::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn kernel_and_fuse_choices_resolve_and_default_to_auto() {
        let t = NativeTuning::default();
        assert_eq!(t.kernel, KernelChoice::Auto);
        assert_eq!(t.fuse, FuseChoice::Auto);
        assert_eq!(
            KernelChoice::Auto.resolve(),
            scc_filters::KernelBackend::default_backend()
        );
        assert_eq!(
            KernelChoice::Scalar.resolve(),
            scc_filters::KernelBackend::Scalar
        );
        assert_eq!(
            KernelChoice::Simd.resolve(),
            scc_filters::KernelBackend::Simd
        );
        assert!(FuseChoice::Auto.enabled());
        assert!(FuseChoice::On.enabled());
        assert!(!FuseChoice::Off.enabled());
    }

    #[test]
    fn default_matches_paper_geometry() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.frames, 400);
        assert_eq!(cfg.frame_bytes(), 640_000, "Figure 12: 400 side = 640 kb");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn stage_names() {
        assert_eq!(StageKind::Blur.name(), "blur");
        assert_eq!(StageKind::PIPELINE_FILTERS.len(), 5);
        assert_eq!(Arrangement::all().len(), 3);
        assert_eq!(RendererMode::McpcRenderer.name(), "MCPC renderer");
    }

    #[test]
    fn builder_defaults_match_default_config() {
        let built = RunConfig::builder().build().expect("defaults are valid");
        let direct = RunConfig::default();
        assert_eq!(format!("{built:?}"), format!("{direct:?}"));
    }

    #[test]
    fn builder_sets_every_field() {
        let cfg = RunConfig::builder()
            .renderer(RendererMode::McpcRenderer)
            .arrangement(Arrangement::Flipped)
            .pipelines(2)
            .size(64, 48)
            .frames(4)
            .seed(11)
            .fidelity(Fidelity::Full)
            .trace(true)
            .verify(true)
            .telemetry(true)
            .fault(FaultSpec::default())
            .kernel_threads(2)
            .buffer_pool(false)
            .auto_place(true)
            .stage_weights(vec![1.0, 5.0, 1.0, 1.0, 1.0])
            .runtime(Runtime::Tasks)
            .task_queue_capacity(16)
            .steal_timeout_us(500)
            .steal_retries(5)
            .power_static([(8, FreqMHz::F800)])
            .build()
            .expect("valid config");
        assert_eq!(cfg.renderer, RendererMode::McpcRenderer);
        assert_eq!(cfg.arrangement, Arrangement::Flipped);
        assert_eq!(
            (cfg.width, cfg.height, cfg.frames, cfg.seed),
            (64, 48, 4, 11)
        );
        assert_eq!(cfg.fidelity, Fidelity::Full);
        assert!(cfg.trace && cfg.verify && cfg.telemetry);
        assert!(cfg.fault.is_some());
        assert_eq!(cfg.tuning.kernel_threads, 2);
        assert!(!cfg.tuning.buffer_pool);
        assert!(cfg.auto_place);
        assert_eq!(
            cfg.stage_weights.as_deref(),
            Some(&[1.0, 5.0, 1.0, 1.0, 1.0][..])
        );
        assert_eq!(cfg.runtime, Runtime::Tasks);
        assert_eq!(cfg.task_tuning.queue_capacity, 16);
        assert_eq!(cfg.task_tuning.steal_timeout_us, 500);
        assert_eq!(cfg.task_tuning.steal_retries, 5);
        assert!(
            matches!(cfg.power, PowerConfig::Static(ref s) if s == &[(CoreId::new(8), FreqMHz::F800)])
        );
        assert!(cfg.workload.is_film());
    }

    #[test]
    fn runtime_and_task_tuning() {
        assert_eq!(Runtime::default(), Runtime::Static);
        assert_eq!(Runtime::Static.name(), "static");
        assert_eq!(Runtime::Tasks.name(), "tasks");
        let d = TaskTuning::default();
        assert_eq!(
            (d.queue_capacity, d.steal_timeout_us, d.steal_retries),
            (8, 200, 3)
        );
        // Every zero knob is rejected through build().
        let err = RunConfig::builder()
            .task_queue_capacity(0)
            .build()
            .unwrap_err();
        assert!(err.contains("queue_capacity"), "{err}");
        let err = RunConfig::builder()
            .steal_timeout_us(0)
            .build()
            .unwrap_err();
        assert!(err.contains("steal_timeout_us"), "{err}");
        let err = RunConfig::builder().steal_retries(0).build().unwrap_err();
        assert!(err.contains("steal_retries"), "{err}");
        // Whole-block setter.
        let cfg = RunConfig::builder()
            .task_tuning(TaskTuning {
                queue_capacity: 4,
                steal_timeout_us: 50,
                steal_retries: 2,
            })
            .build()
            .expect("valid");
        assert_eq!(cfg.task_tuning.queue_capacity, 4);
    }

    #[test]
    fn stage_weights_validation() {
        // Wrong arity.
        let err = RunConfig::builder()
            .stage_weights(vec![1.0, 2.0])
            .build()
            .unwrap_err();
        assert!(err.contains("entries"), "{err}");
        // NaN and negatives rejected — the scheduler must never see them.
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let err = RunConfig::builder()
                .stage_weights(vec![1.0, bad, 1.0, 1.0, 1.0])
                .build()
                .unwrap_err();
            assert!(err.contains("finite weight"), "{err}");
        }
        // All-zero is legal (the partitioner merges everything mergeable).
        assert!(RunConfig::builder()
            .stage_weights(vec![0.0; 5])
            .build()
            .is_ok());
        // stage_weights(None) clears.
        let cfg = RunConfig::builder()
            .stage_weights(vec![1.0; 5])
            .stage_weights(None)
            .build()
            .expect("valid");
        assert!(cfg.stage_weights.is_none());
    }

    #[test]
    fn builder_error_paths_mirror_validate() {
        // Zero pipelines.
        let err = RunConfig::builder().pipelines(0).build().unwrap_err();
        assert!(err.contains("at least one pipeline"), "{err}");
        // Core oversubscription.
        let err = RunConfig::builder()
            .renderer(RendererMode::PerPipelineRenderer)
            .pipelines(8)
            .build()
            .unwrap_err();
        assert!(err.contains("48"), "{err}");
        // More pipelines than rows.
        let err = RunConfig::builder()
            .pipelines(5)
            .size(64, 4)
            .build()
            .unwrap_err();
        assert!(err.contains("rows"), "{err}");
        // Degenerate geometry.
        let err = RunConfig::builder().frames(0).build().unwrap_err();
        assert!(err.contains("degenerate"), "{err}");
        // Invalid fault plan propagates through build().
        let err = RunConfig::builder()
            .fault(FaultSpec {
                drop_rate: 1.5,
                ..FaultSpec::default()
            })
            .build()
            .unwrap_err();
        assert!(err.contains("rate"), "{err}");
        // Invalid tuning propagates through build().
        let err = RunConfig::builder().kernel_threads(0).build().unwrap_err();
        assert!(err.contains("kernel_threads"), "{err}");
        // fault(None) clears a previously set plan.
        let cfg = RunConfig::builder()
            .fault(FaultSpec::default())
            .fault(None)
            .build()
            .expect("cleared fault plan is valid");
        assert!(cfg.fault.is_none());
    }

    #[test]
    fn power_plane_validation() {
        // A core id off the die surfaces from build().
        let err = RunConfig::builder()
            .power_static([(55, FreqMHz::F800)])
            .build()
            .unwrap_err();
        assert!(err.contains("unknown core"), "{err}");
        // Frequency is per tile: cores 4 and 5 share tile 2.
        let err = RunConfig::builder()
            .power_static([(4, FreqMHz::F800), (5, FreqMHz::F400)])
            .build()
            .unwrap_err();
        assert!(err.contains("duplicate tile"), "{err}");
        // Zero epoch.
        let err = RunConfig::builder()
            .power_governed(GovernorTuning {
                epoch_frames: 0,
                ..GovernorTuning::default()
            })
            .build()
            .unwrap_err();
        assert!(err.contains("epoch"), "{err}");
        // The governor needs the static runtime's stage ledgers.
        let err = RunConfig::builder()
            .power_governed(GovernorTuning::default())
            .runtime(Runtime::Tasks)
            .build()
            .unwrap_err();
        assert!(err.contains("static runtime"), "{err}");
        // Defaults and a valid plan.
        assert!(PowerConfig::default().is_default());
        assert!(!PowerConfig::Governed(GovernorTuning::default()).is_default());
        assert!(PowerConfig::Governed(GovernorTuning::default()).governed());
        let cfg = RunConfig::builder()
            .power_static([(4, FreqMHz::F800), (8, FreqMHz::F400)])
            .build()
            .expect("valid static plan");
        assert!(matches!(cfg.power, PowerConfig::Static(ref s) if s.len() == 2));
        // power() replaces a pending raw plan entirely.
        let cfg = RunConfig::builder()
            .power_static([(55, FreqMHz::F800)])
            .power(PowerConfig::default())
            .build()
            .expect("replaced plan is valid");
        assert!(cfg.power.is_default());
    }

    #[test]
    fn governor_tuning_validation() {
        let ok = GovernorTuning::default();
        assert!(ok.validate().is_ok());
        let bad = GovernorTuning {
            hysteresis_epochs: 0,
            ..ok.clone()
        };
        assert!(bad.validate().unwrap_err().contains("hysteresis"));
        let bad = GovernorTuning {
            bottleneck_idle_frac: 0.7,
            throttle_idle_frac: 0.6,
            ..ok.clone()
        };
        assert!(bad.validate().unwrap_err().contains("below"));
        let bad = GovernorTuning {
            throttle_idle_frac: f64::NAN,
            ..ok.clone()
        };
        assert!(bad.validate().is_err());
        let bad = GovernorTuning {
            power_cap_watts: -1.0,
            ..ok
        };
        assert!(bad.validate().unwrap_err().contains("power_cap_watts"));
    }

    #[test]
    fn workload_plane_validation() {
        // Degenerate wavefront grids.
        let err = RunConfig::builder()
            .workload(Workload::Wavefront(WavefrontSpec {
                width: 4,
                ..WavefrontSpec::default()
            }))
            .build()
            .unwrap_err();
        assert!(err.contains("8x8"), "{err}");
        let err = RunConfig::builder()
            .workload(Workload::Wavefront(WavefrontSpec {
                seeds: 0,
                ..WavefrontSpec::default()
            }))
            .build()
            .unwrap_err();
        assert!(err.contains("seed"), "{err}");
        // Generic chain sanity.
        let err = RunConfig::builder()
            .workload(Workload::Generic(GenericChainSpec {
                stages: vec![],
                items: 10,
                source_bytes: 1024,
            }))
            .build()
            .unwrap_err();
        assert!(err.contains("no stages"), "{err}");
        let err = RunConfig::builder()
            .workload(Workload::Generic(GenericChainSpec {
                stages: vec![GenericStageSpec {
                    cycles_per_byte: f64::NAN,
                    ..GenericStageSpec::compute("parse", 1.0)
                }],
                items: 10,
                source_bytes: 1024,
            }))
            .build()
            .unwrap_err();
        assert!(err.contains("finite"), "{err}");
        // Boundary: non-film workloads reject faults and the task runtime.
        let err = RunConfig::builder()
            .workload(Workload::Wavefront(WavefrontSpec::default()))
            .fault(FaultSpec::default())
            .build()
            .unwrap_err();
        assert!(err.contains("film workload"), "{err}");
        let err = RunConfig::builder()
            .workload(Workload::Wavefront(WavefrontSpec::default()))
            .runtime(Runtime::Tasks)
            .build()
            .unwrap_err();
        assert!(err.contains("film workload"), "{err}");
        // A governed wavefront run is a legal configuration.
        let cfg = RunConfig::builder()
            .workload(Workload::Wavefront(WavefrontSpec::default()))
            .power_governed(GovernorTuning::default())
            .build()
            .expect("governed wavefront is valid");
        assert_eq!(cfg.workload.name(), "wavefront");
        assert!(!cfg.workload.is_film());
        assert_eq!(cfg.power.name(), "governed");
    }
}
