//! Pipeline configuration: renderer mode, arrangement, geometry, fidelity.

use serde::Serialize;

/// The stage types of the paper's macro pipeline (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum StageKind {
    /// RS — renders a strip (or the full frame) from the CAD data.
    Render,
    /// CS — receives frames from the MCPC and distributes them.
    Connect,
    /// SeS — sepia tone.
    Sepia,
    /// BS — blur (the most expensive filter stage).
    Blur,
    /// ScS — random vertical scratches.
    Scratch,
    /// FS — per-frame brightness flicker.
    Flicker,
    /// SwS — vertical mirror.
    Swap,
    /// TrS — collects strips, assembles, sends to the visualisation client.
    Transfer,
}

impl StageKind {
    /// The five filter stages inside one pipeline, in order.
    pub const PIPELINE_FILTERS: [StageKind; 5] = [
        StageKind::Sepia,
        StageKind::Blur,
        StageKind::Scratch,
        StageKind::Flicker,
        StageKind::Swap,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StageKind::Render => "render",
            StageKind::Connect => "connect",
            StageKind::Sepia => "sepia",
            StageKind::Blur => "blur",
            StageKind::Scratch => "scratch",
            StageKind::Flicker => "flicker",
            StageKind::Swap => "swap",
            StageKind::Transfer => "transfer",
        }
    }
}

/// Who renders (§V's three scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RendererMode {
    /// One SCC core renders full frames and splits them among pipelines.
    SingleRenderer,
    /// One render stage per pipeline, each rendering its own strip
    /// (sort-first).
    PerPipelineRenderer,
    /// The MCPC's Xeon renders; a connector core on the SCC distributes.
    McpcRenderer,
}

impl RendererMode {
    pub fn name(self) -> &'static str {
        match self {
            RendererMode::SingleRenderer => "1 renderer",
            RendererMode::PerPipelineRenderer => "n renderers",
            RendererMode::McpcRenderer => "MCPC renderer",
        }
    }

    /// SCC cores needed for `p` pipelines in this mode.
    pub fn cores_needed(self, p: u32) -> u32 {
        match self {
            // render + 5p filters + transfer
            RendererMode::SingleRenderer => 5 * p + 2,
            // p renderers + 5p filters + transfer
            RendererMode::PerPipelineRenderer => 6 * p + 1,
            // connector + 5p filters + transfer
            RendererMode::McpcRenderer => 5 * p + 2,
        }
    }

    /// Largest pipeline count that fits on the 48-core SCC.
    pub fn max_pipelines(self) -> u32 {
        let mut p = 1;
        while self.cores_needed(p + 1) <= 48 {
            p += 1;
        }
        p
    }
}

/// Physical placement strategies for the pipeline stages (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Arrangement {
    /// Stages assigned in SCC core-id order.
    Unordered,
    /// Pipelines laid in parallel along the mesh rows.
    Ordered,
    /// Like ordered, but every second pipeline reversed.
    Flipped,
}

impl Arrangement {
    pub fn name(self) -> &'static str {
        match self {
            Arrangement::Unordered => "unordered",
            Arrangement::Ordered => "ordered",
            Arrangement::Flipped => "flipped",
        }
    }

    pub fn all() -> [Arrangement; 3] {
        [
            Arrangement::Unordered,
            Arrangement::Ordered,
            Arrangement::Flipped,
        ]
    }
}

/// Whether frames carry real pixels through the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Fidelity {
    /// Process real images (output comparable to the reference).
    Full,
    /// Charge costs only; frames carry byte counts. Timing is identical
    /// to `Full` by construction.
    TimingOnly,
}

/// A complete experiment description.
#[derive(Debug, Clone, Serialize)]
pub struct RunConfig {
    pub renderer: RendererMode,
    pub arrangement: Arrangement,
    pub pipelines: u32,
    /// Full frame width in pixels.
    pub width: u32,
    /// Full frame height in pixels.
    pub height: u32,
    /// Walkthrough length in frames.
    pub frames: u64,
    /// Run seed for the scratch/flicker randomness.
    pub seed: u64,
    pub fidelity: Fidelity,
    /// Record per-stage phase spans (exportable to Chrome trace JSON).
    pub trace: bool,
}

impl Default for RunConfig {
    /// The paper's default experiment: 400-frame walkthrough over 400×400
    /// frames (Figure 12's largest point matches the walkthrough time of
    /// the single-pipeline MCPC configuration).
    fn default() -> Self {
        RunConfig {
            renderer: RendererMode::SingleRenderer,
            arrangement: Arrangement::Ordered,
            pipelines: 1,
            width: 400,
            height: 400,
            frames: 400,
            seed: 0x51CC_F11F,
            fidelity: Fidelity::TimingOnly,
            trace: false,
        }
    }
}

impl RunConfig {
    /// Check the configuration fits the machine.
    pub fn validate(&self) -> Result<(), String> {
        if self.pipelines == 0 {
            return Err("at least one pipeline required".into());
        }
        let needed = self.renderer.cores_needed(self.pipelines);
        if needed > 48 {
            return Err(format!(
                "{} pipelines need {needed} cores; the SCC has 48",
                self.pipelines
            ));
        }
        if self.height < self.pipelines {
            return Err("more pipelines than image rows".into());
        }
        if self.width == 0 || self.height == 0 || self.frames == 0 {
            return Err("degenerate geometry".into());
        }
        Ok(())
    }

    /// Bytes of one full frame.
    pub fn frame_bytes(&self) -> u64 {
        self.width as u64 * self.height as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_budgets_match_paper() {
        // §V/§VI: the n-renderer configuration tops out at 7 pipelines
        // (6·7+1 = 43 ≤ 48); the others support more.
        assert_eq!(RendererMode::PerPipelineRenderer.max_pipelines(), 7);
        assert_eq!(RendererMode::SingleRenderer.max_pipelines(), 9);
        assert_eq!(RendererMode::McpcRenderer.max_pipelines(), 9);
        // Figure 14's x-axis: 5p+2 cores = 7, 12, ..., 42 for p = 1..8.
        assert_eq!(RendererMode::McpcRenderer.cores_needed(1), 7);
        assert_eq!(RendererMode::McpcRenderer.cores_needed(8), 42);
    }

    #[test]
    fn validation_rejects_oversubscription() {
        let cfg = RunConfig {
            renderer: RendererMode::PerPipelineRenderer,
            pipelines: 8,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let ok = RunConfig {
            renderer: RendererMode::PerPipelineRenderer,
            pipelines: 7,
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate() {
        assert!(RunConfig {
            pipelines: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RunConfig {
            frames: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RunConfig {
            height: 4,
            pipelines: 5,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn default_matches_paper_geometry() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.frames, 400);
        assert_eq!(cfg.frame_bytes(), 640_000, "Figure 12: 400 side = 640 kb");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn stage_names() {
        assert_eq!(StageKind::Blur.name(), "blur");
        assert_eq!(StageKind::PIPELINE_FILTERS.len(), 5);
        assert_eq!(Arrangement::all().len(), 3);
        assert_eq!(RendererMode::McpcRenderer.name(), "MCPC renderer");
    }
}
