//! Chrome trace-event (`chrome://tracing`, Perfetto) exporter.
//!
//! This is the single renderer for both span sources: `scc-core`'s
//! `TraceLog` converts its spans to [`ChromeSpan`]s and delegates here,
//! and the telemetry event stream's `stage_start`/`stage_stop` pairs can
//! be rendered directly with [`events_to_spans`]. One row ("thread") per
//! SCC core; timestamps in microseconds.

use crate::event::{Event, EventKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One complete ("X"-phase) Chrome trace span.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeSpan {
    pub name: String,
    /// Category — the phase name (`wait`, `compute`, ...).
    pub cat: String,
    pub ts_us: f64,
    pub dur_us: f64,
    pub pid: u32,
    pub tid: u32,
}

/// The span display name shared by the trace log and the event stream.
pub fn span_name(stage: &str, pipeline: Option<u32>, frame: u64, phase: &str) -> String {
    match pipeline {
        Some(p) => format!("{stage} p{p} f{frame} {phase}"),
        None => format!("{stage} f{frame} {phase}"),
    }
}

/// Render spans as a Chrome trace-event JSON array.
pub fn render(spans: &[ChromeSpan]) -> String {
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            r#"{{"name":"{}","cat":"{}","ph":"X","ts":{:.3},"dur":{:.3},"pid":1,"tid":{}}}"#,
            s.name, s.cat, s.ts_us, s.dur_us, s.tid
        );
    }
    out.push(']');
    out
}

/// Pair `stage_start`/`stage_stop` events into complete spans. Starts
/// without a matching stop (a crashed stage) are dropped; pairing is by
/// (stage, phase, core, pipeline, frame), latest-start-wins.
pub fn events_to_spans(events: &[Event]) -> Vec<ChromeSpan> {
    type Key = (&'static str, &'static str, u32, Option<u32>, u64);
    let mut open: HashMap<Key, u64> = HashMap::new();
    let mut spans = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::StageStart {
                stage,
                phase,
                core,
                pipeline,
                frame,
            } => {
                open.insert((*stage, *phase, *core, *pipeline, *frame), e.at_ns);
            }
            EventKind::StageStop {
                stage,
                phase,
                core,
                pipeline,
                frame,
            } => {
                if let Some(t0) = open.remove(&(*stage, *phase, *core, *pipeline, *frame)) {
                    spans.push(ChromeSpan {
                        name: span_name(stage, *pipeline, *frame, phase),
                        cat: phase.to_string(),
                        ts_us: t0 as f64 / 1e3,
                        dur_us: e.at_ns.saturating_sub(t0) as f64 / 1e3,
                        pid: 1,
                        tid: *core,
                    });
                }
            }
            _ => {}
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pair_into_spans_and_render() {
        let mk = |at_ns, start| Event {
            at_ns,
            kind: if start {
                EventKind::StageStart {
                    stage: "blur",
                    phase: "compute",
                    core: 2,
                    pipeline: Some(0),
                    frame: 7,
                }
            } else {
                EventKind::StageStop {
                    stage: "blur",
                    phase: "compute",
                    core: 2,
                    pipeline: Some(0),
                    frame: 7,
                }
            },
        };
        let spans = events_to_spans(&[
            mk(10_000_000, true),
            mk(15_000_000, false),
            // A dangling start must not produce a span.
            mk(20_000_000, true),
        ]);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "blur p0 f7 compute");
        assert_eq!(spans[0].tid, 2);
        let json = render(&spans);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""ts":10000.000"#));
        assert!(json.contains(r#""dur":5000.000"#));
    }

    #[test]
    fn empty_render() {
        assert_eq!(render(&[]), "[]");
    }
}
