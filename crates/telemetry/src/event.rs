//! The structured event stream.
//!
//! Events are discrete, timestamped observations of the run's control
//! plane — the things a counter can't narrate: which stage span opened
//! when, which ARQ send needed a retry, which heartbeat crossed the phi
//! threshold, where a pipeline migrated or degraded to. Timestamps are
//! nanoseconds on the emitting backend's own axis (virtual time for the
//! sim and DES runners, wall time since run start for native); a
//! snapshot never mixes backends, so the axis is uniform within one
//! stream.

/// One timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub at_ns: u64,
    pub kind: EventKind,
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A stage opened a phase span (`phase` is the `trace::Phase` name).
    StageStart {
        stage: &'static str,
        phase: &'static str,
        core: u32,
        pipeline: Option<u32>,
        frame: u64,
    },
    /// The matching close of a [`EventKind::StageStart`] span.
    StageStop {
        stage: &'static str,
        phase: &'static str,
        core: u32,
        pipeline: Option<u32>,
        frame: u64,
    },
    /// A reliable send exhausted a timeout and retransmitted.
    ArqRetry { from: u32, to: u32, attempt: u32 },
    /// A phi-accrual detector (or its booked-simulation twin) declared a
    /// core dead after missed heartbeats.
    HeartbeatMiss { core: u32, suspicion: f64 },
    /// The supervisor migrated a stage onto a spare core.
    Migration {
        stage: &'static str,
        pipeline: u32,
        from_core: u32,
        to_core: u32,
        frames_replayed: u32,
    },
    /// A pipeline was retired and its strip share reassigned.
    Degradation {
        pipeline: u32,
        frame: u64,
        survivors: u32,
    },
}

impl EventKind {
    /// Stable wire tag used by the JSON exporter and schema tests.
    pub fn type_name(&self) -> &'static str {
        match self {
            EventKind::StageStart { .. } => "stage_start",
            EventKind::StageStop { .. } => "stage_stop",
            EventKind::ArqRetry { .. } => "arq_retry",
            EventKind::HeartbeatMiss { .. } => "heartbeat_miss",
            EventKind::Migration { .. } => "migration",
            EventKind::Degradation { .. } => "degradation",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_are_stable() {
        let kinds = [
            EventKind::StageStart {
                stage: "blur",
                phase: "compute",
                core: 1,
                pipeline: Some(0),
                frame: 7,
            },
            EventKind::ArqRetry {
                from: 1,
                to: 2,
                attempt: 1,
            },
            EventKind::HeartbeatMiss {
                core: 3,
                suspicion: 3.5,
            },
            EventKind::Migration {
                stage: "scratch",
                pipeline: 0,
                from_core: 3,
                to_core: 40,
                frames_replayed: 2,
            },
            EventKind::Degradation {
                pipeline: 1,
                frame: 9,
                survivors: 2,
            },
        ];
        let tags: Vec<&str> = kinds.iter().map(|k| k.type_name()).collect();
        assert_eq!(
            tags,
            vec![
                "stage_start",
                "arq_retry",
                "heartbeat_miss",
                "migration",
                "degradation"
            ]
        );
    }
}
