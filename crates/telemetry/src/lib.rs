//! # scc-telemetry — one measurement substrate for every runner
//!
//! The paper's evaluation is an observability exercise: per-stage idle
//! quartiles (Figure 15), power over time (Figures 16–17), throughput per
//! image size (Figure 12). This crate gives the three runners, the RCCE
//! ARQ/heartbeat paths, and the MCPC supervisor one shared sink so those
//! numbers come from a uniform metrics layer instead of per-runner ad-hoc
//! report structs:
//!
//! * [`metrics`] — lock-cheap primitives: atomic [`Counter`]s, f64-bits
//!   [`Gauge`]s, fixed-bucket [`Histogram`]s (integer micro-unit sums, so
//!   concurrent observation stays associative and therefore
//!   deterministic), behind a name+labels [`Registry`];
//! * [`event`] — the structured event stream: stage start/stop spans,
//!   ARQ retries, heartbeat misses, migrations, degradations;
//! * [`sink`] — [`TelemetrySink`], the cheap-clone handle the whole
//!   system shares. Disabled (the default) it is a `None` and every
//!   record call is an early-return, so golden digests cannot move;
//! * [`snapshot`] — [`Snapshot`], the immutable, deterministically
//!   ordered view a finished run exports;
//! * [`prometheus`] — text exposition rendering of a snapshot;
//! * [`json`] — a hand-rolled JSON document tree (the vendored serde
//!   shim is a no-op marker) plus the snapshot's JSON exporter, the
//!   backing store for the `BENCH_*.json` documents;
//! * [`chrome`] — the Chrome-trace (`chrome://tracing`) exporter, now
//!   the single renderer for both `TraceLog` spans and the event stream.
//!
//! The crate depends on nothing but `std`, so every layer of the
//! workspace — including `scc-rcce` underneath `scc-core` — can record
//! into the same sink without dependency cycles.

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod sink;
pub mod snapshot;

pub use chrome::ChromeSpan;
pub use event::{Event, EventKind};
pub use json::{snapshot_to_tree, Json};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use sink::TelemetrySink;
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot};

/// Fixed bucket upper bounds (milliseconds) for per-stage idle-time
/// histograms — the live-metric reproduction of Figure 15. Spans the
/// sub-millisecond rendezvous waits of small frames up to the
/// multi-second stalls of degraded links.
pub const IDLE_MS_BUCKETS: &[f64] = &[
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0,
];

/// Fixed bucket upper bounds (seconds) for repair-latency histograms
/// (detection latency, MTTR).
pub const SECONDS_BUCKETS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// The metric-name catalogue. Every name the runners, RCCE paths, and
/// supervisor emit lives here so exporter schema tests (and DESIGN.md
/// §13) have a single source of truth.
pub mod names {
    /// Histogram, ms. Labels: `stage`, `pipeline`. One observation per
    /// frame-wait; quartiles reproduce the report's Figure 15 `idle_ms`.
    pub const STAGE_IDLE_MS: &str = "scc_stage_idle_ms";
    /// Gauge, seconds busy per stage. Labels: `stage`, `pipeline`.
    pub const STAGE_BUSY_SECONDS: &str = "scc_stage_busy_seconds";
    /// Counter, frames a stage completed. Labels: `stage`, `pipeline`.
    pub const STAGE_FRAMES_TOTAL: &str = "scc_stage_frames_total";
    /// Counter, frames the walkthrough delivered to the viz client.
    pub const FRAMES_TOTAL: &str = "scc_frames_total";
    /// Gauge, end-to-end walkthrough seconds (virtual for sim/DES, wall
    /// for native).
    pub const WALKTHROUGH_SECONDS: &str = "scc_walkthrough_seconds";
    /// Gauge, joules over the run (sim backend, Figure 14/17 model).
    pub const ENERGY_JOULES: &str = "scc_energy_joules";
    /// Counter, mesh messages (sim platform NoC audit).
    pub const NOC_MESSAGES_TOTAL: &str = "scc_noc_messages_total";
    /// Counter, mesh payload bytes.
    pub const NOC_BYTES_TOTAL: &str = "scc_noc_bytes_total";
    /// Counter, ARQ send retries. Labels: `path` (`sim` | `native`).
    pub const ARQ_RETRIES_TOTAL: &str = "scc_arq_retries_total";
    /// Counter, payloads dropped by the receiver on CRC mismatch.
    pub const ARQ_CORRUPT_DROPS_TOTAL: &str = "scc_arq_corrupt_drops_total";
    /// Counter, receive timeouts on the reliable path.
    pub const ARQ_TIMEOUTS_TOTAL: &str = "scc_arq_timeouts_total";
    /// Counter, heartbeats booked/sent by supervised stages.
    pub const HEARTBEATS_TOTAL: &str = "scc_heartbeats_total";
    /// Counter, heartbeat misses that crossed the phi-accrual threshold.
    pub const HEARTBEAT_MISSES_TOTAL: &str = "scc_heartbeat_misses_total";
    /// Counter, spare-core migrations performed by the supervisor.
    pub const MIGRATIONS_TOTAL: &str = "scc_migrations_total";
    /// Counter, pipelines retired into graceful degradation.
    pub const DEGRADATIONS_TOTAL: &str = "scc_degradations_total";
    /// Counter, checkpointed frames replayed onto spares.
    pub const FRAMES_REPLAYED_TOTAL: &str = "scc_frames_replayed_total";
    /// Histogram, seconds. Kill-to-repaired latency per recovery.
    pub const MTTR_SECONDS: &str = "scc_mttr_seconds";
    /// Gauge, native-backend host throughput in frames per second.
    pub const HOST_FRAMES_PER_SEC: &str = "scc_host_frames_per_sec";
    /// Gauge, native-backend host throughput in Mpixels per second.
    pub const HOST_MPIXELS_PER_SEC: &str = "scc_host_mpixels_per_sec";
    /// Counter, buffers the native pool served from its free list.
    pub const POOL_RECYCLED_TOTAL: &str = "scc_pool_recycled_total";
    /// Counter, buffers the native pool had to allocate fresh.
    pub const POOL_FRESH_TOTAL: &str = "scc_pool_fresh_total";
    /// Counter, tasks spawned by the dependency-driven task runtime.
    pub const TASK_SPAWNED_TOTAL: &str = "scc_task_spawned_total";
    /// Counter, steal handshakes the task runtime attempted.
    pub const TASK_STEAL_ATTEMPTS_TOTAL: &str = "scc_task_steal_attempts_total";
    /// Counter, steal handshakes that transferred a task.
    pub const TASK_STEALS_TOTAL: &str = "scc_task_steals_total";
    /// Counter, tasks re-queued after a fence (kill/stall recovery).
    pub const TASK_REQUEUES_TOTAL: &str = "scc_task_requeues_total";
    /// Counter, producer stalls against a full bounded deque.
    pub const TASK_BACKPRESSURE_STALLS_TOTAL: &str = "scc_task_backpressure_stalls_total";
    /// Gauge, deepest per-core task deque observed over the run.
    pub const TASK_QUEUE_DEPTH_MAX: &str = "scc_task_queue_depth_max";
    /// Counter, sessions the serving frontend took responsibility for
    /// (every arrival enters the ledger; shed ⊂ admitted, never silent).
    pub const SERVE_SESSIONS_ADMITTED_TOTAL: &str = "scc_serve_sessions_admitted_total";
    /// Counter, sessions refused by admission control. Labels: `reason`.
    pub const SERVE_SESSIONS_SHED_TOTAL: &str = "scc_serve_sessions_shed_total";
    /// Counter, sessions that delivered every requested frame.
    pub const SERVE_SESSIONS_COMPLETED_TOTAL: &str = "scc_serve_sessions_completed_total";
    /// Counter, frames delivered across all sessions.
    pub const SERVE_FRAMES_TOTAL: &str = "scc_serve_frames_total";
    /// Counter, strip-cache lookups served from cached bytes.
    pub const SERVE_CACHE_HITS_TOTAL: &str = "scc_serve_cache_hits_total";
    /// Counter, strip-cache lookups that fell through to a render.
    pub const SERVE_CACHE_MISSES_TOTAL: &str = "scc_serve_cache_misses_total";
    /// Counter, strips evicted by the cache's LRU bound.
    pub const SERVE_CACHE_EVICTIONS_TOTAL: &str = "scc_serve_cache_evictions_total";
    /// Gauge, end-of-run cache hit ratio in [0, 1].
    pub const SERVE_CACHE_HIT_RATIO: &str = "scc_serve_cache_hit_ratio";
    /// Gauge, deepest per-tenant active-session queue. Labels: `tenant`.
    pub const SERVE_TENANT_QUEUE_DEPTH: &str = "scc_serve_tenant_queue_depth";
    /// Histogram, seconds. Ready-to-delivered latency per frame
    /// (includes slot queueing under overload; p50/p99 in reports).
    pub const SERVE_FRAME_LATENCY_SECONDS: &str = "scc_serve_frame_latency_seconds";
    /// Counter, idle-sample epochs the DVFS governor observed.
    pub const DVFS_EPOCHS_TOTAL: &str = "scc_dvfs_epochs_total";
    /// Counter, tile frequency raises the governor applied.
    pub const DVFS_RAISES_TOTAL: &str = "scc_dvfs_raises_total";
    /// Counter, island throttles the governor applied.
    pub const DVFS_THROTTLES_TOTAL: &str = "scc_dvfs_throttles_total";
    /// Counter, raises suppressed by the governor's power cap.
    pub const DVFS_CAP_BLOCKS_TOTAL: &str = "scc_dvfs_cap_blocks_total";
    /// Gauge, final tile frequency in MHz. Labels: `tile`.
    pub const DVFS_TILE_FREQ_MHZ: &str = "scc_dvfs_tile_freq_mhz";

    /// Every catalogued name, for schema tests.
    pub const ALL: &[&str] = &[
        STAGE_IDLE_MS,
        STAGE_BUSY_SECONDS,
        STAGE_FRAMES_TOTAL,
        FRAMES_TOTAL,
        WALKTHROUGH_SECONDS,
        ENERGY_JOULES,
        NOC_MESSAGES_TOTAL,
        NOC_BYTES_TOTAL,
        ARQ_RETRIES_TOTAL,
        ARQ_CORRUPT_DROPS_TOTAL,
        ARQ_TIMEOUTS_TOTAL,
        HEARTBEATS_TOTAL,
        HEARTBEAT_MISSES_TOTAL,
        MIGRATIONS_TOTAL,
        DEGRADATIONS_TOTAL,
        FRAMES_REPLAYED_TOTAL,
        MTTR_SECONDS,
        HOST_FRAMES_PER_SEC,
        HOST_MPIXELS_PER_SEC,
        POOL_RECYCLED_TOTAL,
        POOL_FRESH_TOTAL,
        TASK_SPAWNED_TOTAL,
        TASK_STEAL_ATTEMPTS_TOTAL,
        TASK_STEALS_TOTAL,
        TASK_REQUEUES_TOTAL,
        TASK_BACKPRESSURE_STALLS_TOTAL,
        TASK_QUEUE_DEPTH_MAX,
        SERVE_SESSIONS_ADMITTED_TOTAL,
        SERVE_SESSIONS_SHED_TOTAL,
        SERVE_SESSIONS_COMPLETED_TOTAL,
        SERVE_FRAMES_TOTAL,
        SERVE_CACHE_HITS_TOTAL,
        SERVE_CACHE_MISSES_TOTAL,
        SERVE_CACHE_EVICTIONS_TOTAL,
        SERVE_CACHE_HIT_RATIO,
        SERVE_TENANT_QUEUE_DEPTH,
        SERVE_FRAME_LATENCY_SECONDS,
        DVFS_EPOCHS_TOTAL,
        DVFS_RAISES_TOTAL,
        DVFS_THROTTLES_TOTAL,
        DVFS_CAP_BLOCKS_TOTAL,
        DVFS_TILE_FREQ_MHZ,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_prefixed_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in names::ALL {
            assert!(name.starts_with("scc_"), "{name} lacks the scc_ prefix");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{name} is not a lower_snake metric name"
            );
            assert!(seen.insert(*name), "{name} catalogued twice");
        }
    }

    #[test]
    fn bucket_bounds_strictly_increase() {
        for bounds in [IDLE_MS_BUCKETS, SECONDS_BUCKETS] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
