//! Hand-rolled JSON document tree and the snapshot's JSON exporter.
//!
//! The vendored serde shim is a no-op marker, so every JSON document in
//! the workspace is rendered by hand. [`Json`] centralises that: an
//! insertion-ordered object/array tree with deterministic rendering,
//! used for the telemetry snapshot itself and as the substrate the
//! `BENCH_*.json` writers build on.

use crate::event::EventKind;
use crate::snapshot::Snapshot;
use std::fmt::Write as _;

/// A JSON value. Objects keep insertion order — callers decide key
/// order, rendering never reorders, so output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    /// Non-finite values render as `null` (JSON has no NaN/Inf).
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key; builder-style, keeps insertion order.
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("field() on a non-object Json"),
        }
        self
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render with two-space indentation and a trailing newline, the
    /// house style of the `BENCH_*.json` documents.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render with no whitespace (event streams, embedded documents).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    let _ = write!(out, "\"{}\": ", escape(key));
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":", escape(key));
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// Shortest-round-trip float rendering; non-finite becomes `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn labels_json(labels: &[(String, String)]) -> Json {
    Json::Obj(
        labels
            .iter()
            .map(|(k, v)| (k.clone(), Json::str(v.clone())))
            .collect(),
    )
}

fn event_json(at_ns: u64, kind: &EventKind) -> Json {
    let base = Json::obj()
        .field("at_ns", Json::U64(at_ns))
        .field("type", Json::str(kind.type_name()));
    match kind {
        EventKind::StageStart {
            stage,
            phase,
            core,
            pipeline,
            frame,
        }
        | EventKind::StageStop {
            stage,
            phase,
            core,
            pipeline,
            frame,
        } => base
            .field("stage", Json::str(*stage))
            .field("phase", Json::str(*phase))
            .field("core", Json::U64(u64::from(*core)))
            .field(
                "pipeline",
                pipeline.map_or(Json::Null, |p| Json::U64(u64::from(p))),
            )
            .field("frame", Json::U64(*frame)),
        EventKind::ArqRetry { from, to, attempt } => base
            .field("from", Json::U64(u64::from(*from)))
            .field("to", Json::U64(u64::from(*to)))
            .field("attempt", Json::U64(u64::from(*attempt))),
        EventKind::HeartbeatMiss { core, suspicion } => base
            .field("core", Json::U64(u64::from(*core)))
            .field("suspicion", Json::F64(*suspicion)),
        EventKind::Migration {
            stage,
            pipeline,
            from_core,
            to_core,
            frames_replayed,
        } => base
            .field("stage", Json::str(*stage))
            .field("pipeline", Json::U64(u64::from(*pipeline)))
            .field("from_core", Json::U64(u64::from(*from_core)))
            .field("to_core", Json::U64(u64::from(*to_core)))
            .field("frames_replayed", Json::U64(u64::from(*frames_replayed))),
        EventKind::Degradation {
            pipeline,
            frame,
            survivors,
        } => base
            .field("pipeline", Json::U64(u64::from(*pipeline)))
            .field("frame", Json::U64(*frame))
            .field("survivors", Json::U64(u64::from(*survivors))),
    }
}

/// Schema tag stamped into every exported snapshot document.
pub const SNAPSHOT_SCHEMA: &str = "scc-telemetry/1";

/// Build the snapshot's JSON document tree (callers may embed it in a
/// larger document, as the bench reports do).
pub fn snapshot_to_tree(snap: &Snapshot) -> Json {
    Json::obj()
        .field("schema", Json::str(SNAPSHOT_SCHEMA))
        .field(
            "counters",
            Json::Arr(
                snap.counters
                    .iter()
                    .map(|s| {
                        Json::obj()
                            .field("name", Json::str(s.name.clone()))
                            .field("labels", labels_json(&s.labels))
                            .field("value", Json::U64(s.value))
                    })
                    .collect(),
            ),
        )
        .field(
            "gauges",
            Json::Arr(
                snap.gauges
                    .iter()
                    .map(|s| {
                        Json::obj()
                            .field("name", Json::str(s.name.clone()))
                            .field("labels", labels_json(&s.labels))
                            .field("value", Json::F64(s.value))
                    })
                    .collect(),
            ),
        )
        .field(
            "histograms",
            Json::Arr(
                snap.histograms
                    .iter()
                    .map(|s| {
                        let mut buckets = Vec::new();
                        for (i, &count) in s.bucket_counts.iter().enumerate() {
                            let le = s.bounds.get(i).map_or(Json::Null, |&b| Json::F64(b));
                            buckets
                                .push(Json::obj().field("le", le).field("count", Json::U64(count)));
                        }
                        Json::obj()
                            .field("name", Json::str(s.name.clone()))
                            .field("labels", labels_json(&s.labels))
                            .field("buckets", Json::Arr(buckets))
                            .field("count", Json::U64(s.count))
                            .field("sum", Json::F64(s.sum))
                    })
                    .collect(),
            ),
        )
        .field(
            "events",
            Json::Arr(
                snap.events
                    .iter()
                    .map(|e| event_json(e.at_ns, &e.kind))
                    .collect(),
            ),
        )
}

/// Render the snapshot as a standalone JSON document.
pub fn render(snap: &Snapshot) -> String {
    snapshot_to_tree(snap).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TelemetrySink;

    #[test]
    fn tree_renders_deterministically() {
        let doc = Json::obj()
            .field("bench", Json::str("demo"))
            .field("ok", Json::Bool(true))
            .field("nan", Json::F64(f64::NAN))
            .field("points", Json::Arr(vec![Json::U64(1), Json::U64(2)]))
            .field("empty", Json::obj());
        let text = doc.render();
        assert_eq!(
            text,
            "{\n  \"bench\": \"demo\",\n  \"ok\": true,\n  \"nan\": null,\n  \"points\": [\n    1,\n    2\n  ],\n  \"empty\": {}\n}\n"
        );
        assert_eq!(doc.render(), text);
    }

    #[test]
    fn strings_are_escaped() {
        let doc = Json::str("a\"b\\c\nd");
        assert_eq!(doc.render_compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn snapshot_document_has_schema_and_sections() {
        let sink = TelemetrySink::enabled();
        sink.count("scc_frames_total", &[], 2);
        sink.observe("scc_stage_idle_ms", &[("stage", "blur")], &[1.0, 5.0], 0.5);
        let text = render(&sink.snapshot().unwrap());
        for key in [
            "\"schema\": \"scc-telemetry/1\"",
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"events\"",
            "\"le\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }
}
