//! Prometheus text exposition rendering of a [`Snapshot`].
//!
//! Families are emitted in sorted name order, series within a family in
//! sorted label order (both inherited from the snapshot), label keys
//! sorted at registration — so the whole document is a pure function of
//! the recorded values.

use crate::json::fmt_f64;
use crate::snapshot::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<(String, String)> = labels.to_vec();
    if let Some((k, v)) = extra {
        pairs.push((k.to_string(), v));
        pairs.sort();
    }
    if pairs.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn le_text(bound: Option<f64>) -> String {
    match bound {
        Some(b) => fmt_f64(b),
        None => "+Inf".to_string(),
    }
}

enum Family<'a> {
    Counter(Vec<&'a crate::snapshot::CounterSample>),
    Gauge(Vec<&'a crate::snapshot::GaugeSample>),
    Histogram(Vec<&'a crate::snapshot::HistogramSample>),
}

/// Render the snapshot in Prometheus text exposition format.
pub fn render(snap: &Snapshot) -> String {
    // Merge the three sample kinds into one name-sorted family map so
    // `# TYPE` headers appear exactly once per family, in name order.
    let mut families: BTreeMap<&str, Family> = BTreeMap::new();
    for s in &snap.counters {
        match families
            .entry(&s.name)
            .or_insert_with(|| Family::Counter(Vec::new()))
        {
            Family::Counter(v) => v.push(s),
            _ => unreachable!("registry enforces one type per name"),
        }
    }
    for s in &snap.gauges {
        match families
            .entry(&s.name)
            .or_insert_with(|| Family::Gauge(Vec::new()))
        {
            Family::Gauge(v) => v.push(s),
            _ => unreachable!("registry enforces one type per name"),
        }
    }
    for s in &snap.histograms {
        match families
            .entry(&s.name)
            .or_insert_with(|| Family::Histogram(Vec::new()))
        {
            Family::Histogram(v) => v.push(s),
            _ => unreachable!("registry enforces one type per name"),
        }
    }

    let mut out = String::new();
    for (name, family) in families {
        match family {
            Family::Counter(samples) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                for s in samples {
                    let _ = writeln!(out, "{name}{} {}", label_block(&s.labels, None), s.value);
                }
            }
            Family::Gauge(samples) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                for s in samples {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        label_block(&s.labels, None),
                        fmt_f64(s.value)
                    );
                }
            }
            Family::Histogram(samples) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                for s in samples {
                    let mut cumulative = 0u64;
                    for (i, &count) in s.bucket_counts.iter().enumerate() {
                        cumulative += count;
                        let le = le_text(s.bounds.get(i).copied());
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            label_block(&s.labels, Some(("le", le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        label_block(&s.labels, None),
                        fmt_f64(s.sum)
                    );
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        label_block(&s.labels, None),
                        s.count
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TelemetrySink;

    #[test]
    fn exposition_is_sorted_and_complete() {
        let sink = TelemetrySink::enabled();
        // Register deliberately out of name / label order.
        sink.gauge("scc_walkthrough_seconds", &[], 1.25);
        sink.count(
            "scc_stage_frames_total",
            &[("stage", "sepia"), ("pipeline", "1")],
            4,
        );
        sink.count(
            "scc_stage_frames_total",
            &[("pipeline", "0"), ("stage", "blur")],
            3,
        );
        sink.observe("scc_stage_idle_ms", &[("stage", "blur")], &[1.0, 5.0], 0.5);
        sink.observe("scc_stage_idle_ms", &[("stage", "blur")], &[1.0, 5.0], 9.0);
        let text = render(&sink.snapshot().unwrap());

        let expected = "\
# TYPE scc_stage_frames_total counter
scc_stage_frames_total{pipeline=\"0\",stage=\"blur\"} 3
scc_stage_frames_total{pipeline=\"1\",stage=\"sepia\"} 4
# TYPE scc_stage_idle_ms histogram
scc_stage_idle_ms_bucket{le=\"1\",stage=\"blur\"} 1
scc_stage_idle_ms_bucket{le=\"5\",stage=\"blur\"} 1
scc_stage_idle_ms_bucket{le=\"+Inf\",stage=\"blur\"} 2
scc_stage_idle_ms_sum{stage=\"blur\"} 9.5
scc_stage_idle_ms_count{stage=\"blur\"} 2
# TYPE scc_walkthrough_seconds gauge
scc_walkthrough_seconds 1.25
";
        assert_eq!(text, expected);
    }
}
