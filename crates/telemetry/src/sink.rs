//! [`TelemetrySink`] — the handle the whole system shares.
//!
//! A sink is either live (an `Arc` around a registry plus an event
//! buffer) or disabled (`None`). Disabled is the default everywhere and
//! costs one branch per record call; nothing is allocated, so runs with
//! telemetry off are bit-identical to runs before this crate existed.
//! Clones share the same store — the sim runner, the RCCE endpoints it
//! drives, and the supervisor all see one sink.

use crate::event::{Event, EventKind};
use crate::metrics::{Counter, Gauge, Histogram, Registry};
use crate::snapshot::Snapshot;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct SinkInner {
    registry: Registry,
    events: Mutex<Vec<Event>>,
}

/// Cheap-clone recording handle; `Default` is disabled.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<SinkInner>>,
}

impl TelemetrySink {
    /// A live sink with an empty registry and event stream.
    pub fn enabled() -> TelemetrySink {
        TelemetrySink {
            inner: Some(Arc::new(SinkInner::default())),
        }
    }

    /// The no-op sink: every record call early-returns.
    pub fn disabled() -> TelemetrySink {
        TelemetrySink { inner: None }
    }

    pub fn from_enabled(on: bool) -> TelemetrySink {
        if on {
            TelemetrySink::enabled()
        } else {
            TelemetrySink::disabled()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Handle getters for hot loops (cache the returned handle).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<Counter> {
        self.inner
            .as_ref()
            .map(|i| i.registry.counter(name, labels))
    }

    pub fn gauge_handle(&self, name: &str, labels: &[(&str, &str)]) -> Option<Gauge> {
        self.inner.as_ref().map(|i| i.registry.gauge(name, labels))
    }

    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Option<Histogram> {
        self.inner
            .as_ref()
            .map(|i| i.registry.histogram(name, labels, bounds))
    }

    /// One-shot conveniences for cold paths.
    pub fn count(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        if let Some(i) = &self.inner {
            i.registry.counter(name, labels).add(n);
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        if let Some(i) = &self.inner {
            i.registry.gauge(name, labels).set(v);
        }
    }

    pub fn observe(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], v: f64) {
        if let Some(i) = &self.inner {
            i.registry.histogram(name, labels, bounds).observe(v);
        }
    }

    /// Append an event to the stream.
    pub fn event(&self, at_ns: u64, kind: EventKind) {
        if let Some(i) = &self.inner {
            i.events.lock().unwrap().push(Event { at_ns, kind });
        }
    }

    /// Export the current state as an immutable, deterministically
    /// ordered snapshot. `None` when the sink is disabled. Events are
    /// sorted by timestamp (stable, so same-time events keep emission
    /// order) to erase thread-interleaving noise on the native backend.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.inner.as_ref().map(|i| {
            let mut events = i.events.lock().unwrap().clone();
            events.sort_by_key(|e| e.at_ns);
            Snapshot::from_parts(&i.registry, events)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TelemetrySink::disabled();
        sink.count("scc_frames_total", &[], 3);
        sink.event(
            0,
            EventKind::ArqRetry {
                from: 0,
                to: 1,
                attempt: 1,
            },
        );
        assert!(!sink.is_enabled());
        assert!(sink.snapshot().is_none());
        assert!(sink.counter("scc_frames_total", &[]).is_none());
    }

    #[test]
    fn clones_share_one_store() {
        let sink = TelemetrySink::enabled();
        let other = sink.clone();
        other.count("scc_frames_total", &[], 2);
        sink.count("scc_frames_total", &[], 1);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 3);
    }

    #[test]
    fn snapshot_sorts_events_by_time() {
        let sink = TelemetrySink::enabled();
        sink.event(
            50,
            EventKind::ArqRetry {
                from: 0,
                to: 1,
                attempt: 2,
            },
        );
        sink.event(
            10,
            EventKind::ArqRetry {
                from: 0,
                to: 1,
                attempt: 1,
            },
        );
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.events[0].at_ns, 10);
        assert_eq!(snap.events[1].at_ns, 50);
    }
}
