//! Lock-cheap metric primitives and the name+labels registry.
//!
//! All hot-path mutation is a single atomic RMW: counters and histogram
//! buckets are `AtomicU64`s, gauges store f64 bit patterns. Histogram
//! sums accumulate in integer **micro-units** so concurrent observation
//! is associative — the exported sum is bit-identical regardless of the
//! interleaving, which keeps native-backend snapshots deterministic for
//! a fixed seed. The registry itself takes a mutex only on
//! get-or-create; callers cache the returned handles in loops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone event count.
#[derive(Debug, Default)]
pub struct CounterCell {
    value: AtomicU64,
}

/// Last-write-wins f64 sample (stored as bit pattern).
#[derive(Debug, Default)]
pub struct GaugeCell {
    bits: AtomicU64,
}

/// Fixed-bucket histogram: `bounds` are strictly increasing upper bucket
/// edges; an implicit `+Inf` bucket catches the overflow tail.
#[derive(Debug)]
pub struct HistogramCell {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last is `+Inf`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations in 1e-6 units (integer adds are associative).
    sum_micros: AtomicU64,
}

impl CounterCell {
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl GaugeCell {
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl HistogramCell {
    fn new(bounds: &[f64]) -> HistogramCell {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must strictly increase"
        );
        HistogramCell {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micros = if v.is_finite() && v > 0.0 {
            (v * 1e6).round() as u64
        } else {
            0
        };
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }
}

/// Cheap-clone handle onto a registered counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    pub fn inc(&self) {
        self.0.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.add(n);
    }

    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Cheap-clone handle onto a registered gauge.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// Cheap-clone handle onto a registered histogram.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    pub fn observe(&self, v: f64) {
        self.0.observe(v);
    }

    pub fn count(&self) -> u64 {
        self.0.count()
    }

    pub fn bounds(&self) -> Vec<f64> {
        self.0.bounds().to_vec()
    }

    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.bucket_counts()
    }

    pub fn sum(&self) -> f64 {
        self.0.sum()
    }
}

/// Identity of a time series: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct SeriesKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

pub(crate) fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

#[derive(Debug, Clone)]
pub(crate) enum Series {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

/// Get-or-create store of every live series, keyed by name + sorted
/// labels. Iteration order (and therefore every exporter's output order)
/// is the `BTreeMap` order: name, then label pairs.
#[derive(Debug, Default)]
pub struct Registry {
    series: Mutex<BTreeMap<SeriesKey, Series>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = SeriesKey {
            name: name.to_string(),
            labels: sorted_labels(labels),
        };
        let mut series = self.series.lock().unwrap();
        match series
            .entry(key)
            .or_insert_with(|| Series::Counter(Arc::new(CounterCell::default())))
        {
            Series::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("series {name} already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = SeriesKey {
            name: name.to_string(),
            labels: sorted_labels(labels),
        };
        let mut series = self.series.lock().unwrap();
        match series
            .entry(key)
            .or_insert_with(|| Series::Gauge(Arc::new(GaugeCell::default())))
        {
            Series::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("series {name} already registered with a different type"),
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        let key = SeriesKey {
            name: name.to_string(),
            labels: sorted_labels(labels),
        };
        let mut series = self.series.lock().unwrap();
        match series
            .entry(key)
            .or_insert_with(|| Series::Histogram(Arc::new(HistogramCell::new(bounds))))
        {
            Series::Histogram(h) => {
                assert_eq!(
                    h.bounds(),
                    bounds,
                    "series {name} already registered with different bucket bounds"
                );
                Histogram(Arc::clone(h))
            }
            _ => panic!("series {name} already registered with a different type"),
        }
    }

    pub(crate) fn iter_sorted(&self) -> Vec<(SeriesKey, Series)> {
        self.series
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("scc_test_total", &[("stage", "blur")]);
        c.inc();
        c.add(4);
        // Same name+labels resolves to the same cell, label order ignored.
        let again = reg.counter("scc_test_total", &[("stage", "blur")]);
        assert_eq!(again.get(), 5);
        let g = reg.gauge("scc_test_gauge", &[]);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_clamp_and_sum() {
        let reg = Registry::new();
        let h = reg.histogram("scc_test_ms", &[], &[1.0, 10.0]);
        h.observe(0.5); // bucket 0 (<= 1.0)
        h.observe(1.0); // bucket 0 (inclusive upper edge)
        h.observe(5.0); // bucket 1
        h.observe(100.0); // +Inf bucket
        h.observe(f64::NAN); // lands in +Inf, contributes 0 to the sum
        assert_eq!(h.bucket_counts(), vec![2, 1, 2]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("scc_dup", &[]);
        reg.gauge("scc_dup", &[]);
    }
}
