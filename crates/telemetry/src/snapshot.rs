//! [`Snapshot`] — the immutable view of a finished (or in-flight) run.
//!
//! Sample vectors come out of the registry's `BTreeMap`, so they are
//! sorted by metric name then label pairs; events are sorted by
//! timestamp. Exporters only ever walk a snapshot, which is what makes
//! their output deterministic for a fixed seed.

use crate::event::Event;
use crate::metrics::{Registry, Series};

/// One counter sample.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: u64,
}

/// One gauge sample.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// One histogram sample: per-bucket counts plus count/sum.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    /// Upper bucket edges; `bucket_counts` has one extra `+Inf` slot.
    pub bounds: Vec<f64>,
    pub bucket_counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl HistogramSample {
    /// Index of the bucket holding the sample of (0-based) rank `r`.
    fn bucket_of_rank(&self, r: u64) -> usize {
        let mut cum = 0u64;
        for (i, &c) in self.bucket_counts.iter().enumerate() {
            cum += c;
            if cum > r {
                return i;
            }
        }
        self.bucket_counts.len().saturating_sub(1)
    }

    /// Edges `(lo, hi)` bracketing the `q`-quantile (type-7 rank, the
    /// same convention as `scc_sim::stats::Quartiles`): the exact
    /// quantile of the underlying samples is guaranteed to lie in
    /// `lo..=hi`. `lo` is `-Inf` for the first bucket, `hi` is `+Inf`
    /// for the overflow bucket. `None` when the histogram is empty.
    pub fn quantile_bracket(&self, q: f64) -> Option<(f64, f64)> {
        if self.count == 0 {
            return None;
        }
        // Type-7 interpolates between the samples at floor/ceil of
        // q*(n-1), so the bracket must span both samples' buckets.
        let pos = q.clamp(0.0, 1.0) * (self.count - 1) as f64;
        let lo_bucket = self.bucket_of_rank(pos.floor() as u64);
        let hi_bucket = self.bucket_of_rank(pos.ceil() as u64);
        let lo = if lo_bucket == 0 {
            f64::NEG_INFINITY
        } else {
            self.bounds[lo_bucket - 1]
        };
        let hi = if hi_bucket >= self.bounds.len() {
            f64::INFINITY
        } else {
            self.bounds[hi_bucket]
        };
        Some((lo, hi))
    }

    /// Point estimate for the `q`-quantile: the upper edge of its
    /// bracket (finite edge preferred when the bracket is open-ended).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_bracket(q).map(|(lo, hi)| {
            if hi.is_finite() {
                hi
            } else if lo.is_finite() {
                lo
            } else {
                0.0
            }
        })
    }
}

/// Everything a sink had observed when the snapshot was taken.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: Vec<CounterSample>,
    pub gauges: Vec<GaugeSample>,
    pub histograms: Vec<HistogramSample>,
    pub events: Vec<Event>,
}

impl Snapshot {
    pub(crate) fn from_parts(registry: &Registry, events: Vec<Event>) -> Snapshot {
        let mut snap = Snapshot {
            events,
            ..Snapshot::default()
        };
        for (key, series) in registry.iter_sorted() {
            match series {
                Series::Counter(c) => snap.counters.push(CounterSample {
                    name: key.name,
                    labels: key.labels,
                    value: c.get(),
                }),
                Series::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: key.name,
                    labels: key.labels,
                    value: g.get(),
                }),
                Series::Histogram(h) => snap.histograms.push(HistogramSample {
                    name: key.name,
                    labels: key.labels,
                    bounds: h.bounds().to_vec(),
                    bucket_counts: h.bucket_counts(),
                    count: h.count(),
                    sum: h.sum(),
                }),
            }
        }
        snap
    }

    /// Total number of metric samples (counters + gauges + histograms).
    pub fn metric_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// First counter sample matching `name` and all of `labels`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<&CounterSample> {
        self.counters
            .iter()
            .find(|s| s.name == name && labels_match(&s.labels, labels))
    }

    /// First gauge sample matching `name` and all of `labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<&GaugeSample> {
        self.gauges
            .iter()
            .find(|s| s.name == name && labels_match(&s.labels, labels))
    }

    /// First histogram sample matching `name` and all of `labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSample> {
        self.histograms
            .iter()
            .find(|s| s.name == name && labels_match(&s.labels, labels))
    }
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    want.iter()
        .all(|(k, v)| have.iter().any(|(hk, hv)| hk == k && hv == v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bounds: &[f64], counts: &[u64]) -> HistogramSample {
        HistogramSample {
            name: "scc_test_ms".into(),
            labels: vec![],
            bounds: bounds.to_vec(),
            bucket_counts: counts.to_vec(),
            count: counts.iter().sum(),
            sum: 0.0,
        }
    }

    #[test]
    fn quantile_bracket_brackets_exact_quantiles() {
        // 10 samples: 4 in (≤1], 4 in (1,10], 2 in (10,+Inf).
        let h = sample(&[1.0, 10.0], &[4, 4, 2]);
        // Median rank 4.5 → samples 4 and 5, both in bucket 1.
        assert_eq!(h.quantile_bracket(0.5), Some((1.0, 10.0)));
        // q0 in the first bucket (open lower edge).
        assert_eq!(h.quantile_bracket(0.0), Some((f64::NEG_INFINITY, 1.0)));
        // q1 in the overflow bucket.
        assert_eq!(h.quantile_bracket(1.0), Some((10.0, f64::INFINITY)));
        // Rank straddling a bucket edge widens the bracket.
        let h2 = sample(&[1.0, 10.0], &[4, 4, 0]);
        // q=3.5/7 → ranks 3 and 4 → buckets 0 and 1.
        assert_eq!(h2.quantile_bracket(0.5), Some((f64::NEG_INFINITY, 10.0)));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = sample(&[1.0], &[0, 0]);
        assert_eq!(h.quantile_bracket(0.5), None);
        assert_eq!(h.quantile(0.5), None);
    }
}
