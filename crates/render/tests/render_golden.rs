//! Golden unit tests for the render stage: pinned culling statistics,
//! pinned octree traversal order, and pinned raster hashes.
//!
//! These complement the property tests: where `proptests.rs` checks
//! relationships (culling is conservative, strips tile the frame), this
//! file freezes exact numbers so an unintended change to the camera path,
//! frustum extraction, octree build order or rasteriser shows up as a
//! one-line diff. Regenerate by running the tests and copying the values
//! from the failure message after a *deliberate* change.

use scc_render::{
    CityConfig, Containment, Frustum, Octree, OctreeConfig, Renderer, Scene, Walkthrough,
};
use std::sync::Arc;

/// FNV-1a, the same digest the conformance harness pins films with.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn fnv1a_u32s(vals: &[u32]) -> u64 {
    let mut bytes = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// The reference scene for every golden in this file.
fn golden_scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig {
        side: 10,
        spacing: 8.0,
        seed: 7,
    }))
}

#[test]
fn camera_frustum_culling_stats_are_pinned() {
    // (frame, nodes_visited, triangles_out, subtrees_accepted) along the
    // standard walkthrough. Three well-separated poses so a camera-path or
    // frustum-extraction change can't cancel out across samples.
    const WANT: [(u64, u64, u64, u64); 3] = [(0, 40, 928, 2), (133, 40, 952, 8), (266, 40, 960, 9)];
    let scene = golden_scene();
    let tree = Octree::build(&scene.triangles, OctreeConfig::default());
    let walk = Walkthrough::standard(1.25);
    for (frame, nodes, tris, subtrees) in WANT {
        let cam = walk.camera(frame);
        let frustum = Frustum::from_matrix(&cam.view_projection());
        let mut out = Vec::new();
        let stats = tree.cull(&frustum, &mut out);
        assert_eq!(
            (
                stats.nodes_visited,
                stats.triangles_out,
                stats.subtrees_accepted
            ),
            (nodes, tris, subtrees),
            "culling stats drifted at frame {frame}: got ({}, {}, {})",
            stats.nodes_visited,
            stats.triangles_out,
            stats.subtrees_accepted
        );
    }
}

#[test]
fn frustum_point_classification_is_pinned() {
    // A handful of hand-placed points against the frame-0 frustum: street
    // level in front of the camera is visible, behind/above is not.
    let cam = Walkthrough::standard(1.25).camera(0);
    let frustum = Frustum::from_matrix(&cam.view_projection());
    let cases = [
        ((20.0, 3.0, 15.0), true),    // ahead along the orbit
        ((80.0, 3.0, 15.0), false),   // behind the eye (radius is 40)
        ((20.0, 400.0, 15.0), false), // far above the fovy cone
    ];
    for ((x, y, z), want) in cases {
        let p = scc_render::Vec3 { x, y, z };
        assert_eq!(
            frustum.contains_point(p),
            want,
            "classification of ({x}, {y}, {z}) drifted"
        );
    }
    // And the scene bounds always straddle the frustum from street level.
    let scene = golden_scene();
    assert_eq!(frustum.test_aabb(&scene.bounds), Containment::Intersecting);
}

#[test]
fn octree_shape_and_traversal_order_are_pinned() {
    // The traversal order is part of the contract: `cull` visits children
    // in octant order, and downstream consumers (coverage estimation,
    // rasterisation) see triangles in exactly this sequence. Hash the
    // emitted index order, not just the set.
    let scene = golden_scene();
    let tree = Octree::build(
        &scene.triangles,
        OctreeConfig {
            leaf_size: 16,
            max_depth: 8,
        },
    );
    assert_eq!(tree.node_count(), 82, "octree shape drifted");
    assert_eq!(tree.triangle_count(), scene.triangles.len());

    let cam = Walkthrough::standard(1.25).camera(40);
    let frustum = Frustum::from_matrix(&cam.view_projection());
    let mut out = Vec::new();
    let stats = tree.cull(&frustum, &mut out);
    assert_eq!(stats.triangles_out, out.len() as u64);
    assert_eq!(
        fnv1a_u32s(&out),
        0x83f2_66ef_79d0_c32d,
        "traversal order drifted (count {}, first {:?})",
        out.len(),
        out.first()
    );
}

#[test]
fn raster_hashes_are_pinned_at_two_sizes() {
    // Full-frame renders at the two geometries the conformance harness
    // exercises most (the fuzzer's 48x32 and the golden matrix's 64x48).
    // The hash covers every RGBA byte, so shading, depth-test order and
    // the sky gradient are all under the pin.
    let renderer = Renderer::new(golden_scene());
    let walk = Walkthrough::standard(1.25);
    const WANT: [(u32, u32, u64, u64); 2] = [
        (48, 32, 2, 0xce55_e753_aef7_5f25),
        (64, 48, 2, 0x3fe7_e906_704c_9b25),
    ];
    for (w, h, frame, want) in WANT {
        let (img, stats) = renderer.render_full(&walk.camera(frame), w, h);
        assert!(stats.raster.pixels_written > 0, "{w}x{h} rendered nothing");
        let got = fnv1a(img.as_bytes());
        assert_eq!(
            got, want,
            "raster hash drifted at {w}x{h}: got {got:#018x} ({} px written)",
            stats.raster.pixels_written
        );
    }
}
