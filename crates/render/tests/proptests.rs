//! Property-based tests of the renderer substrate: culling is
//! conservative, bands tile the screen, coverage estimation tracks real
//! rasterisation.

use proptest::prelude::*;
use scc_filters::Image;
use scc_render::math::vec3;
use scc_render::octree::OctreeConfig;
use scc_render::raster::{estimate_coverage, new_zbuf, rasterize};
use scc_render::{Camera, Containment, Frustum, Mat4, Octree, Triangle, Vec3};

/// Random triangle soup in a box in front of the origin.
fn arb_tris(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Triangle>> {
    prop::collection::vec(
        (
            (-20f32..20.0, -20f32..20.0, -40f32..-2.0),
            (0.1f32..4.0, 0.1f32..4.0, 0.1f32..4.0),
        ),
        n,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|((x, y, z), (dx, dy, dz))| {
                Triangle::new(
                    vec3(x, y, z),
                    vec3(x + dx, y, z + dz * 0.2),
                    vec3(x, y + dy, z - dz * 0.2),
                    [120, 120, 120],
                )
            })
            .collect()
    })
}

fn camera() -> Camera {
    Camera {
        eye: Vec3::ZERO,
        target: vec3(0.0, 0.0, -1.0),
        up: Vec3::Y,
        fovy: 1.2,
        aspect: 1.0,
        near: 0.5,
        far: 100.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn octree_cull_is_conservative(tris in arb_tris(1..120)) {
        let tree = Octree::build(&tris, OctreeConfig { leaf_size: 4, max_depth: 6 });
        let mvp = camera().view_projection();
        let frustum = Frustum::from_matrix(&mvp);
        let mut out = Vec::new();
        tree.cull(&frustum, &mut out);
        let out_set: std::collections::HashSet<u32> = out.iter().copied().collect();
        for (i, t) in tris.iter().enumerate() {
            if frustum.test_aabb(&t.aabb()) != Containment::Outside {
                prop_assert!(
                    out_set.contains(&(i as u32)),
                    "potentially visible triangle {i} was culled"
                );
            }
        }
        // No duplicates.
        prop_assert_eq!(out_set.len(), out.len());
    }

    #[test]
    fn strip_culls_union_covers_full_cull(tris in arb_tris(1..80)) {
        // Anything visible in the full frustum must be visible in at
        // least one of the strip frusta.
        let tree = Octree::build(&tris, OctreeConfig::default());
        let cam = camera();
        let full = Frustum::from_matrix(&cam.view_projection());
        let mut full_out = Vec::new();
        tree.cull(&full, &mut full_out);
        let strips = 4u32;
        let mut strip_union = std::collections::HashSet::new();
        for s in 0..strips {
            let y0 = s * 100;
            let m = cam.strip_view_projection(400, y0, 100);
            let f = Frustum::from_matrix(&m);
            let mut out = Vec::new();
            tree.cull(&f, &mut out);
            strip_union.extend(out);
        }
        // Strict containment cannot be asserted (strip frusta are not an
        // exact partition at their seams), but rasterised output is what
        // matters: check the *rasterised* full image only contains pixels
        // producible from the union.
        for &i in &full_out {
            // Triangles whose AABB is inside the full frustum must appear
            // in some strip.
            if full.test_aabb(&tris[i as usize].aabb()) == Containment::Inside {
                prop_assert!(
                    strip_union.contains(&i),
                    "triangle {i} inside the frustum missed by every strip"
                );
            }
        }
    }

    #[test]
    fn coverage_estimate_tracks_rasteriser(tris in arb_tris(1..60)) {
        let mvp = camera().view_projection();
        let indices: Vec<u32> = (0..tris.len() as u32).collect();
        let est = estimate_coverage(&tris, &indices, &mvp, 128, 128);
        let mut img = Image::new(128, 128);
        let mut z = new_zbuf(128, 128);
        let stats = rasterize(&tris, &indices, &mvp, &mut img, &mut z);
        let real = stats.pixels_covered;
        if real > 2000 {
            let ratio = est as f64 / real as f64;
            prop_assert!(
                (0.4..2.5).contains(&ratio),
                "estimate {est} vs real {real} (ratio {ratio:.2})"
            );
        }
        // Depth-test winners never exceed covered pixels.
        prop_assert!(stats.pixels_written <= stats.pixels_covered);
    }

    #[test]
    fn rasterizer_depth_order_independent(tris in arb_tris(2..30)) {
        let mvp = camera().view_projection();
        let indices: Vec<u32> = (0..tris.len() as u32).collect();
        let mut reversed: Vec<u32> = indices.clone();
        reversed.reverse();
        let mut img1 = Image::new(64, 64);
        let mut z1 = new_zbuf(64, 64);
        rasterize(&tris, &indices, &mvp, &mut img1, &mut z1);
        let mut img2 = Image::new(64, 64);
        let mut z2 = new_zbuf(64, 64);
        rasterize(&tris, &reversed, &mvp, &mut img2, &mut z2);
        // Z-buffering makes submission order irrelevant except for exact
        // depth ties; random float depths essentially never tie.
        prop_assert_eq!(img1, img2);
    }

    #[test]
    fn frustum_point_test_consistent_with_ndc(
        x in -30f32..30.0, y in -30f32..30.0, z in -90f32..-1.0
    ) {
        let cam = camera();
        let mvp = cam.view_projection();
        let frustum = Frustum::from_matrix(&mvp);
        let p = vec3(x, y, z);
        let clip = mvp.transform_point(p);
        if clip.w > 1e-3 {
            let ndc = clip.project();
            let inside_ndc = ndc.x.abs() <= 1.0 && ndc.y.abs() <= 1.0 && ndc.z.abs() <= 1.0;
            // Allow boundary slack.
            let margin = 1e-3;
            let strictly_inside = ndc.x.abs() < 1.0 - margin
                && ndc.y.abs() < 1.0 - margin
                && ndc.z.abs() < 1.0 - margin;
            if strictly_inside {
                prop_assert!(frustum.contains_point(p), "NDC-inside point rejected");
            }
            if !inside_ndc {
                let strictly_outside = ndc.x.abs() > 1.0 + margin
                    || ndc.y.abs() > 1.0 + margin
                    || ndc.z.abs() > 1.0 + margin;
                if strictly_outside {
                    prop_assert!(!frustum.contains_point(p), "NDC-outside point accepted");
                }
            }
        }
    }

    #[test]
    fn mat4_mul_associative_on_points(
        t in (-5f32..5.0, -5f32..5.0, -5f32..5.0),
        s in (0.5f32..2.0, 0.5f32..2.0, 0.5f32..2.0),
        p in (-3f32..3.0, -3f32..3.0, -3f32..3.0),
    ) {
        let tm = Mat4::translation(vec3(t.0, t.1, t.2));
        let sm = Mat4::scale(vec3(s.0, s.1, s.2));
        let point = vec3(p.0, p.1, p.2);
        let combined = tm.mul_mat(&sm).transform_point(point).project();
        let separate = tm.transform_point(sm.transform_point(point).project()).project();
        prop_assert!((combined.x - separate.x).abs() < 1e-3);
        prop_assert!((combined.y - separate.y).abs() < 1e-3);
        prop_assert!((combined.z - separate.z).abs() < 1e-3);
    }
}
