//! # scc-render — software 3D renderer substrate
//!
//! From-scratch replacement for the os-mesa renderer + NYC CAD model the
//! paper uses (§IV–V): linear algebra ([`math`]), triangle meshes
//! ([`mesh`]), an [`octree`] with frustum culling ([`frustum`]), a
//! z-buffered rasteriser ([`raster`]), a deterministic procedural city
//! ([`scene`]) and the 400-frame walkthrough [`camera`] path. The
//! [`renderer::Renderer`] renders horizontal image strips for the
//! sort-first parallel decomposition, reporting the workload statistics
//! (octree nodes visited, triangles rasterised, pixels filled) that drive
//! the render-stage cost model in `scc-core`.

pub mod camera;
pub mod frustum;
pub mod math;
pub mod mesh;
pub mod obj;
pub mod octree;
pub mod raster;
pub mod renderer;
pub mod scene;

pub use camera::{Camera, Walkthrough, WALKTHROUGH_FRAMES};
pub use frustum::{Containment, Frustum};
pub use math::{Mat4, Vec3};
pub use mesh::{Aabb, Triangle};
pub use obj::{parse_obj, ObjError};
pub use octree::{CullStats, Octree, OctreeConfig};
pub use raster::RasterStats;
pub use renderer::{RenderStats, Renderer};
pub use scene::{CityConfig, ManhattanConfig, Scene};
