//! Minimal Wavefront OBJ loader.
//!
//! The paper's walkthrough uses an externally authored New York model
//! ("NYC Model by Mehdi M.", Figure 1). The bundled procedural city is
//! the default substitute, but this loader lets a real model be used:
//! `v` and `f` statements are supported (with `v/vt/vn` face syntax,
//! negative indices, and fan triangulation of polygons), plus `o`/`g`
//! object grouping which drives a deterministic per-object colour so
//! untextured models still render readably.

use crate::math::{vec3, Vec3};
use crate::mesh::{Aabb, Triangle};
use crate::scene::Scene;
use std::fmt;

/// Errors from OBJ parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjError {
    /// A malformed numeric literal at the given line (1-based).
    BadNumber { line: usize },
    /// A vertex index out of range or zero.
    BadIndex { line: usize },
    /// A face with fewer than 3 vertices.
    DegenerateFace { line: usize },
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::BadNumber { line } => write!(f, "malformed number on line {line}"),
            ObjError::BadIndex { line } => write!(f, "bad vertex index on line {line}"),
            ObjError::DegenerateFace { line } => write!(f, "face with <3 vertices on line {line}"),
        }
    }
}

impl std::error::Error for ObjError {}

/// Deterministic colour for an object name (FNV-mixed pastel).
fn object_color(name: &str) -> [u8; 3] {
    let mut h: u32 = 0x811c_9dc5;
    for b in name.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    [
        120 + (h & 0x7f) as u8,
        120 + ((h >> 8) & 0x7f) as u8,
        120 + ((h >> 16) & 0x7f) as u8,
    ]
}

/// Parse OBJ text into triangles.
pub fn parse_obj(text: &str) -> Result<Vec<Triangle>, ObjError> {
    let mut vertices: Vec<Vec3> = Vec::new();
    let mut tris: Vec<Triangle> = Vec::new();
    let mut color = object_color("default");

    for (ln, raw) in text.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("v") => {
                let mut coord = [0.0f32; 3];
                for c in &mut coord {
                    let tok = parts.next().ok_or(ObjError::BadNumber { line: line_no })?;
                    *c = tok
                        .parse()
                        .map_err(|_| ObjError::BadNumber { line: line_no })?;
                }
                vertices.push(vec3(coord[0], coord[1], coord[2]));
            }
            Some("f") => {
                let mut idx: Vec<usize> = Vec::new();
                for tok in parts {
                    // "7", "7/1", "7/1/3", "7//3" — the leading field is
                    // the vertex index; negative counts from the end.
                    let first = tok.split('/').next().unwrap_or("");
                    let i: i64 = first
                        .parse()
                        .map_err(|_| ObjError::BadNumber { line: line_no })?;
                    let resolved = if i > 0 {
                        (i - 1) as usize
                    } else if i < 0 {
                        let n = vertices.len() as i64 + i;
                        if n < 0 {
                            return Err(ObjError::BadIndex { line: line_no });
                        }
                        n as usize
                    } else {
                        return Err(ObjError::BadIndex { line: line_no });
                    };
                    if resolved >= vertices.len() {
                        return Err(ObjError::BadIndex { line: line_no });
                    }
                    idx.push(resolved);
                }
                if idx.len() < 3 {
                    return Err(ObjError::DegenerateFace { line: line_no });
                }
                // Fan triangulation.
                for k in 1..idx.len() - 1 {
                    tris.push(Triangle::new(
                        vertices[idx[0]],
                        vertices[idx[k]],
                        vertices[idx[k + 1]],
                        color,
                    ));
                }
            }
            Some("o") | Some("g") | Some("usemtl") => {
                let name = parts.next().unwrap_or("anon");
                color = object_color(name);
            }
            // vt, vn, mtllib, s, ... — ignored.
            _ => {}
        }
    }
    Ok(tris)
}

impl Scene {
    /// Build a scene from OBJ text.
    pub fn from_obj(text: &str) -> Result<Scene, ObjError> {
        let triangles = parse_obj(text)?;
        let mut bounds = Aabb::EMPTY;
        for t in &triangles {
            bounds = bounds.union(&t.aabb());
        }
        Ok(Scene { triangles, bounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CUBE: &str = r#"
# a unit cube
o cube
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
v 0 0 1
v 1 0 1
v 1 1 1
v 0 1 1
f 1 2 3 4
f 5 8 7 6
f 1 5 6 2
f 4 3 7 8
f 1 4 8 5
f 2 6 7 3
"#;

    #[test]
    fn cube_parses_to_twelve_triangles() {
        let tris = parse_obj(CUBE).unwrap();
        assert_eq!(tris.len(), 12, "6 quads fan into 12 triangles");
        let area: f32 = tris.iter().map(|t| t.normal_raw().length() / 2.0).sum();
        assert!((area - 6.0).abs() < 1e-4, "unit cube area {area}");
    }

    #[test]
    fn face_variants_and_negative_indices() {
        let text = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1/1 2//2 -1\n";
        let tris = parse_obj(text).unwrap();
        assert_eq!(tris.len(), 1);
        assert_eq!(tris[0].v[2], vec3(0.0, 1.0, 0.0));
    }

    #[test]
    fn comments_and_unknown_statements_ignored() {
        let text =
            "mtllib x.mtl\nvt 0 0\nvn 0 0 1\n# hi\nv 0 0 0\nv 1 0 0\nv 0 1 0\ns off\nf 1 2 3\n";
        assert_eq!(parse_obj(text).unwrap().len(), 1);
    }

    #[test]
    fn errors_are_located() {
        assert_eq!(
            parse_obj("v 0 0 zero\n"),
            Err(ObjError::BadNumber { line: 1 })
        );
        assert_eq!(
            parse_obj("v 0 0 0\nf 1 2 9\n"),
            Err(ObjError::BadIndex { line: 2 })
        );
        assert_eq!(
            parse_obj("v 0 0 0\nv 1 0 0\nf 1 2\n"),
            Err(ObjError::DegenerateFace { line: 3 })
        );
        assert_eq!(
            parse_obj("v 0 0 0\nf 0 0 0\n"),
            Err(ObjError::BadIndex { line: 2 })
        );
    }

    #[test]
    fn objects_get_distinct_deterministic_colors() {
        let text = "o a\nv 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\no b\nf 1 2 3\n";
        let tris = parse_obj(text).unwrap();
        assert_ne!(tris[0].color, tris[1].color);
        let again = parse_obj(text).unwrap();
        assert_eq!(tris[0].color, again[0].color);
    }

    #[test]
    fn scene_from_obj_has_bounds_and_renders() {
        use crate::camera::Camera;
        use crate::math::Vec3;
        use crate::renderer::Renderer;
        use std::sync::Arc;
        let scene = Scene::from_obj(CUBE).unwrap();
        assert_eq!(scene.triangle_count(), 12);
        assert!(scene.bounds.contains(vec3(0.5, 0.5, 0.5)));
        let r = Renderer::new(Arc::new(scene));
        let cam = Camera {
            eye: vec3(3.0, 2.0, 3.0),
            target: vec3(0.5, 0.5, 0.5),
            up: Vec3::Y,
            fovy: 1.0,
            aspect: 1.0,
            near: 0.1,
            far: 50.0,
        };
        let (_, stats) = r.render_full(&cam, 64, 64);
        assert!(stats.raster.pixels_written > 50, "cube should be visible");
    }
}
