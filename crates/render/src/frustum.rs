//! View frustum extraction and AABB culling tests.
//!
//! The render stage "determines the objects placed within the horizontal
//! strip by performing a frustum culling" (§IV). Planes are extracted from
//! the combined view-projection matrix (Gribb–Hartmann), so the same code
//! handles both the full-screen frustum and the per-strip asymmetric band
//! frusta of the sort-first configuration.

use crate::math::{Mat4, Vec3, Vec4};
use crate::mesh::Aabb;

/// A plane in `ax + by + cz + d = 0` form; inside is the positive side.
#[derive(Debug, Clone, Copy)]
pub struct Plane {
    pub n: Vec3,
    pub d: f32,
}

impl Plane {
    fn from_vec4(v: Vec4) -> Plane {
        Plane {
            n: v.truncate(),
            d: v.w,
        }
    }

    /// Signed distance (unnormalised) of a point.
    pub fn signed(&self, p: Vec3) -> f32 {
        self.n.dot(p) + self.d
    }
}

/// Result of a frustum/AABB test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Containment {
    Outside,
    Intersecting,
    Inside,
}

/// Six planes: left, right, bottom, top, near, far.
#[derive(Debug, Clone, Copy)]
pub struct Frustum {
    pub planes: [Plane; 6],
}

impl Frustum {
    /// Extract from a combined `proj * view` matrix.
    pub fn from_matrix(m: &Mat4) -> Frustum {
        let r0 = m.row(0);
        let r1 = m.row(1);
        let r2 = m.row(2);
        let r3 = m.row(3);
        let add = |a: Vec4, b: Vec4| Vec4 {
            x: a.x + b.x,
            y: a.y + b.y,
            z: a.z + b.z,
            w: a.w + b.w,
        };
        let sub = |a: Vec4, b: Vec4| Vec4 {
            x: a.x - b.x,
            y: a.y - b.y,
            z: a.z - b.z,
            w: a.w - b.w,
        };
        Frustum {
            planes: [
                Plane::from_vec4(add(r3, r0)), // left
                Plane::from_vec4(sub(r3, r0)), // right
                Plane::from_vec4(add(r3, r1)), // bottom
                Plane::from_vec4(sub(r3, r1)), // top
                Plane::from_vec4(add(r3, r2)), // near
                Plane::from_vec4(sub(r3, r2)), // far
            ],
        }
    }

    /// Point containment (all planes' positive side).
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.planes.iter().all(|pl| pl.signed(p) >= 0.0)
    }

    /// Conservative AABB classification using the p/n-vertex trick.
    pub fn test_aabb(&self, b: &Aabb) -> Containment {
        let mut inside_all = true;
        for pl in &self.planes {
            // The corner most aligned with the plane normal.
            let pvert = Vec3 {
                x: if pl.n.x >= 0.0 { b.max.x } else { b.min.x },
                y: if pl.n.y >= 0.0 { b.max.y } else { b.min.y },
                z: if pl.n.z >= 0.0 { b.max.z } else { b.min.z },
            };
            if pl.signed(pvert) < 0.0 {
                return Containment::Outside;
            }
            let nvert = Vec3 {
                x: if pl.n.x >= 0.0 { b.min.x } else { b.max.x },
                y: if pl.n.y >= 0.0 { b.min.y } else { b.max.y },
                z: if pl.n.z >= 0.0 { b.min.z } else { b.max.z },
            };
            if pl.signed(nvert) < 0.0 {
                inside_all = false;
            }
        }
        if inside_all {
            Containment::Inside
        } else {
            Containment::Intersecting
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;

    fn standard_frustum() -> Frustum {
        // Camera at origin looking down -z, 90° fov, square aspect.
        let view = Mat4::look_at(Vec3::ZERO, vec3(0.0, 0.0, -1.0), Vec3::Y);
        let proj = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        Frustum::from_matrix(&proj.mul_mat(&view))
    }

    #[test]
    fn points_ahead_are_inside() {
        let f = standard_frustum();
        assert!(f.contains_point(vec3(0.0, 0.0, -10.0)));
        assert!(f.contains_point(vec3(5.0, 5.0, -10.0))); // on the 45° edge
        assert!(!f.contains_point(vec3(0.0, 0.0, 10.0)), "behind the camera");
        assert!(
            !f.contains_point(vec3(20.0, 0.0, -10.0)),
            "right of the cone"
        );
        assert!(
            !f.contains_point(vec3(0.0, 0.0, -200.0)),
            "beyond far plane"
        );
        assert!(
            !f.contains_point(vec3(0.0, 0.0, -0.05)),
            "before near plane"
        );
    }

    #[test]
    fn aabb_classification() {
        let f = standard_frustum();
        let inside = Aabb::new(vec3(-1.0, -1.0, -11.0), vec3(1.0, 1.0, -9.0));
        assert_eq!(f.test_aabb(&inside), Containment::Inside);
        let outside = Aabb::new(vec3(50.0, 50.0, -10.0), vec3(60.0, 60.0, -5.0));
        assert_eq!(f.test_aabb(&outside), Containment::Outside);
        let straddling = Aabb::new(vec3(-1.0, -1.0, -1.0), vec3(1.0, 1.0, 1.0));
        assert_eq!(f.test_aabb(&straddling), Containment::Intersecting);
    }

    #[test]
    fn aabb_test_is_conservative_vs_corners() {
        // If any corner is inside, the box must not classify Outside.
        let f = standard_frustum();
        let boxes = [
            Aabb::new(vec3(-2.0, -2.0, -5.0), vec3(2.0, 2.0, -3.0)),
            Aabb::new(vec3(9.0, 0.0, -10.5), vec3(12.0, 1.0, -9.5)),
            Aabb::new(vec3(-0.5, -0.5, -99.0), vec3(0.5, 0.5, -98.0)),
        ];
        for b in &boxes {
            let any_corner_in = b.corners().iter().any(|&c| f.contains_point(c));
            if any_corner_in {
                assert_ne!(f.test_aabb(b), Containment::Outside);
            }
        }
    }

    #[test]
    fn band_frustum_excludes_other_band() {
        // Split the screen horizontally: the top-half band frustum must
        // reject geometry only visible in the bottom half.
        let view = Mat4::look_at(Vec3::ZERO, vec3(0.0, 0.0, -1.0), Vec3::Y);
        let top_band =
            Mat4::perspective_band(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 100.0, 0.0, 1.0);
        let f = Frustum::from_matrix(&top_band.mul_mat(&view));
        // y=+5 at z=-10 projects to NDC y=0.5 -> visible in top half.
        assert!(f.contains_point(vec3(0.0, 5.0, -10.0)));
        // y=-5 -> NDC y=-0.5 -> bottom half only.
        assert!(!f.contains_point(vec3(0.0, -5.0, -10.0)));
    }

    #[test]
    fn bands_cover_the_full_frustum() {
        let view = Mat4::look_at(vec3(1.0, 2.0, 3.0), vec3(0.0, 0.0, -5.0), Vec3::Y);
        let fovy = 1.1f32;
        let full = Frustum::from_matrix(&Mat4::perspective(fovy, 1.3, 0.2, 60.0).mul_mat(&view));
        let bands: Vec<Frustum> = (0..4)
            .map(|i| {
                let y_lo = -1.0 + 0.5 * i as f32;
                let m = Mat4::perspective_band(fovy, 1.3, 0.2, 60.0, y_lo, y_lo + 0.5);
                Frustum::from_matrix(&m.mul_mat(&view))
            })
            .collect();
        // Sample points inside the full frustum: each must be in ≥1 band.
        for i in 0..200 {
            let t = i as f32 / 200.0;
            let p = vec3(
                (t * 13.7).sin() * 3.0,
                (t * 7.3).cos() * 3.0,
                -1.0 - t * 40.0,
            );
            if full.contains_point(p) {
                assert!(
                    bands.iter().any(|b| b.contains_point(p)),
                    "point {p:?} in full frustum but no band"
                );
            }
        }
    }
}
