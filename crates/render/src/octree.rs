//! Octree over the scene's triangles.
//!
//! The render stage "loads the scene and organizes the different objects in
//! a hierarchical data structure known as an octree. … By doing this the
//! octree is traversed, causing significant memory accesses" (§IV). The
//! traversal statistics ([`CullStats`]) feed the render-stage cost model:
//! pointer-chasing through tree nodes is the irregular access pattern that
//! makes rendering expensive on a chip without local memory.

use crate::frustum::{Containment, Frustum};
use crate::mesh::{Aabb, Triangle};

/// Build parameters.
#[derive(Debug, Clone, Copy)]
pub struct OctreeConfig {
    /// Stop splitting below this many triangles.
    pub leaf_size: usize,
    /// Maximum tree depth.
    pub max_depth: u32,
}

impl Default for OctreeConfig {
    fn default() -> Self {
        OctreeConfig {
            leaf_size: 32,
            max_depth: 8,
        }
    }
}

#[derive(Debug)]
struct Node {
    bounds: Aabb,
    /// Indices into the triangle array (leaf) — internal nodes keep the
    /// triangles that straddle their centre split.
    tris: Vec<u32>,
    /// Child node indices; `u32::MAX` = absent.
    children: [u32; 8],
    is_leaf: bool,
}

/// Counters produced by one culling query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CullStats {
    /// Octree nodes visited (each is a dependent memory access).
    pub nodes_visited: u64,
    /// Triangles returned.
    pub triangles_out: u64,
    /// Subtrees accepted wholesale because fully inside the frustum.
    pub subtrees_accepted: u64,
}

/// An immutable octree over a triangle soup.
#[derive(Debug)]
pub struct Octree {
    nodes: Vec<Node>,
    /// Number of indexed triangles.
    len: usize,
}

const NO_CHILD: u32 = u32::MAX;

impl Octree {
    /// Build over `tris` (kept external; the tree stores indices).
    pub fn build(tris: &[Triangle], cfg: OctreeConfig) -> Octree {
        assert!(cfg.leaf_size >= 1);
        let mut bounds = Aabb::EMPTY;
        for t in tris {
            bounds = bounds.union(&t.aabb());
        }
        let mut tree = Octree {
            nodes: Vec::new(),
            len: tris.len(),
        };
        if tris.is_empty() {
            return tree;
        }
        let all: Vec<u32> = (0..tris.len() as u32).collect();
        tree.build_node(tris, bounds, all, 0, &cfg);
        tree
    }

    fn build_node(
        &mut self,
        tris: &[Triangle],
        bounds: Aabb,
        idx: Vec<u32>,
        depth: u32,
        cfg: &OctreeConfig,
    ) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            bounds,
            tris: Vec::new(),
            children: [NO_CHILD; 8],
            is_leaf: true,
        });
        if idx.len() <= cfg.leaf_size || depth >= cfg.max_depth {
            self.nodes[id as usize].tris = idx;
            return id;
        }
        // Partition by octant of the triangle centroid; triangles whose
        // box crosses an octant boundary stay at this node.
        let mut per_octant: [Vec<u32>; 8] = Default::default();
        let mut stay = Vec::new();
        for i in idx {
            let tb = tris[i as usize].aabb();
            let mut placed = false;
            for (o, bin) in per_octant.iter_mut().enumerate() {
                if bounds.octant(o).contains_box(&tb) {
                    bin.push(i);
                    placed = true;
                    break;
                }
            }
            if !placed {
                stay.push(i);
            }
        }
        // If splitting doesn't help (all straddle), keep as leaf.
        if per_octant.iter().all(|v| v.is_empty()) {
            self.nodes[id as usize].tris = stay;
            return id;
        }
        self.nodes[id as usize].is_leaf = false;
        self.nodes[id as usize].tris = stay;
        for (o, sub) in per_octant.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let child_bounds = bounds.octant(o);
            let child = self.build_node(tris, child_bounds, sub, depth + 1, cfg);
            self.nodes[id as usize].children[o] = child;
        }
        id
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn triangle_count(&self) -> usize {
        self.len
    }

    pub fn bounds(&self) -> Option<Aabb> {
        self.nodes.first().map(|n| n.bounds)
    }

    /// Frustum culling: collect indices of every triangle whose containing
    /// node intersects `frustum`, with traversal statistics.
    pub fn cull(&self, frustum: &Frustum, out: &mut Vec<u32>) -> CullStats {
        let mut stats = CullStats::default();
        if self.nodes.is_empty() {
            return stats;
        }
        self.cull_node(0, frustum, out, &mut stats);
        stats.triangles_out = out.len() as u64;
        stats
    }

    fn cull_node(&self, id: u32, frustum: &Frustum, out: &mut Vec<u32>, stats: &mut CullStats) {
        let node = &self.nodes[id as usize];
        stats.nodes_visited += 1;
        match frustum.test_aabb(&node.bounds) {
            Containment::Outside => {}
            Containment::Inside => {
                stats.subtrees_accepted += 1;
                self.collect_all(id, out, stats);
            }
            Containment::Intersecting => {
                out.extend_from_slice(&node.tris);
                for &c in &node.children {
                    if c != NO_CHILD {
                        self.cull_node(c, frustum, out, stats);
                    }
                }
            }
        }
    }

    fn collect_all(&self, id: u32, out: &mut Vec<u32>, stats: &mut CullStats) {
        let node = &self.nodes[id as usize];
        out.extend_from_slice(&node.tris);
        for &c in &node.children {
            if c != NO_CHILD {
                stats.nodes_visited += 1;
                self.collect_all(c, out, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{vec3, Mat4, Vec3};

    fn tri_at(x: f32, y: f32, z: f32) -> Triangle {
        Triangle::new(
            vec3(x, y, z),
            vec3(x + 0.5, y, z),
            vec3(x, y + 0.5, z),
            [100, 100, 100],
        )
    }

    fn grid_scene(n: i32) -> Vec<Triangle> {
        let mut tris = Vec::new();
        for i in -n..n {
            for j in -n..n {
                tris.push(tri_at(i as f32 * 2.0, j as f32 * 2.0, -10.0));
                tris.push(tri_at(i as f32 * 2.0, j as f32 * 2.0, -30.0));
            }
        }
        tris
    }

    fn frustum_at_origin() -> Frustum {
        let view = Mat4::look_at(Vec3::ZERO, vec3(0.0, 0.0, -1.0), Vec3::Y);
        let proj = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 20.0);
        Frustum::from_matrix(&proj.mul_mat(&view))
    }

    #[test]
    fn build_empty() {
        let tree = Octree::build(&[], OctreeConfig::default());
        assert_eq!(tree.node_count(), 0);
        let mut out = Vec::new();
        let stats = tree.cull(&frustum_at_origin(), &mut out);
        assert!(out.is_empty());
        assert_eq!(stats.nodes_visited, 0);
    }

    #[test]
    fn tree_splits_large_scenes() {
        let tris = grid_scene(8);
        let tree = Octree::build(&tris, OctreeConfig::default());
        assert!(tree.node_count() > 1, "256+ triangles should split");
        assert_eq!(tree.triangle_count(), tris.len());
        assert!(tree.bounds().unwrap().contains(vec3(0.0, 0.0, -10.0)));
    }

    #[test]
    fn cull_superset_of_brute_force() {
        // Culling must never drop a triangle whose AABB intersects the
        // frustum (conservative containment of the brute-force result).
        let tris = grid_scene(6);
        let tree = Octree::build(
            &tris,
            OctreeConfig {
                leaf_size: 4,
                max_depth: 6,
            },
        );
        let f = frustum_at_origin();
        let mut out = Vec::new();
        tree.cull(&f, &mut out);
        let out_set: std::collections::HashSet<u32> = out.iter().copied().collect();
        for (i, t) in tris.iter().enumerate() {
            if f.test_aabb(&t.aabb()) != Containment::Outside {
                assert!(
                    out_set.contains(&(i as u32)),
                    "triangle {i} visible but culled"
                );
            }
        }
    }

    #[test]
    fn cull_actually_culls() {
        // Far-plane at 20: the z=-30 layer must be culled; the culled
        // output should be well below the full count.
        let tris = grid_scene(6);
        let tree = Octree::build(
            &tris,
            OctreeConfig {
                leaf_size: 4,
                max_depth: 6,
            },
        );
        let mut out = Vec::new();
        let stats = tree.cull(&frustum_at_origin(), &mut out);
        assert!(out.len() < tris.len(), "nothing was culled");
        assert!(stats.nodes_visited < tree.node_count() as u64 * 2);
        assert_eq!(stats.triangles_out, out.len() as u64);
    }

    #[test]
    fn no_duplicate_indices() {
        let tris = grid_scene(5);
        let tree = Octree::build(
            &tris,
            OctreeConfig {
                leaf_size: 2,
                max_depth: 8,
            },
        );
        let mut out = Vec::new();
        tree.cull(&frustum_at_origin(), &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), out.len(), "duplicate triangle indices");
    }

    #[test]
    fn narrow_frustum_visits_fewer_nodes() {
        let tris = grid_scene(8);
        let tree = Octree::build(
            &tris,
            OctreeConfig {
                leaf_size: 4,
                max_depth: 8,
            },
        );
        let wide = frustum_at_origin();
        let view = Mat4::look_at(Vec3::ZERO, vec3(0.0, 0.0, -1.0), Vec3::Y);
        let narrow_proj = Mat4::perspective(0.1, 1.0, 0.1, 20.0);
        let narrow = Frustum::from_matrix(&narrow_proj.mul_mat(&view));
        let mut out_w = Vec::new();
        let mut out_n = Vec::new();
        let sw = tree.cull(&wide, &mut out_w);
        let sn = tree.cull(&narrow, &mut out_n);
        assert!(out_n.len() <= out_w.len());
        assert!(sn.nodes_visited <= sw.nodes_visited);
    }

    #[test]
    fn leaf_size_one_still_terminates() {
        // Coincident triangles can't be separated — must not recurse
        // forever.
        let tris = vec![tri_at(0.0, 0.0, -5.0); 64];
        let tree = Octree::build(
            &tris,
            OctreeConfig {
                leaf_size: 1,
                max_depth: 32,
            },
        );
        let mut out = Vec::new();
        tree.cull(&frustum_at_origin(), &mut out);
        assert_eq!(out.len(), 64);
    }
}
