//! Z-buffered software rasteriser.
//!
//! Stands in for the os-mesa renderer the paper uses: triangles are
//! transformed by a model-view-projection matrix, clipped (conservatively)
//! against the near plane, perspective-divided, and filled with an edge
//! function walk over their screen bounding box. Each renderer owns its
//! frame buffer (4 bytes per pixel) and a z-buffer, as described in §IV.

use crate::math::{vec3, Mat4, Vec3};
use crate::mesh::Triangle;
use scc_filters::Image;

/// Counters for one rasterisation pass — inputs to the render cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasterStats {
    /// Triangles submitted after culling.
    pub triangles_in: u64,
    /// Triangles that survived clipping/degeneracy tests and were walked.
    pub triangles_filled: u64,
    /// Pixels passing the edge test (fill-rate work, pre depth test).
    pub pixels_covered: u64,
    /// Pixels actually written (depth test winners).
    pub pixels_written: u64,
}

/// Directional light used for flat shading.
pub const LIGHT_DIR: Vec3 = vec3(0.45, 0.8, 0.35);

/// Ambient / diffuse mix for flat shading.
const AMBIENT: f32 = 0.35;

/// Rasterise `indices` of `tris` through `mvp` into `img` (with its
/// z-buffer), accumulating statistics.
///
/// `zbuf` must have one entry per pixel, initialised to `f32::INFINITY`
/// for a fresh frame.
pub fn rasterize(
    tris: &[Triangle],
    indices: &[u32],
    mvp: &Mat4,
    img: &mut Image,
    zbuf: &mut [f32],
) -> RasterStats {
    let w = img.width() as i64;
    let h = img.height() as i64;
    assert_eq!(zbuf.len(), (w * h) as usize, "z-buffer size mismatch");
    let mut stats = RasterStats {
        triangles_in: indices.len() as u64,
        ..Default::default()
    };
    let light = LIGHT_DIR.normalized();

    for &ti in indices {
        let tri = &tris[ti as usize];
        // Transform to clip space.
        let clip = [
            mvp.transform_point(tri.v[0]),
            mvp.transform_point(tri.v[1]),
            mvp.transform_point(tri.v[2]),
        ];
        // Conservative near-plane handling: drop triangles that cross or
        // sit behind the near plane (w ≤ ε). The walkthrough keeps
        // geometry away from the eye so this loses almost nothing, and it
        // keeps strip renders bit-consistent with full-frame renders.
        if clip.iter().any(|c| c.w < 1e-4) {
            continue;
        }
        let ndc = [clip[0].project(), clip[1].project(), clip[2].project()];
        // Viewport transform (row 0 = top of the image).
        let to_screen = |p: Vec3| -> (f32, f32, f32) {
            (
                (p.x + 1.0) * 0.5 * w as f32,
                (1.0 - p.y) * 0.5 * h as f32,
                p.z,
            )
        };
        let (x0, y0, z0) = to_screen(ndc[0]);
        let (x1, y1, z1) = to_screen(ndc[1]);
        let (x2, y2, z2) = to_screen(ndc[2]);

        // Signed doubled area; skip degenerate triangles. Render
        // double-sided (the city boxes are closed, but the ground plane
        // may be seen from grazing angles).
        let area = (x1 - x0) * (y2 - y0) - (y1 - y0) * (x2 - x0);
        if area.abs() < 1e-6 {
            continue;
        }

        // Screen bounding box clipped to the viewport.
        let min_x = x0.min(x1).min(x2).floor().max(0.0) as i64;
        let max_x = (x0.max(x1).max(x2).ceil() as i64).min(w - 1);
        let min_y = y0.min(y1).min(y2).floor().max(0.0) as i64;
        let max_y = (y0.max(y1).max(y2).ceil() as i64).min(h - 1);
        if min_x > max_x || min_y > max_y {
            continue;
        }
        stats.triangles_filled += 1;

        // Flat shading from the world-space normal.
        let n = tri.normal_raw().normalized();
        let diff = n.dot(light).abs();
        let shade = AMBIENT + (1.0 - AMBIENT) * diff;
        let color = [
            (tri.color[0] as f32 * shade) as u8,
            (tri.color[1] as f32 * shade) as u8,
            (tri.color[2] as f32 * shade) as u8,
            255,
        ];

        let inv_area = 1.0 / area;
        for py in min_y..=max_y {
            for px in min_x..=max_x {
                let cx = px as f32 + 0.5;
                let cy = py as f32 + 0.5;
                // Barycentric via edge functions (sign matched to `area`).
                let w0 = ((x1 - cx) * (y2 - cy) - (y1 - cy) * (x2 - cx)) * inv_area;
                let w1 = ((x2 - cx) * (y0 - cy) - (y2 - cy) * (x0 - cx)) * inv_area;
                let w2 = 1.0 - w0 - w1;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                stats.pixels_covered += 1;
                let z = w0 * z0 + w1 * z1 + w2 * z2;
                let zi = (py * w + px) as usize;
                if z < zbuf[zi] {
                    zbuf[zi] = z;
                    img.set(px as u32, py as u32, color);
                    stats.pixels_written += 1;
                }
            }
        }
    }
    stats
}

/// Fresh z-buffer for a `w`×`h` target.
pub fn new_zbuf(w: u32, h: u32) -> Vec<f32> {
    vec![f32::INFINITY; w as usize * h as usize]
}

/// Estimate the fill-rate work (covered pixels, pre-depth-test) of
/// rasterising `indices`, by counting edge-function passes on a
/// `1/COVERAGE_SCALE`-resolution grid and scaling back up. Tracks the real
/// `pixels_covered` within a few percent at a fraction of the cost, and —
/// crucially for the per-strip load balance of the sort-first renderer —
/// distributes work across strips the same way real rasterisation does.
/// Used by both fidelity modes so render costs are identical.
pub const COVERAGE_SCALE: u32 = 4;

pub fn estimate_coverage(tris: &[Triangle], indices: &[u32], mvp: &Mat4, w: u32, h: u32) -> u64 {
    let sw = (w / COVERAGE_SCALE).max(1) as i64;
    let sh = (h / COVERAGE_SCALE).max(1) as i64;
    let mut covered = 0u64;
    for &ti in indices {
        let tri = &tris[ti as usize];
        let clip = [
            mvp.transform_point(tri.v[0]),
            mvp.transform_point(tri.v[1]),
            mvp.transform_point(tri.v[2]),
        ];
        if clip.iter().any(|c| c.w < 1e-4) {
            continue;
        }
        let ndc = [clip[0].project(), clip[1].project(), clip[2].project()];
        let to_screen = |p: Vec3| -> (f32, f32) {
            ((p.x + 1.0) * 0.5 * sw as f32, (1.0 - p.y) * 0.5 * sh as f32)
        };
        let (x0, y0) = to_screen(ndc[0]);
        let (x1, y1) = to_screen(ndc[1]);
        let (x2, y2) = to_screen(ndc[2]);
        let area = (x1 - x0) * (y2 - y0) - (y1 - y0) * (x2 - x0);
        if area.abs() < 1e-6 {
            continue;
        }
        let min_x = x0.min(x1).min(x2).floor().max(0.0) as i64;
        let max_x = (x0.max(x1).max(x2).ceil() as i64).min(sw - 1);
        let min_y = y0.min(y1).min(y2).floor().max(0.0) as i64;
        let max_y = (y0.max(y1).max(y2).ceil() as i64).min(sh - 1);
        if min_x > max_x || min_y > max_y {
            continue;
        }
        let inv_area = 1.0 / area;
        for py in min_y..=max_y {
            for px in min_x..=max_x {
                let cx = px as f32 + 0.5;
                let cy = py as f32 + 0.5;
                let w0 = ((x1 - cx) * (y2 - cy) - (y1 - cy) * (x2 - cx)) * inv_area;
                let w1 = ((x2 - cx) * (y0 - cy) - (y2 - cy) * (x0 - cx)) * inv_area;
                let w2 = 1.0 - w0 - w1;
                if w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0 {
                    covered += 1;
                }
            }
        }
    }
    covered * (COVERAGE_SCALE as u64 * COVERAGE_SCALE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;

    fn full_screen_tri(z: f32, color: [u8; 3]) -> Triangle {
        // Covers the whole NDC square generously at depth `z` (view space
        // straight ahead with identity MVP).
        Triangle::new(
            vec3(-4.0, -4.0, z),
            vec3(4.0, -4.0, z),
            vec3(0.0, 6.0, z),
            color,
        )
    }

    /// Identity-like MVP: pass NDC through (w = 1).
    fn identity() -> Mat4 {
        Mat4::IDENTITY
    }

    #[test]
    fn fills_pixels_inside_triangle() {
        let tris = [full_screen_tri(0.0, [200, 0, 0])];
        let mut img = Image::new(16, 16);
        let mut z = new_zbuf(16, 16);
        let stats = rasterize(&tris, &[0], &identity(), &mut img, &mut z);
        assert_eq!(stats.triangles_filled, 1);
        assert!(stats.pixels_written > 0);
        // Centre pixel must be shaded red-ish.
        let c = img.get(8, 8);
        assert!(c[0] > 0 && c[1] == 0 && c[2] == 0);
    }

    #[test]
    fn depth_test_keeps_nearest() {
        // NDC z: smaller = nearer with our convention.
        let tris = [
            full_screen_tri(0.5, [0, 255, 0]),
            full_screen_tri(0.1, [255, 0, 0]),
        ];
        let mut img = Image::new(8, 8);
        let mut z = new_zbuf(8, 8);
        // Draw far first then near.
        rasterize(&tris, &[0, 1], &identity(), &mut img, &mut z);
        let c = img.get(4, 4);
        assert!(c[0] > 0 && c[1] == 0, "near (red) triangle must win");
        // Order independence: near first, far second.
        let mut img2 = Image::new(8, 8);
        let mut z2 = new_zbuf(8, 8);
        rasterize(&tris, &[1, 0], &identity(), &mut img2, &mut z2);
        assert_eq!(img.get(4, 4), img2.get(4, 4));
    }

    #[test]
    fn degenerate_triangles_skipped() {
        let t = Triangle::new(
            vec3(0.0, 0.0, 0.0),
            vec3(1.0, 1.0, 0.0),
            vec3(2.0, 2.0, 0.0),
            [9; 3],
        );
        let tris = [t];
        let mut img = Image::new(8, 8);
        let mut z = new_zbuf(8, 8);
        let stats = rasterize(&tris, &[0], &identity(), &mut img, &mut z);
        assert_eq!(stats.triangles_filled, 0);
        assert_eq!(stats.pixels_written, 0);
    }

    #[test]
    fn behind_camera_rejected() {
        // With a real perspective matrix, w = -z_view; a triangle behind
        // the eye has w < 0 and must be dropped, not smeared.
        let proj = Mat4::perspective(1.0, 1.0, 0.5, 50.0);
        let t = Triangle::new(
            vec3(-1.0, -1.0, 5.0),
            vec3(1.0, -1.0, 5.0),
            vec3(0.0, 1.0, 5.0),
            [255; 3],
        );
        let tris = [t];
        let mut img = Image::new(8, 8);
        let mut z = new_zbuf(8, 8);
        let stats = rasterize(&tris, &[0], &proj, &mut img, &mut z);
        assert_eq!(stats.pixels_written, 0);
        assert_eq!(stats.triangles_filled, 0);
    }

    #[test]
    fn offscreen_triangle_writes_nothing() {
        let proj = Mat4::perspective(1.0, 1.0, 0.5, 50.0);
        // Far off to the +x side.
        let t = Triangle::new(
            vec3(100.0, 0.0, -10.0),
            vec3(101.0, 0.0, -10.0),
            vec3(100.0, 1.0, -10.0),
            [255; 3],
        );
        let mut img = Image::new(8, 8);
        let mut z = new_zbuf(8, 8);
        let stats = rasterize(&[t], &[0], &proj, &mut img, &mut z);
        assert_eq!(stats.pixels_written, 0);
    }

    #[test]
    fn covered_at_least_written() {
        let tris = [
            full_screen_tri(0.3, [1, 2, 3]),
            full_screen_tri(0.2, [3, 2, 1]),
        ];
        let mut img = Image::new(32, 32);
        let mut z = new_zbuf(32, 32);
        let stats = rasterize(&tris, &[0, 1], &identity(), &mut img, &mut z);
        assert!(stats.pixels_covered >= stats.pixels_written);
        assert!(stats.pixels_written >= 32 * 32, "both cover full screen");
    }

    #[test]
    #[should_panic(expected = "z-buffer size mismatch")]
    fn zbuf_size_checked() {
        let mut img = Image::new(4, 4);
        let mut z = vec![f32::INFINITY; 3];
        rasterize(&[], &[], &identity(), &mut img, &mut z);
    }
}
