//! Minimal 3D linear algebra for the software renderer: `Vec3`, `Vec4`
//! and column-major `Mat4` with the usual graphics constructions
//! (look-at, perspective, viewport-friendly transforms).

use std::ops::{Add, Div, Mul, Neg, Sub};

#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub w: f32,
}

pub const fn vec3(x: f32, y: f32, z: f32) -> Vec3 {
    Vec3 { x, y, z }
}

pub const fn vec4(x: f32, y: f32, z: f32, w: f32) -> Vec4 {
    Vec4 { x, y, z, w }
}

impl Vec3 {
    pub const ZERO: Vec3 = vec3(0.0, 0.0, 0.0);
    pub const X: Vec3 = vec3(1.0, 0.0, 0.0);
    pub const Y: Vec3 = vec3(0.0, 1.0, 0.0);
    pub const Z: Vec3 = vec3(0.0, 0.0, 1.0);

    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    pub fn cross(self, o: Vec3) -> Vec3 {
        vec3(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        debug_assert!(l > 0.0, "normalizing zero vector");
        self / l
    }

    pub fn min(self, o: Vec3) -> Vec3 {
        vec3(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    pub fn max(self, o: Vec3) -> Vec3 {
        vec3(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    pub fn extend(self, w: f32) -> Vec4 {
        vec4(self.x, self.y, self.z, w)
    }
}

impl Vec4 {
    pub fn truncate(self) -> Vec3 {
        vec3(self.x, self.y, self.z)
    }

    /// Perspective division.
    pub fn project(self) -> Vec3 {
        debug_assert!(self.w != 0.0, "projecting w=0");
        vec3(self.x / self.w, self.y / self.w, self.z / self.w)
    }

    pub fn dot(self, o: Vec4) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z + self.w * o.w
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        vec3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        vec3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        vec3(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f32) -> Vec3 {
        vec3(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        vec3(-self.x, -self.y, -self.z)
    }
}

/// Column-major 4×4 matrix: `cols[c]` is column `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    pub cols: [Vec4; 4],
}

impl Mat4 {
    pub const IDENTITY: Mat4 = Mat4 {
        cols: [
            vec4(1.0, 0.0, 0.0, 0.0),
            vec4(0.0, 1.0, 0.0, 0.0),
            vec4(0.0, 0.0, 1.0, 0.0),
            vec4(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Row `r` as a Vec4 (useful for frustum plane extraction).
    pub fn row(&self, r: usize) -> Vec4 {
        match r {
            0 => vec4(
                self.cols[0].x,
                self.cols[1].x,
                self.cols[2].x,
                self.cols[3].x,
            ),
            1 => vec4(
                self.cols[0].y,
                self.cols[1].y,
                self.cols[2].y,
                self.cols[3].y,
            ),
            2 => vec4(
                self.cols[0].z,
                self.cols[1].z,
                self.cols[2].z,
                self.cols[3].z,
            ),
            3 => vec4(
                self.cols[0].w,
                self.cols[1].w,
                self.cols[2].w,
                self.cols[3].w,
            ),
            _ => panic!("row index {r} out of range"),
        }
    }

    pub fn mul_vec4(&self, v: Vec4) -> Vec4 {
        vec4(
            self.row(0).dot(v),
            self.row(1).dot(v),
            self.row(2).dot(v),
            self.row(3).dot(v),
        )
    }

    /// Transform a point (w = 1) and return the homogeneous result.
    pub fn transform_point(&self, p: Vec3) -> Vec4 {
        self.mul_vec4(p.extend(1.0))
    }

    pub fn mul_mat(&self, o: &Mat4) -> Mat4 {
        Mat4 {
            cols: [
                self.mul_vec4(o.cols[0]),
                self.mul_vec4(o.cols[1]),
                self.mul_vec4(o.cols[2]),
                self.mul_vec4(o.cols[3]),
            ],
        }
    }

    pub fn translation(t: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.cols[3] = t.extend(1.0);
        m
    }

    pub fn scale(s: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.cols[0].x = s.x;
        m.cols[1].y = s.y;
        m.cols[2].z = s.z;
        m
    }

    /// Right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
        let f = (target - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Mat4 {
            cols: [
                vec4(s.x, u.x, -f.x, 0.0),
                vec4(s.y, u.y, -f.y, 0.0),
                vec4(s.z, u.z, -f.z, 0.0),
                vec4(-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
            ],
        }
    }

    /// Right-handed perspective projection (OpenGL-style, z in [-1, 1]).
    pub fn perspective(fovy_rad: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
        assert!(near > 0.0 && far > near, "bad clip planes");
        let f = 1.0 / (fovy_rad / 2.0).tan();
        let mut m = Mat4 {
            cols: [Vec4::default(); 4],
        };
        m.cols[0].x = f / aspect;
        m.cols[1].y = f;
        m.cols[2].z = (far + near) / (near - far);
        m.cols[2].w = -1.0;
        m.cols[3].z = 2.0 * far * near / (near - far);
        m
    }

    /// Asymmetric perspective frustum for a sub-rectangle of the image
    /// plane — the "additional computation to adjust the viewing frustum"
    /// each per-strip renderer performs (§V). The sub-rectangle is given
    /// in NDC: `y_lo`/`y_hi` ∈ [-1, 1] select the vertical band.
    pub fn perspective_band(
        fovy_rad: f32,
        aspect: f32,
        near: f32,
        far: f32,
        y_lo: f32,
        y_hi: f32,
    ) -> Mat4 {
        assert!(y_lo < y_hi, "empty band");
        let f = 1.0 / (fovy_rad / 2.0).tan();
        let top = near / f;
        let right = top * aspect;
        // Band limits on the near plane.
        let b = top * y_lo;
        let t = top * y_hi;
        Mat4::frustum(-right, right, b, t, near, far)
    }

    /// General glFrustum-style asymmetric projection.
    pub fn frustum(l: f32, r: f32, b: f32, t: f32, near: f32, far: f32) -> Mat4 {
        let mut m = Mat4 {
            cols: [Vec4::default(); 4],
        };
        m.cols[0].x = 2.0 * near / (r - l);
        m.cols[1].y = 2.0 * near / (t - b);
        m.cols[2].x = (r + l) / (r - l);
        m.cols[2].y = (t + b) / (t - b);
        m.cols[2].z = (far + near) / (near - far);
        m.cols[2].w = -1.0;
        m.cols[3].z = 2.0 * far * near / (near - far);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    fn vclose(a: Vec3, b: Vec3) -> bool {
        close(a.x, b.x) && close(a.y, b.y) && close(a.z, b.z)
    }

    #[test]
    fn vector_basics() {
        let a = vec3(1.0, 2.0, 3.0);
        let b = vec3(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert!(close(vec3(3.0, 4.0, 0.0).length(), 5.0));
        assert!(vclose(vec3(10.0, 0.0, 0.0).normalized(), Vec3::X));
        assert!(vclose(a + b, vec3(5.0, 7.0, 9.0)));
        assert!(vclose(b - a, vec3(3.0, 3.0, 3.0)));
        assert!(vclose(a * 2.0, vec3(2.0, 4.0, 6.0)));
        assert!(vclose(-a, vec3(-1.0, -2.0, -3.0)));
        assert!(vclose(a.min(b), a));
        assert!(vclose(a.max(b), b));
    }

    #[test]
    fn identity_is_neutral() {
        let p = vec3(3.0, -2.0, 7.0);
        assert!(vclose(Mat4::IDENTITY.transform_point(p).project(), p));
        let m = Mat4::translation(vec3(1.0, 2.0, 3.0));
        assert_eq!(Mat4::IDENTITY.mul_mat(&m), m);
        assert_eq!(m.mul_mat(&Mat4::IDENTITY), m);
    }

    #[test]
    fn translation_and_scale() {
        let t = Mat4::translation(vec3(1.0, 2.0, 3.0));
        assert!(vclose(
            t.transform_point(Vec3::ZERO).project(),
            vec3(1.0, 2.0, 3.0)
        ));
        let s = Mat4::scale(vec3(2.0, 3.0, 4.0));
        assert!(vclose(
            s.transform_point(vec3(1.0, 1.0, 1.0)).project(),
            vec3(2.0, 3.0, 4.0)
        ));
        // Composition order: T * S scales first.
        let ts = t.mul_mat(&s);
        assert!(vclose(
            ts.transform_point(vec3(1.0, 1.0, 1.0)).project(),
            vec3(3.0, 5.0, 7.0)
        ));
    }

    #[test]
    fn look_at_maps_eye_to_origin_and_target_to_minus_z() {
        let eye = vec3(0.0, 0.0, 5.0);
        let view = Mat4::look_at(eye, Vec3::ZERO, Vec3::Y);
        assert!(vclose(view.transform_point(eye).project(), Vec3::ZERO));
        let t = view.transform_point(Vec3::ZERO).project();
        assert!(close(t.x, 0.0) && close(t.y, 0.0) && t.z < 0.0);
    }

    #[test]
    fn perspective_maps_clip_planes() {
        let proj = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 1.0, 100.0);
        // A point on the near plane straight ahead -> z = -1 NDC.
        let near = proj.transform_point(vec3(0.0, 0.0, -1.0)).project();
        assert!(close(near.z, -1.0));
        let far = proj.transform_point(vec3(0.0, 0.0, -100.0)).project();
        assert!(close(far.z, 1.0));
        // 90° fov: x = |z| lands on the NDC edge.
        let edge = proj.transform_point(vec3(-5.0, 0.0, -5.0)).project();
        assert!(close(edge.x, -1.0));
    }

    #[test]
    fn band_projection_covers_its_slice() {
        let fovy = std::f32::consts::FRAC_PI_2;
        let full = Mat4::perspective(fovy, 1.0, 1.0, 100.0);
        let band = Mat4::perspective_band(fovy, 1.0, 1.0, 100.0, 0.0, 1.0); // top half
                                                                            // A point that projects to y=0.5 in the full frustum should map to
                                                                            // y=0 in the top-half band (the band's centre).
        let p = vec3(0.0, 2.5, -5.0);
        let yf = full.transform_point(p).project().y;
        assert!(close(yf, 0.5));
        let yb = band.transform_point(p).project().y;
        assert!(close(yb, 0.0));
        // And the band's edges land on ±1.
        let top = vec3(0.0, 5.0, -5.0);
        assert!(close(band.transform_point(top).project().y, 1.0));
        let mid = vec3(0.0, 0.0, -5.0);
        assert!(close(band.transform_point(mid).project().y, -1.0));
    }

    #[test]
    fn band_union_equals_full_projection_x() {
        // x and z behaviour must be identical between full and band.
        let fovy = 1.0f32;
        let full = Mat4::perspective(fovy, 2.0, 0.5, 50.0);
        let band = Mat4::perspective_band(fovy, 2.0, 0.5, 50.0, -1.0, 1.0);
        let p = vec3(1.3, 0.7, -3.0);
        let a = full.transform_point(p).project();
        let b = band.transform_point(p).project();
        assert!(close(a.x, b.x));
        assert!(close(a.y, b.y));
        assert!(close(a.z, b.z));
    }

    #[test]
    fn row_extraction_matches_columns() {
        let m = Mat4::perspective(1.0, 1.5, 0.1, 10.0);
        for r in 0..4 {
            let row = m.row(r);
            let v = vec4(1.0, 2.0, 3.0, 4.0);
            let full = m.mul_vec4(v);
            let manual = row.dot(v);
            let got = match r {
                0 => full.x,
                1 => full.y,
                2 => full.z,
                _ => full.w,
            };
            assert!(close(manual, got));
        }
    }
}
