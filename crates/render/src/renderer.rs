//! The render stage proper: frustum-cull the octree, rasterise the strip.
//!
//! Ties the scene, octree, camera and rasteriser together behind the API
//! the macro pipeline's render stage uses: *give me frame `f`'s pixels for
//! image rows `y0..y0+h`*, with the workload statistics the cost model
//! needs.

use crate::camera::Camera;
use crate::octree::{CullStats, Octree, OctreeConfig};
use crate::raster::{new_zbuf, rasterize, RasterStats};
use crate::scene::Scene;
use scc_filters::Image;
use std::sync::Arc;

/// Workload statistics of one strip render.
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderStats {
    pub cull: CullStats,
    pub raster: RasterStats,
}

/// A renderer bound to one scene (shared, read-only).
pub struct Renderer {
    scene: Arc<Scene>,
    octree: Arc<Octree>,
}

impl Renderer {
    pub fn new(scene: Arc<Scene>) -> Renderer {
        let octree = Arc::new(Octree::build(&scene.triangles, OctreeConfig::default()));
        Renderer { scene, octree }
    }

    /// Share the same scene/octree with another pipeline's renderer —
    /// mirrors the n-renderer configuration where every render core loads
    /// the same model.
    pub fn clone_shared(&self) -> Renderer {
        Renderer {
            scene: Arc::clone(&self.scene),
            octree: Arc::clone(&self.octree),
        }
    }

    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    pub fn octree(&self) -> &Octree {
        &self.octree
    }

    /// Frustum-cull the strip's view without rasterising: visible triangle
    /// indices, traversal stats and an analytic fill-coverage estimate.
    /// This is the workload probe the timing-only simulation uses — both
    /// fidelity modes charge render cost from these numbers.
    pub fn cull_strip(
        &self,
        camera: &Camera,
        width: u32,
        full_height: u32,
        y0: u32,
        h: u32,
    ) -> (Vec<u32>, CullStats, u64) {
        let mvp = camera.strip_view_projection(full_height, y0, h);
        let frustum = crate::frustum::Frustum::from_matrix(&mvp);
        let mut visible = Vec::new();
        let cull = self.octree.cull(&frustum, &mut visible);
        let coverage =
            crate::raster::estimate_coverage(&self.scene.triangles, &visible, &mvp, width, h);
        (visible, cull, coverage)
    }

    /// Render image rows `y0..y0+h` of a `width`×`full_height` frame seen
    /// by `camera`. Returns the strip image and workload stats.
    pub fn render_strip(
        &self,
        camera: &Camera,
        width: u32,
        full_height: u32,
        y0: u32,
        h: u32,
    ) -> (Image, RenderStats) {
        let mvp = camera.strip_view_projection(full_height, y0, h);
        let frustum = crate::frustum::Frustum::from_matrix(&mvp);
        let mut visible = Vec::new();
        let cull = self.octree.cull(&frustum, &mut visible);
        let mut img = Image::new(width, h);
        // Sky gradient background so the silent film has something to
        // flicker over even where no geometry lands.
        for y in 0..h {
            let t = (y0 + y) as f32 / full_height as f32;
            let r = (150.0 - 60.0 * t) as u8;
            let g = (170.0 - 50.0 * t) as u8;
            let b = (200.0 - 40.0 * t) as u8;
            for x in 0..width {
                img.set(x, y, [r, g, b, 255]);
            }
        }
        let mut zbuf = new_zbuf(width, h);
        let raster = rasterize(&self.scene.triangles, &visible, &mvp, &mut img, &mut zbuf);
        (img, RenderStats { cull, raster })
    }

    /// Render a complete frame (a single strip covering every row).
    pub fn render_full(&self, camera: &Camera, width: u32, height: u32) -> (Image, RenderStats) {
        self.render_strip(camera, width, height, 0, height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Walkthrough;
    use crate::scene::CityConfig;

    fn small_renderer() -> Renderer {
        Renderer::new(Arc::new(Scene::city(CityConfig {
            side: 10,
            spacing: 8.0,
            seed: 7,
        })))
    }

    #[test]
    fn full_render_draws_buildings() {
        let r = small_renderer();
        let cam = Walkthrough::standard(1.0).camera(0);
        let (img, stats) = r.render_full(&cam, 64, 64);
        assert!(stats.raster.pixels_written > 0, "nothing rendered");
        assert!(stats.cull.triangles_out > 0);
        assert!(
            stats.cull.triangles_out < r.scene().triangle_count() as u64,
            "culling removed nothing"
        );
        // Image is not uniform (buildings against sky).
        let first = img.get(0, 0);
        let mut uniform = true;
        'outer: for y in 0..64 {
            for x in 0..64 {
                if img.get(x, y) != first {
                    uniform = false;
                    break 'outer;
                }
            }
        }
        assert!(!uniform);
    }

    #[test]
    fn strips_compose_to_full_frame() {
        let r = small_renderer();
        let cam = Walkthrough::standard(1.0).camera(13);
        let (full, _) = r.render_full(&cam, 48, 48);
        let mut mismatches = 0u32;
        for strips in [2u32, 3] {
            let bounds = Image::strip_bounds(48, strips);
            let mut y_acc = 0;
            for (y0, h) in bounds {
                let (strip, _) = r.render_strip(&cam, 48, 48, y0, h);
                for sy in 0..h {
                    for x in 0..48 {
                        if strip.get(x, sy) != full.get(x, y0 + sy) {
                            mismatches += 1;
                        }
                    }
                }
                y_acc += h;
            }
            assert_eq!(y_acc, 48);
        }
        // Strip rendering re-derives sample positions through a different
        // matrix; allow a small fraction of boundary pixels to differ from
        // floating-point rounding, but the images must be essentially
        // identical.
        let total = 48 * 48 * 2;
        assert!(
            mismatches < total / 50,
            "{mismatches}/{total} pixels differ between strip and full render"
        );
    }

    #[test]
    fn deterministic_rendering() {
        let r = small_renderer();
        let cam = Walkthrough::standard(1.0).camera(99);
        let (a, sa) = r.render_full(&cam, 32, 32);
        let (b, sb) = r.render_full(&cam, 32, 32);
        assert_eq!(a, b);
        assert_eq!(sa.raster, sb.raster);
        assert_eq!(sa.cull, sb.cull);
    }

    #[test]
    fn shared_clone_uses_same_octree() {
        let r = small_renderer();
        let r2 = r.clone_shared();
        assert_eq!(r.octree().node_count(), r2.octree().node_count());
        assert!(Arc::ptr_eq(&r.octree, &r2.octree));
    }

    #[test]
    fn different_frames_see_different_geometry() {
        let r = small_renderer();
        let w = Walkthrough::standard(1.0);
        let (_, s0) = r.render_full(&w.camera(0), 32, 32);
        let (_, s200) = r.render_full(&w.camera(200), 32, 32);
        assert_ne!(
            s0.cull.triangles_out, s200.cull.triangles_out,
            "walkthrough should vary the visible set"
        );
    }

    #[test]
    fn narrow_strip_culls_harder_than_full() {
        let r = small_renderer();
        let cam = Walkthrough::standard(1.0).camera(40);
        let (_, full) = r.render_full(&cam, 64, 64);
        let (_, strip) = r.render_strip(&cam, 64, 64, 0, 16);
        assert!(strip.cull.triangles_out <= full.cull.triangles_out);
    }
}
