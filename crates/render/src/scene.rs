//! Procedural city scene — the stand-in for the paper's NYC CAD model.
//!
//! A seeded grid of box buildings with varied footprints, heights and
//! facade colours plus a ground plane. The triangle count is tunable so
//! benches can sweep scene complexity ("the running time of this stage
//! depends on … the complexity of the scene", §IV).

use crate::math::vec3;
use crate::mesh::{push_box, Aabb, Triangle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// City generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CityConfig {
    /// Buildings per side (total ≈ side² buildings ≈ 12·side² triangles).
    pub side: u32,
    /// Street spacing between building centres.
    pub spacing: f32,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            side: 24,
            spacing: 8.0,
            seed: 0xC17B_0A5E,
        }
    }
}

/// The generated scene.
#[derive(Debug)]
pub struct Scene {
    pub triangles: Vec<Triangle>,
    pub bounds: Aabb,
}

impl Scene {
    /// Generate the procedural city.
    pub fn city(cfg: CityConfig) -> Scene {
        assert!(cfg.side >= 1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut tris = Vec::with_capacity(12 * (cfg.side * cfg.side) as usize + 2);
        let half = cfg.side as f32 * cfg.spacing * 0.5;

        // Ground plane (two big triangles).
        let g = 1.2 * half;
        let ground_col = [70, 72, 68];
        tris.push(Triangle::new(
            vec3(-g, 0.0, -g),
            vec3(g, 0.0, -g),
            vec3(g, 0.0, g),
            ground_col,
        ));
        tris.push(Triangle::new(
            vec3(-g, 0.0, -g),
            vec3(g, 0.0, g),
            vec3(-g, 0.0, g),
            ground_col,
        ));

        for i in 0..cfg.side {
            for j in 0..cfg.side {
                let cx = i as f32 * cfg.spacing - half + cfg.spacing * 0.5;
                let cz = j as f32 * cfg.spacing - half + cfg.spacing * 0.5;
                // Leave a plaza at the centre so the camera orbit stays
                // outside the buildings.
                let r2 = cx * cx + cz * cz;
                if r2 < (cfg.spacing * 2.5) * (cfg.spacing * 2.5) {
                    continue;
                }
                let w = rng.gen_range(0.25..0.45) * cfg.spacing;
                let d = rng.gen_range(0.25..0.45) * cfg.spacing;
                let h = rng.gen_range(4.0..28.0);
                let shade = rng.gen_range(90..200) as u8;
                let tint = rng.gen_range(0..3);
                let color = match tint {
                    0 => [shade, shade.saturating_sub(10), shade.saturating_sub(25)],
                    1 => [shade.saturating_sub(15), shade, shade.saturating_sub(5)],
                    _ => [shade.saturating_sub(5), shade.saturating_sub(12), shade],
                };
                push_box(
                    &mut tris,
                    &Aabb::new(vec3(cx - w, 0.0, cz - d), vec3(cx + w, h, cz + d)),
                    color,
                );
            }
        }

        let mut bounds = Aabb::EMPTY;
        for t in &tris {
            bounds = bounds.union(&t.aabb());
        }
        Scene {
            triangles: tris,
            bounds,
        }
    }

    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Scene::city(CityConfig::default());
        let b = Scene::city(CityConfig::default());
        assert_eq!(a.triangle_count(), b.triangle_count());
        assert_eq!(a.triangles[100], b.triangles[100]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scene::city(CityConfig {
            seed: 1,
            ..Default::default()
        });
        let b = Scene::city(CityConfig {
            seed: 2,
            ..Default::default()
        });
        assert_eq!(a.triangle_count(), b.triangle_count());
        assert!(a.triangles.iter().zip(&b.triangles).any(|(x, y)| x != y));
    }

    #[test]
    fn size_scales_with_side() {
        let small = Scene::city(CityConfig {
            side: 8,
            ..Default::default()
        });
        let large = Scene::city(CityConfig {
            side: 24,
            ..Default::default()
        });
        assert!(large.triangle_count() > small.triangle_count() * 4);
    }

    #[test]
    fn buildings_stand_on_the_ground() {
        let s = Scene::city(CityConfig::default());
        assert!(s.bounds.min.y >= -1e-3, "geometry below ground");
        assert!(s.bounds.max.y > 4.0, "no building has height");
    }

    #[test]
    fn plaza_is_clear_for_the_camera() {
        // No building triangle within the central plaza radius (ground
        // triangles excluded by their y extent).
        let cfg = CityConfig::default();
        let s = Scene::city(cfg);
        let clear_r = cfg.spacing * 2.0;
        for t in &s.triangles[2..] {
            let c = t.centroid();
            let r = (c.x * c.x + c.z * c.z).sqrt();
            assert!(
                r > clear_r - cfg.spacing * 0.5,
                "building at radius {r} blocks the plaza"
            );
        }
    }
}

/// Parameters for the Manhattan-style variant.
#[derive(Debug, Clone, Copy)]
pub struct ManhattanConfig {
    /// City blocks per side.
    pub blocks: u32,
    /// Street-to-street block pitch.
    pub block_pitch: f32,
    /// Buildings per block side (buildings per block = side²).
    pub per_block: u32,
    pub seed: u64,
}

impl Default for ManhattanConfig {
    fn default() -> Self {
        ManhattanConfig {
            blocks: 7,
            block_pitch: 26.0,
            per_block: 2,
            seed: 0x4E59_C0DE,
        }
    }
}

impl Scene {
    /// A Manhattan-style street grid: square blocks of tightly packed
    /// towers separated by wide avenues — closer to the paper's NYC
    /// walkthrough model than the default scattered city, with the
    /// central avenue kept clear for the camera orbit.
    pub fn manhattan(cfg: ManhattanConfig) -> Scene {
        assert!(cfg.blocks >= 1 && cfg.per_block >= 1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut tris = Vec::new();
        let half = cfg.blocks as f32 * cfg.block_pitch * 0.5;

        let g = 1.15 * half;
        let ground = [64, 66, 62];
        tris.push(Triangle::new(
            vec3(-g, 0.0, -g),
            vec3(g, 0.0, -g),
            vec3(g, 0.0, g),
            ground,
        ));
        tris.push(Triangle::new(
            vec3(-g, 0.0, -g),
            vec3(g, 0.0, g),
            vec3(-g, 0.0, g),
            ground,
        ));

        // Street width = 35% of pitch; buildings fill the block interior.
        let street = 0.35 * cfg.block_pitch;
        let lot = (cfg.block_pitch - street) / cfg.per_block as f32;
        for bi in 0..cfg.blocks {
            for bj in 0..cfg.blocks {
                let bx = bi as f32 * cfg.block_pitch - half + street * 0.5;
                let bz = bj as f32 * cfg.block_pitch - half + street * 0.5;
                // Keep a plaza in the centre for the camera.
                let cx = bx + (cfg.block_pitch - street) * 0.5;
                let cz = bz + (cfg.block_pitch - street) * 0.5;
                if cx * cx + cz * cz < (1.6 * cfg.block_pitch) * (1.6 * cfg.block_pitch) {
                    continue;
                }
                for i in 0..cfg.per_block {
                    for j in 0..cfg.per_block {
                        let x0 = bx + i as f32 * lot + 0.08 * lot;
                        let z0 = bz + j as f32 * lot + 0.08 * lot;
                        let x1 = x0 + 0.84 * lot;
                        let z1 = z0 + 0.84 * lot;
                        // Manhattan-ish height distribution: many mid-rise,
                        // occasional towers.
                        let h = if rng.gen_range(0..8) == 0 {
                            rng.gen_range(30.0..60.0)
                        } else {
                            rng.gen_range(6.0..22.0)
                        };
                        let shade = rng.gen_range(95..190) as u8;
                        let color = [shade, shade.saturating_sub(8), shade.saturating_sub(18)];
                        push_box(
                            &mut tris,
                            &Aabb::new(vec3(x0, 0.0, z0), vec3(x1, h, z1)),
                            color,
                        );
                    }
                }
            }
        }

        let mut bounds = Aabb::EMPTY;
        for t in &tris {
            bounds = bounds.union(&t.aabb());
        }
        Scene {
            triangles: tris,
            bounds,
        }
    }
}

#[cfg(test)]
mod manhattan_tests {
    use super::*;

    #[test]
    fn manhattan_is_deterministic_and_sized() {
        let a = Scene::manhattan(ManhattanConfig::default());
        let b = Scene::manhattan(ManhattanConfig::default());
        assert_eq!(a.triangle_count(), b.triangle_count());
        assert!(
            a.triangle_count() > 1500,
            "{} triangles",
            a.triangle_count()
        );
        assert!(a.bounds.max.y > 25.0, "towers expected");
    }

    #[test]
    fn streets_are_clear() {
        // No building geometry inside the avenue strips between blocks.
        let cfg = ManhattanConfig::default();
        let s = Scene::manhattan(cfg);
        let half = cfg.blocks as f32 * cfg.block_pitch * 0.5;
        // The avenue centred on x = -half + k*pitch (block boundaries).
        for t in &s.triangles[2..] {
            let c = t.centroid();
            let rel = (c.x + half) / cfg.block_pitch;
            let frac = rel - rel.floor();
            let street_frac = 0.35 * 0.5 / 1.0; // half street width / pitch
            assert!(
                frac > street_frac * 0.9 || c.y < 0.01,
                "building at x-fraction {frac:.3} blocks an avenue"
            );
        }
    }

    #[test]
    fn walkthrough_renders_on_manhattan() {
        use crate::camera::Walkthrough;
        use crate::renderer::Renderer;
        use std::sync::Arc;
        let scene = Arc::new(Scene::manhattan(ManhattanConfig {
            blocks: 5,
            ..Default::default()
        }));
        let r = Renderer::new(scene);
        let cam = Walkthrough::standard(1.0).camera(50);
        let (_, stats) = r.render_full(&cam, 64, 64);
        assert!(stats.raster.pixels_written > 0);
        assert!(stats.cull.triangles_out > 0);
    }
}
