//! Camera and the deterministic 400-frame walkthrough path.
//!
//! "In our tests, we perform a virtual walkthrough through a 3D model. The
//! complete walkthrough consists of 400 individual frames" (§V). The path
//! orbits through the procedural city at street level with gentle height
//! and gaze variation, so successive frames see different object subsets —
//! keeping the frustum-culling workload frame-dependent like the paper's.

use crate::math::{vec3, Mat4, Vec3};

/// Number of frames in the paper's walkthrough.
pub const WALKTHROUGH_FRAMES: u64 = 400;

/// A pinhole camera.
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    pub eye: Vec3,
    pub target: Vec3,
    pub up: Vec3,
    /// Vertical field of view, radians.
    pub fovy: f32,
    pub aspect: f32,
    pub near: f32,
    pub far: f32,
}

impl Camera {
    pub fn view(&self) -> Mat4 {
        Mat4::look_at(self.eye, self.target, self.up)
    }

    pub fn projection(&self) -> Mat4 {
        Mat4::perspective(self.fovy, self.aspect, self.near, self.far)
    }

    /// Full-screen view-projection matrix.
    pub fn view_projection(&self) -> Mat4 {
        self.projection().mul_mat(&self.view())
    }

    /// View-projection for a horizontal strip of the image.
    ///
    /// `strip_y0..strip_y0+strip_h` are image rows (0 = top); the band is
    /// mapped to the asymmetric frustum covering exactly those rows, which
    /// is the "additional computation to adjust the viewing frustum of the
    /// camera" of the sort-first configuration (§VI-A).
    pub fn strip_view_projection(&self, full_height: u32, strip_y0: u32, strip_h: u32) -> Mat4 {
        assert!(strip_y0 + strip_h <= full_height, "strip beyond image");
        // Image row 0 is the top => NDC y = +1.
        let y_hi = 1.0 - 2.0 * strip_y0 as f32 / full_height as f32;
        let y_lo = 1.0 - 2.0 * (strip_y0 + strip_h) as f32 / full_height as f32;
        let band = Mat4::perspective_band(self.fovy, self.aspect, self.near, self.far, y_lo, y_hi);
        band.mul_mat(&self.view())
    }
}

/// The scripted city walkthrough.
#[derive(Debug, Clone, Copy)]
pub struct Walkthrough {
    pub frames: u64,
    /// Radius of the camera orbit (should be inside the city).
    pub radius: f32,
    pub aspect: f32,
}

impl Walkthrough {
    pub fn standard(aspect: f32) -> Walkthrough {
        Walkthrough {
            frames: WALKTHROUGH_FRAMES,
            radius: 40.0,
            aspect,
        }
    }

    /// Camera pose for `frame` (0-based, wraps around the loop).
    pub fn camera(&self, frame: u64) -> Camera {
        let t = (frame % self.frames) as f32 / self.frames as f32;
        let ang = t * std::f32::consts::TAU;
        // Street-level orbit with gentle bobbing.
        let eye = vec3(
            self.radius * ang.cos(),
            3.0 + (ang * 3.0).sin() * 1.2,
            self.radius * ang.sin(),
        );
        // Look ahead along the orbit, drifting toward the centre.
        let ahead = ang + 0.35;
        let target = vec3(
            self.radius * 0.55 * ahead.cos(),
            2.5 + (ang * 2.0).cos(),
            self.radius * 0.55 * ahead.sin(),
        );
        Camera {
            eye,
            target,
            up: Vec3::Y,
            fovy: 1.05, // ~60°
            aspect: self.aspect,
            near: 0.5,
            far: 220.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poses_are_deterministic() {
        let w = Walkthrough::standard(1.25);
        let a = w.camera(123);
        let b = w.camera(123);
        assert_eq!(a.eye, b.eye);
        assert_eq!(a.target, b.target);
    }

    #[test]
    fn path_wraps() {
        let w = Walkthrough::standard(1.0);
        assert_eq!(w.camera(0).eye, w.camera(400).eye);
    }

    #[test]
    fn consecutive_frames_move_smoothly() {
        let w = Walkthrough::standard(1.0);
        for f in 0..399 {
            let step = (w.camera(f + 1).eye - w.camera(f).eye).length();
            assert!(step < 2.0, "camera jumps {step} at frame {f}");
            assert!(step > 0.0, "camera frozen at frame {f}");
        }
    }

    #[test]
    fn camera_never_looks_at_itself() {
        let w = Walkthrough::standard(1.0);
        for f in (0..400).step_by(7) {
            let c = w.camera(f);
            assert!((c.target - c.eye).length() > 1.0);
        }
    }

    #[test]
    fn strip_bands_tile_the_screen() {
        let cam = Walkthrough::standard(1.0).camera(5);
        let full = cam.view_projection();
        // A point visible in the full projection must fall in exactly the
        // band whose rows contain its NDC y.
        let p = vec3(5.0, 2.0, 5.0);
        let ndc = full.transform_point(p);
        if ndc.w > 0.0 {
            let ndc = ndc.project();
            if ndc.x.abs() <= 1.0 && ndc.y.abs() <= 1.0 && ndc.z.abs() <= 1.0 {
                let h = 400u32;
                let strips = 4u32;
                let mut hits = 0;
                for s in 0..strips {
                    let y0 = s * h / strips;
                    let m = cam.strip_view_projection(h, y0, h / strips);
                    let q = m.transform_point(p).project();
                    if q.y.abs() <= 1.0 + 1e-4 {
                        hits += 1;
                    }
                }
                assert!(hits >= 1, "visible point not covered by any strip");
            }
        }
    }

    #[test]
    #[should_panic(expected = "strip beyond image")]
    fn strip_bounds_checked() {
        let cam = Walkthrough::standard(1.0).camera(0);
        cam.strip_view_projection(100, 90, 20);
    }
}
