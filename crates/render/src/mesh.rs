//! Triangle meshes and axis-aligned bounding boxes.

use crate::math::{vec3, Vec3};

/// A flat-shaded triangle: three CCW vertices and a base colour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    pub v: [Vec3; 3],
    pub color: [u8; 3],
}

impl Triangle {
    pub fn new(a: Vec3, b: Vec3, c: Vec3, color: [u8; 3]) -> Triangle {
        Triangle {
            v: [a, b, c],
            color,
        }
    }

    /// Geometric (unnormalised) normal; length is twice the area.
    pub fn normal_raw(&self) -> Vec3 {
        (self.v[1] - self.v[0]).cross(self.v[2] - self.v[0])
    }

    pub fn centroid(&self) -> Vec3 {
        (self.v[0] + self.v[1] + self.v[2]) / 3.0
    }

    pub fn aabb(&self) -> Aabb {
        Aabb {
            min: self.v[0].min(self.v[1]).min(self.v[2]),
            max: self.v[0].max(self.v[1]).max(self.v[2]),
        }
    }
}

/// Axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// The empty box (inverted bounds; union identity).
    pub const EMPTY: Aabb = Aabb {
        min: vec3(f32::INFINITY, f32::INFINITY, f32::INFINITY),
        max: vec3(f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY),
    };

    pub fn new(min: Vec3, max: Vec3) -> Aabb {
        Aabb { min, max }
    }

    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    pub fn union(&self, o: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(o.min),
            max: self.max.max(o.max),
        }
    }

    pub fn union_point(&self, p: Vec3) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    pub fn contains_box(&self, o: &Aabb) -> bool {
        !o.is_empty() && self.contains(o.min) && self.contains(o.max)
    }

    pub fn intersects(&self, o: &Aabb) -> bool {
        !self.is_empty()
            && !o.is_empty()
            && self.min.x <= o.max.x
            && self.max.x >= o.min.x
            && self.min.y <= o.max.y
            && self.max.y >= o.min.y
            && self.min.z <= o.max.z
            && self.max.z >= o.min.z
    }

    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    pub fn half_extent(&self) -> Vec3 {
        (self.max - self.min) * 0.5
    }

    /// The eight corner points.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            vec3(lo.x, lo.y, lo.z),
            vec3(hi.x, lo.y, lo.z),
            vec3(lo.x, hi.y, lo.z),
            vec3(hi.x, hi.y, lo.z),
            vec3(lo.x, lo.y, hi.z),
            vec3(hi.x, lo.y, hi.z),
            vec3(lo.x, hi.y, hi.z),
            vec3(hi.x, hi.y, hi.z),
        ]
    }

    /// The child box of octant `i` (bit 0 = +x, bit 1 = +y, bit 2 = +z).
    pub fn octant(&self, i: usize) -> Aabb {
        let c = self.center();
        let mut min = self.min;
        let mut max = c;
        if i & 1 != 0 {
            min.x = c.x;
            max.x = self.max.x;
        }
        if i & 2 != 0 {
            min.y = c.y;
            max.y = self.max.y;
        }
        if i & 4 != 0 {
            min.z = c.z;
            max.z = self.max.z;
        }
        Aabb { min, max }
    }
}

/// Push the 12 triangles of an axis-aligned box (building block of the
/// procedural city).
pub fn push_box(out: &mut Vec<Triangle>, b: &Aabb, color: [u8; 3]) {
    let c = b.corners();
    // Each face as two triangles, outward-facing CCW winding.
    let quads: [[usize; 4]; 6] = [
        [0, 2, 3, 1], // -z
        [4, 5, 7, 6], // +z
        [0, 1, 5, 4], // -y
        [2, 6, 7, 3], // +y
        [0, 4, 6, 2], // -x
        [1, 3, 7, 5], // +x
    ];
    for q in quads {
        out.push(Triangle::new(c[q[0]], c[q[1]], c[q[2]], color));
        out.push(Triangle::new(c[q[0]], c[q[2]], c[q[3]], color));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_normal_and_centroid() {
        let t = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y, [255, 0, 0]);
        assert_eq!(t.normal_raw(), Vec3::Z);
        let c = t.centroid();
        assert!((c.x - 1.0 / 3.0).abs() < 1e-6);
        assert!((c.y - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn triangle_aabb_bounds_vertices() {
        let t = Triangle::new(
            vec3(1.0, 5.0, -2.0),
            vec3(-1.0, 0.0, 3.0),
            vec3(2.0, 2.0, 2.0),
            [0; 3],
        );
        let b = t.aabb();
        for v in t.v {
            assert!(b.contains(v));
        }
        assert_eq!(b.min, vec3(-1.0, 0.0, -2.0));
        assert_eq!(b.max, vec3(2.0, 5.0, 3.0));
    }

    #[test]
    fn empty_box_is_union_identity() {
        let b = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0));
        assert!(Aabb::EMPTY.is_empty());
        assert_eq!(Aabb::EMPTY.union(&b), b);
        assert!(!Aabb::EMPTY.intersects(&b));
    }

    #[test]
    fn intersection_tests() {
        let a = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(2.0, 2.0, 2.0));
        let b = Aabb::new(vec3(1.0, 1.0, 1.0), vec3(3.0, 3.0, 3.0));
        let c = Aabb::new(vec3(5.0, 5.0, 5.0), vec3(6.0, 6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching faces count as intersecting.
        let d = Aabb::new(vec3(2.0, 0.0, 0.0), vec3(3.0, 1.0, 1.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn octants_tile_the_box() {
        let b = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(2.0, 4.0, 8.0));
        let mut vol = 0.0;
        for i in 0..8 {
            let o = b.octant(i);
            let e = o.max - o.min;
            vol += e.x * e.y * e.z;
            assert!(b.contains_box(&o));
        }
        assert!((vol - 2.0 * 4.0 * 8.0).abs() < 1e-4);
        // Octant 0 is the low corner, octant 7 the high corner.
        assert_eq!(b.octant(0).min, b.min);
        assert_eq!(b.octant(7).max, b.max);
    }

    #[test]
    fn box_mesh_has_12_consistent_triangles() {
        let b = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(1.0, 2.0, 3.0));
        let mut tris = Vec::new();
        push_box(&mut tris, &b, [10, 20, 30]);
        assert_eq!(tris.len(), 12);
        // Total surface area = 2(wh + wd + hd) = 2(2 + 3 + 6) = 22.
        let area: f32 = tris.iter().map(|t| t.normal_raw().length() / 2.0).sum();
        assert!((area - 22.0).abs() < 1e-4);
        // All triangles inside the box bounds.
        for t in &tris {
            assert!(b.contains_box(&t.aabb()));
        }
        // Outward winding: normals point away from the centre.
        for t in &tris {
            let n = t.normal_raw();
            let dir = t.centroid() - b.center();
            assert!(n.dot(dir) > 0.0, "inward-facing triangle");
        }
    }
}
