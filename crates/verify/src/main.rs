//! The `scc-verify` binary: golden-digest maintenance and the
//! coverage-guided fault-space fuzzer.
//!
//! ```text
//! scc-verify golden [--update]       check (or regenerate) tests/golden/
//! scc-verify fuzz [--budget 60s] [--seed N] [--cases K]
//! scc-verify replay <repro.txt>      run the oracle on one repro file
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scc_verify::fuzz::{run_oracle, shrink, FuzzCase};
use scc_verify::{digest_case, fnv1a_str, golden_matrix};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn repo_dir(env_override: &str, default_rel: &str) -> PathBuf {
    if let Ok(dir) = std::env::var(env_override) {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(default_rel)
}

fn golden_dir() -> PathBuf {
    repo_dir("SCC_GOLDEN_DIR", "../../tests/golden")
}

fn regressions_dir() -> PathBuf {
    repo_dir("SCC_REGRESSIONS_DIR", "../../tests/regressions")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("golden") => cmd_golden(args.iter().any(|a| a == "--update")),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("replay") => cmd_replay(args.get(1).map(String::as_str)),
        _ => {
            eprintln!("usage: scc-verify golden [--update] | fuzz [--budget 60s] [--seed N] [--cases K] | replay <file>");
            2
        }
    };
    std::process::exit(code);
}

/// Check every golden case digest against `tests/golden/<name>.txt`, or
/// rewrite the files with `--update` (the CLI twin of `UPDATE_GOLDEN=1`).
fn cmd_golden(update: bool) -> i32 {
    let dir = golden_dir();
    let mut drift = 0;
    let mut blocks: Vec<(String, String)> = golden_matrix()
        .iter()
        .map(|case| (case.name.clone(), digest_case(case)))
        .collect();
    blocks.push(("native-tuning".into(), scc_verify::native_tuning_digest()));
    blocks.push((
        "autoplace-decision".into(),
        scc_verify::autoplace_decision_digest(),
    ));
    blocks.push((
        "autoplace-decision-fused".into(),
        scc_verify::autoplace_decision_fused_digest(),
    ));
    blocks.push(("serving-smoke".into(), scc_verify::serving_smoke_digest()));
    blocks.push(("bench-schema".into(), scc_verify::bench_schema_digest()));
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    for (name, digest) in blocks {
        let path = dir.join(format!("{name}.txt"));
        if update {
            std::fs::write(&path, &digest).expect("write golden file");
            println!("wrote {}", path.display());
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == digest => println!("ok   {name}"),
            Ok(want) => {
                drift += 1;
                eprintln!("FAIL {name}: digest drifted");
                for (l, (a, b)) in digest.lines().zip(want.lines()).enumerate() {
                    if a != b {
                        eprintln!("  line {}: got  {a}", l + 1);
                        eprintln!("  line {}: want {b}", l + 1);
                    }
                }
            }
            Err(e) => {
                drift += 1;
                eprintln!("FAIL {name}: {e} (run `scc-verify golden --update`)");
            }
        }
    }
    if drift > 0 {
        eprintln!("{drift} golden digest(s) drifted");
        1
    } else {
        0
    }
}

fn parse_budget(s: &str) -> Duration {
    let (num, mult) = match s.strip_suffix('m') {
        Some(m) => (m, 60),
        None => (s.strip_suffix('s').unwrap_or(s), 1),
    };
    Duration::from_secs(num.parse::<u64>().expect("budget like 60s or 5m") * mult)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The fuzz loop: seed a corpus, then repeatedly pick a recent corpus
/// entry, mutate it, and run the differential oracle. Mutants that reach
/// fault-decision branches or recovery phases no earlier case reached
/// join the corpus; failures are shrunk to minimal repros and written to
/// `tests/regressions/`.
fn cmd_fuzz(args: &[String]) -> i32 {
    let budget = parse_budget(flag_value(args, "--budget").unwrap_or("60s"));
    let seed: u64 = flag_value(args, "--seed").map_or(0xf022, |s| s.parse().expect("--seed N"));
    let max_cases: usize =
        flag_value(args, "--cases").map_or(usize::MAX, |s| s.parse().expect("--cases K"));

    // The oracle converts target panics into outcomes; silence the
    // default hook so modelled crashes don't spam the fuzz log.
    std::panic::set_hook(Box::new(|_| {}));

    let mut rng = StdRng::seed_from_u64(seed);
    let mut corpus: Vec<FuzzCase> = vec![FuzzCase::base(seed)];
    let mut seen = BTreeSet::new();
    let mut failing: Vec<(String, FuzzCase)> = Vec::new();
    let deadline = Instant::now() + budget;
    let mut iterations = 0usize;

    // Charge the coverage map with the corpus seed.
    seen.extend(run_oracle(&corpus[0]).coverage);

    while Instant::now() < deadline && iterations < max_cases {
        iterations += 1;
        // Newest-biased parent selection: recent corpus entries carry the
        // rarest coverage, so they breed first.
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = corpus.len() - 1 - ((u * u * corpus.len() as f64) as usize).min(corpus.len() - 1);
        let mut mutant = corpus[idx].clone();
        for _ in 0..rng.gen_range(1u32..=3) {
            mutant.mutate(&mut rng);
        }

        let outcome = run_oracle(&mutant);
        let new_features: Vec<String> = outcome
            .coverage
            .iter()
            .filter(|f| !seen.contains(*f))
            .cloned()
            .collect();

        if !outcome.failures.is_empty() {
            let check = outcome.failures[0].check.clone();
            if failing.iter().any(|(c, _)| *c == check) {
                continue; // one repro per distinct check is enough
            }
            println!(
                "[fuzz] iteration {iterations}: {} failure(s), first `{check}` — shrinking",
                outcome.failures.len()
            );
            for f in &outcome.failures {
                println!("[fuzz]   {}: {}", f.check, f.detail);
            }
            let minimal = shrink(mutant, &check);
            let text = minimal.to_text();
            let dir = regressions_dir();
            std::fs::create_dir_all(&dir).expect("create regressions dir");
            let path = dir.join(format!("fuzz-{:016x}.txt", fnv1a_str(&text)));
            std::fs::write(&path, &text).expect("write repro");
            println!(
                "[fuzz] minimal repro ({} lines) -> {}",
                text.lines().count(),
                path.display()
            );
            print!("{text}");
            failing.push((check, minimal));
            continue;
        }

        if !new_features.is_empty() {
            println!(
                "[fuzz] iteration {iterations}: +{} feature(s) ({}), corpus {}",
                new_features.len(),
                new_features.join(", "),
                corpus.len() + 1
            );
            seen.extend(new_features);
            corpus.push(mutant);
        }
    }

    println!(
        "[fuzz] done: {iterations} iterations, corpus {}, {} coverage features, {} failing check(s)",
        corpus.len(),
        seen.len(),
        failing.len()
    );
    for f in &seen {
        println!("[fuzz]   covered {f}");
    }
    if failing.is_empty() {
        0
    } else {
        1
    }
}

/// Re-run the oracle on a saved repro; exits 0 only if it passes.
fn cmd_replay(path: Option<&str>) -> i32 {
    let Some(path) = path else {
        eprintln!("usage: scc-verify replay <repro.txt>");
        return 2;
    };
    let text = std::fs::read_to_string(path).expect("read repro file");
    let case = match FuzzCase::from_text(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 2;
        }
    };
    let outcome = run_oracle(&case);
    if outcome.failures.is_empty() {
        println!("{path}: ok ({} coverage features)", outcome.coverage.len());
        0
    } else {
        for f in &outcome.failures {
            eprintln!("{path}: {}: {}", f.check, f.detail);
        }
        1
    }
}
