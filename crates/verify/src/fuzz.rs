//! Coverage-guided fault-space fuzzing.
//!
//! A [`FuzzCase`] is a complete [`RunConfig`] with a ≤ 10-line text form
//! (the repro format under `tests/regressions/`). The fuzzer mutates the
//! fault plan, kill schedule and tuning of corpus cases, runs each mutant
//! through the differential oracle ([`run_oracle`]), and keeps mutants
//! whose [`coverage`] reaches fault-decision branches or recovery phases
//! no earlier case reached. Failures are [`shrink`]-minimised while
//! preserving the failing check's name.

use rand::rngs::StdRng;
use rand::Rng;
use scc_core::runner::sim::SimRunner;
use scc_core::spec::{
    Arrangement, FaultSpec, Fidelity, FuseChoice, GovernorTuning, KernelChoice, KillSpec,
    PowerConfig, RendererMode, RunConfig, Runtime, StallSpec, TaskTuning, WavefrontSpec, Workload,
};
use scc_core::viz::frame_checksum;
use scc_core::{Backend, BackendReport, GovernorAction};
use scc_serve::{serve, ServeConfig, TenantSpec};
use scc_sim::fault::{FaultConfig, FaultPlan, MessageOutcome};
use scc_sim::{CoreId, FreqMHz, SimTime};
use std::collections::BTreeSet;

/// How far apart the frame-major simulator and the DES executor are
/// allowed to drift on end-to-end virtual time. This skew, *plus one
/// frame period* for per-stage drain order, defines the end-of-run
/// *boundary window*: a kill scheduled inside it may be observed by one
/// executor only (the other's last strip has already left the killed
/// core), so recovery counts are compared modulo such boundary kills.
/// The extra frame period is the honest scale of the drain skew — the
/// frame-major simulator walks all stages of frame `k` before frame
/// `k+1`, while the DES pipelines them, so the time the *last* frame
/// departs an individual stage can differ between executors by up to a
/// frame period even when end-to-end times agree exactly.
pub const DES_TIMING_TOLERANCE: f64 = 0.05;

/// One point in the fault space: a full run configuration, optionally
/// extended with a serving-frontend workload (two tenants driving the
/// same pipeline geometry through `scc-serve`).
#[derive(Debug, Clone)]
pub struct FuzzCase {
    pub cfg: RunConfig,
    pub serve: Option<ServeFuzz>,
}

/// The serving knobs the fuzzer mutates: workload shape (session counts,
/// per-session frames), tenant weights, cache geometry (capacity 0 =
/// disabled, 1 bucket = every key collides) and the admission thresholds
/// that trigger shedding. Everything else in [`ServeConfig`] is pinned
/// so repros stay one text line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeFuzz {
    pub sessions_a: u32,
    pub sessions_b: u32,
    pub weight_a: u32,
    pub weight_b: u32,
    pub frames: u32,
    pub cache_capacity: u32,
    pub cache_buckets: u32,
    pub pool: u32,
    pub queue_depth: u32,
    pub max_sessions: u32,
}

impl Default for ServeFuzz {
    fn default() -> ServeFuzz {
        ServeFuzz {
            sessions_a: 4,
            sessions_b: 2,
            weight_a: 2,
            weight_b: 1,
            frames: 2,
            cache_capacity: 16,
            cache_buckets: 8,
            pool: 2,
            queue_depth: 4,
            max_sessions: 8,
        }
    }
}

/// One oracle failure: the stable name of the check that tripped plus a
/// human-readable detail line.
#[derive(Debug, Clone)]
pub struct Failure {
    pub check: String,
    pub detail: String,
}

/// Everything one oracle execution produced.
#[derive(Debug, Clone)]
pub struct Outcome {
    pub failures: Vec<Failure>,
    pub coverage: BTreeSet<String>,
}

fn mode_tag(m: RendererMode) -> &'static str {
    match m {
        RendererMode::SingleRenderer => "single",
        RendererMode::PerPipelineRenderer => "perpipe",
        RendererMode::McpcRenderer => "mcpc",
    }
}

fn mode_from_tag(s: &str) -> Result<RendererMode, String> {
    match s {
        "single" => Ok(RendererMode::SingleRenderer),
        "perpipe" => Ok(RendererMode::PerPipelineRenderer),
        "mcpc" => Ok(RendererMode::McpcRenderer),
        _ => Err(format!("unknown renderer mode `{s}`")),
    }
}

fn arr_from_tag(s: &str) -> Result<Arrangement, String> {
    match s {
        "unordered" => Ok(Arrangement::Unordered),
        "ordered" => Ok(Arrangement::Ordered),
        "flipped" => Ok(Arrangement::Flipped),
        _ => Err(format!("unknown arrangement `{s}`")),
    }
}

impl FuzzCase {
    /// A small, clean starting point (the fuzzer's corpus seed).
    pub fn base(seed: u64) -> FuzzCase {
        FuzzCase {
            cfg: RunConfig::builder()
                .pipelines(2)
                .size(48, 32)
                .frames(3)
                .seed(seed)
                .fidelity(Fidelity::Full)
                .build()
                .expect("valid config"),
            serve: None,
        }
    }

    /// The serving config a case's `serve` knobs describe: two tenants on
    /// the case's pipeline geometry, clean transport (the serving engine
    /// models admission and caching, not the fault plane), small pinned
    /// pose span so overlapping walkthroughs exercise the cache.
    pub fn serve_config(&self) -> Option<ServeConfig> {
        let s = self.serve.as_ref()?;
        let mut run = self.cfg.clone();
        run.fault = None;
        run.trace = false;
        run.verify = false;
        Some(ServeConfig {
            run,
            tenants: vec![
                TenantSpec::new("a", s.weight_a, s.sessions_a, s.frames),
                TenantSpec::new("b", s.weight_b, s.sessions_b, s.frames),
            ],
            shards: 2,
            pool: s.pool,
            cache_capacity: s.cache_capacity,
            cache_buckets: s.cache_buckets,
            queue_depth: s.queue_depth,
            max_sessions: s.max_sessions,
            batch_frames: 3,
            pose_span: 3,
            arrival_burst: 4,
            seed: self.cfg.seed,
            keep_films: false,
        })
    }

    /// Serialise to the ≤ 10-line repro format. Floats use Rust's
    /// shortest round-trip `Display`, so `from_text` is lossless. The
    /// scheduler fields (`auto=1` on the run line, a `weights` line)
    /// and the kernel/fusion choices are emitted only when set / away
    /// from `Auto`, so older repros stay valid.
    pub fn to_text(&self) -> String {
        let c = &self.cfg;
        let mut extras = String::new();
        if c.auto_place {
            extras.push_str(" auto=1");
        }
        if c.tuning.kernel != KernelChoice::Auto {
            extras.push_str(&format!(" kernel={}", c.tuning.kernel.name()));
        }
        if c.tuning.fuse != FuseChoice::Auto {
            extras.push_str(&format!(" fuse={}", c.tuning.fuse.name()));
        }
        // The task runtime and its knobs ride the run line only when the
        // case left the static pipeline, so pre-runtime repros parse
        // unchanged.
        if c.runtime != Runtime::Static {
            extras.push_str(&format!(
                " runtime={} qcap={} steal_us={} steal_retries={}",
                c.runtime.name(),
                c.task_tuning.queue_capacity,
                c.task_tuning.steal_timeout_us,
                c.task_tuning.steal_retries,
            ));
        }
        let mut out = format!(
            "run mode={} arr={} p={} w={} h={} f={} seed={:#x} fid={} threads={} pool={}{extras}\n",
            mode_tag(c.renderer),
            c.arrangement.name(),
            c.pipelines,
            c.width,
            c.height,
            c.frames,
            c.seed,
            match c.fidelity {
                Fidelity::Full => "full",
                Fidelity::TimingOnly => "timing",
            },
            c.tuning.kernel_threads,
            c.tuning.buffer_pool as u8,
        );
        if let Some(w) = &c.stage_weights {
            let list: Vec<String> = w.iter().map(f64::to_string).collect();
            out.push_str(&format!("weights w={}\n", list.join(",")));
        }
        if let Some(f) = &c.fault {
            out.push_str(&format!(
                "fault seed={:#x} drop={} corrupt={} delay={} max_delay_us={} links={} factor={} timeout_us={} retries={}\n",
                f.seed, f.drop_rate, f.corrupt_rate, f.delay_rate, f.max_delay_us,
                f.degraded_links, f.degrade_factor, f.timeout_us, f.retry_budget,
            ));
            out.push_str(&format!(
                "sup hb_us={} phi={} spares={} depth={}\n",
                f.heartbeat_period_us, f.phi_dead, f.max_spares, f.checkpoint_depth,
            ));
            for k in &f.kills {
                out.push_str(&format!(
                    "kill p={} s={} at_ms={}\n",
                    k.pipeline, k.stage, k.at_ms
                ));
            }
            if let Some(s) = &f.stall {
                out.push_str(&format!(
                    "stall p={} s={} at_ms={} for_ms={}\n",
                    s.pipeline, s.stage, s.at_ms, s.for_ms
                ));
            }
        }
        // The serving workload rides one optional line, so pre-serving
        // repros parse unchanged and the 10-line bound holds.
        // Power plane and workload ride optional lines (defaults are
        // omitted), so pre-power-plane repros parse unchanged.
        match &c.power {
            PowerConfig::Static(pairs) if pairs.is_empty() => {}
            PowerConfig::Static(pairs) => {
                let list: Vec<String> = pairs
                    .iter()
                    .map(|(core, f)| format!("{}:{}", core.raw(), f.mhz()))
                    .collect();
                out.push_str(&format!("power kind=static pairs={}\n", list.join(",")));
            }
            PowerConfig::Governed(t) => out.push_str(&format!(
                "power kind=governed epoch={} hyst={} bneck={} thr={} cap_w={}\n",
                t.epoch_frames,
                t.hysteresis_epochs,
                t.bottleneck_idle_frac,
                t.throttle_idle_frac,
                t.power_cap_watts,
            )),
        }
        if let Workload::Wavefront(w) = &c.workload {
            out.push_str(&format!(
                "workload kind=wavefront w={} h={} seeds={} waves={}\n",
                w.width, w.height, w.seeds, w.max_waves
            ));
        }
        if let Some(s) = &self.serve {
            out.push_str(&format!(
                "serve sa={} sb={} wa={} wb={} f={} cache={} buckets={} pool={} qd={} cap={}\n",
                s.sessions_a,
                s.sessions_b,
                s.weight_a,
                s.weight_b,
                s.frames,
                s.cache_capacity,
                s.cache_buckets,
                s.pool,
                s.queue_depth,
                s.max_sessions,
            ));
        }
        out
    }

    /// Parse the repro format back into a case.
    pub fn from_text(text: &str) -> Result<FuzzCase, String> {
        fn fields(line: &str) -> Result<Vec<(&str, &str)>, String> {
            line.split_whitespace()
                .skip(1)
                .map(|kv| {
                    kv.split_once('=')
                        .ok_or_else(|| format!("malformed field `{kv}`"))
                })
                .collect()
        }
        fn get<'a>(kvs: &[(&str, &'a str)], key: &str) -> Result<&'a str, String> {
            kvs.iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("missing field `{key}`"))
        }
        fn int(kvs: &[(&str, &str)], key: &str) -> Result<u64, String> {
            let v = get(kvs, key)?;
            let (src, radix) = match v.strip_prefix("0x") {
                Some(hex) => (hex, 16),
                None => (v, 10),
            };
            u64::from_str_radix(src, radix).map_err(|e| format!("{key}={v}: {e}"))
        }
        fn float(kvs: &[(&str, &str)], key: &str) -> Result<f64, String> {
            get(kvs, key)?.parse().map_err(|e| format!("{key}: {e}"))
        }

        let mut case = FuzzCase::base(0);
        let mut saw_run = false;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let kvs = fields(line)?;
            match line.split_whitespace().next().unwrap_or("") {
                "run" => {
                    saw_run = true;
                    let c = &mut case.cfg;
                    c.renderer = mode_from_tag(get(&kvs, "mode")?)?;
                    c.arrangement = arr_from_tag(get(&kvs, "arr")?)?;
                    c.pipelines = int(&kvs, "p")? as u32;
                    c.width = int(&kvs, "w")? as u32;
                    c.height = int(&kvs, "h")? as u32;
                    c.frames = int(&kvs, "f")?;
                    c.seed = int(&kvs, "seed")?;
                    c.fidelity = match get(&kvs, "fid")? {
                        "full" => Fidelity::Full,
                        "timing" => Fidelity::TimingOnly,
                        other => return Err(format!("unknown fidelity `{other}`")),
                    };
                    c.tuning.kernel_threads = int(&kvs, "threads")? as u32;
                    c.tuning.buffer_pool = int(&kvs, "pool")? != 0;
                    // Optional: absent in pre-scheduler repros.
                    c.auto_place = kvs.iter().any(|(k, _)| *k == "auto") && int(&kvs, "auto")? != 0;
                    // Optional: absent in pre-kernel-backend repros.
                    if kvs.iter().any(|(k, _)| *k == "kernel") {
                        c.tuning.kernel = match get(&kvs, "kernel")? {
                            "auto" => KernelChoice::Auto,
                            "scalar" => KernelChoice::Scalar,
                            "simd" => KernelChoice::Simd,
                            other => return Err(format!("unknown kernel `{other}`")),
                        };
                    }
                    if kvs.iter().any(|(k, _)| *k == "fuse") {
                        c.tuning.fuse = match get(&kvs, "fuse")? {
                            "auto" => FuseChoice::Auto,
                            "off" => FuseChoice::Off,
                            "on" => FuseChoice::On,
                            other => return Err(format!("unknown fuse `{other}`")),
                        };
                    }
                    // Optional: absent in pre-task-runtime repros.
                    if kvs.iter().any(|(k, _)| *k == "runtime") {
                        c.runtime = match get(&kvs, "runtime")? {
                            "static" => Runtime::Static,
                            "tasks" => Runtime::Tasks,
                            other => return Err(format!("unknown runtime `{other}`")),
                        };
                        c.task_tuning = TaskTuning {
                            queue_capacity: int(&kvs, "qcap")? as u32,
                            steal_timeout_us: int(&kvs, "steal_us")?,
                            steal_retries: int(&kvs, "steal_retries")? as u32,
                        };
                    }
                }
                "weights" => {
                    let list = get(&kvs, "w")?;
                    let w: Result<Vec<f64>, String> = list
                        .split(',')
                        .map(|v| v.parse().map_err(|e| format!("weights {v}: {e}")))
                        .collect();
                    case.cfg.stage_weights = Some(w?);
                }
                "fault" => {
                    let f = case.cfg.fault.get_or_insert_with(FaultSpec::default);
                    f.seed = int(&kvs, "seed")?;
                    f.drop_rate = float(&kvs, "drop")?;
                    f.corrupt_rate = float(&kvs, "corrupt")?;
                    f.delay_rate = float(&kvs, "delay")?;
                    f.max_delay_us = int(&kvs, "max_delay_us")?;
                    f.degraded_links = int(&kvs, "links")? as u32;
                    f.degrade_factor = float(&kvs, "factor")?;
                    f.timeout_us = int(&kvs, "timeout_us")?;
                    f.retry_budget = int(&kvs, "retries")? as u32;
                }
                "sup" => {
                    let f = case.cfg.fault.get_or_insert_with(FaultSpec::default);
                    f.heartbeat_period_us = int(&kvs, "hb_us")?;
                    f.phi_dead = float(&kvs, "phi")?;
                    f.max_spares = int(&kvs, "spares")? as u32;
                    f.checkpoint_depth = int(&kvs, "depth")? as u32;
                }
                "kill" => {
                    let f = case.cfg.fault.get_or_insert_with(FaultSpec::default);
                    f.kills.push(KillSpec {
                        pipeline: int(&kvs, "p")? as u32,
                        stage: int(&kvs, "s")? as u32,
                        at_ms: int(&kvs, "at_ms")?,
                    });
                }
                "stall" => {
                    let f = case.cfg.fault.get_or_insert_with(FaultSpec::default);
                    f.stall = Some(StallSpec {
                        pipeline: int(&kvs, "p")? as u32,
                        stage: int(&kvs, "s")? as u32,
                        at_ms: int(&kvs, "at_ms")?,
                        for_ms: int(&kvs, "for_ms")?,
                    });
                }
                "power" => match get(&kvs, "kind")? {
                    "static" => {
                        let pairs: Result<Vec<(CoreId, FreqMHz)>, String> = get(&kvs, "pairs")?
                            .split(',')
                            .map(|kv| {
                                let (core, mhz) = kv
                                    .split_once(':')
                                    .ok_or_else(|| format!("malformed power pair `{kv}`"))?;
                                let core: u8 =
                                    core.parse().map_err(|e| format!("power core {core}: {e}"))?;
                                let core = CoreId::try_new(core)
                                    .ok_or_else(|| format!("power core {core} out of range"))?;
                                let f = match mhz {
                                    "400" => FreqMHz::F400,
                                    "533" => FreqMHz::F533,
                                    "800" => FreqMHz::F800,
                                    other => return Err(format!("unknown frequency `{other}`")),
                                };
                                Ok((core, f))
                            })
                            .collect();
                        case.cfg.power = PowerConfig::Static(pairs?);
                    }
                    "governed" => {
                        case.cfg.power = PowerConfig::Governed(GovernorTuning {
                            epoch_frames: int(&kvs, "epoch")? as u32,
                            hysteresis_epochs: int(&kvs, "hyst")? as u32,
                            bottleneck_idle_frac: float(&kvs, "bneck")?,
                            throttle_idle_frac: float(&kvs, "thr")?,
                            power_cap_watts: float(&kvs, "cap_w")?,
                        });
                    }
                    other => return Err(format!("unknown power kind `{other}`")),
                },
                "workload" => match get(&kvs, "kind")? {
                    "wavefront" => {
                        case.cfg.workload = Workload::Wavefront(WavefrontSpec {
                            width: int(&kvs, "w")? as u32,
                            height: int(&kvs, "h")? as u32,
                            seeds: int(&kvs, "seeds")? as u32,
                            max_waves: int(&kvs, "waves")? as u32,
                        });
                    }
                    other => return Err(format!("unknown workload kind `{other}`")),
                },
                "serve" => {
                    case.serve = Some(ServeFuzz {
                        sessions_a: int(&kvs, "sa")? as u32,
                        sessions_b: int(&kvs, "sb")? as u32,
                        weight_a: int(&kvs, "wa")? as u32,
                        weight_b: int(&kvs, "wb")? as u32,
                        frames: int(&kvs, "f")? as u32,
                        cache_capacity: int(&kvs, "cache")? as u32,
                        cache_buckets: int(&kvs, "buckets")? as u32,
                        pool: int(&kvs, "pool")? as u32,
                        queue_depth: int(&kvs, "qd")? as u32,
                        max_sessions: int(&kvs, "cap")? as u32,
                    });
                }
                other => return Err(format!("unknown directive `{other}`")),
            }
        }
        if !saw_run {
            return Err("repro has no `run` line".into());
        }
        case.cfg
            .validate()
            .map_err(|e| format!("invalid repro: {e}"))?;
        if let Some(scfg) = case.serve_config() {
            scfg.validate().map_err(|e| format!("invalid repro: {e}"))?;
        }
        Ok(case)
    }

    /// Apply one random, validity-preserving mutation. Mutations that
    /// produce an invalid config are rolled back and retried (bounded).
    pub fn mutate(&mut self, rng: &mut StdRng) {
        for _ in 0..24 {
            let mut next = self.clone();
            next.mutate_once(rng);
            let serve_ok = next.serve_config().is_none_or(|s| s.validate().is_ok())
                && (next.cfg.workload.is_film() || next.serve.is_none());
            if next.cfg.validate().is_ok() && serve_ok {
                *self = next;
                return;
            }
        }
    }

    fn mutate_once(&mut self, rng: &mut StdRng) {
        let c = &mut self.cfg;
        match rng.gen_range(0u32..32) {
            0 => {
                c.renderer = [
                    RendererMode::SingleRenderer,
                    RendererMode::PerPipelineRenderer,
                    RendererMode::McpcRenderer,
                ][rng.gen_range(0usize..3)]
            }
            1 => {
                c.arrangement = [
                    Arrangement::Unordered,
                    Arrangement::Ordered,
                    Arrangement::Flipped,
                ][rng.gen_range(0usize..3)]
            }
            2 => c.pipelines = rng.gen_range(1u32..=4),
            3 => {
                let (w, h) = [(32u32, 24u32), (48, 32), (64, 48)][rng.gen_range(0usize..3)];
                c.width = w;
                c.height = h;
            }
            4 => c.frames = rng.gen_range(2u64..=5),
            5 => c.seed = rng.gen(),
            6 => {
                c.fidelity = if rng.gen() {
                    Fidelity::Full
                } else {
                    Fidelity::TimingOnly
                }
            }
            7 => {
                c.tuning.kernel_threads = rng.gen_range(1u32..=4);
                c.tuning.buffer_pool = rng.gen();
            }
            8 => c.fault = None,
            9 => {
                let f = c.fault.get_or_insert_with(FaultSpec::default);
                f.seed = rng.gen();
                f.drop_rate = [0.0, 0.05, 0.2][rng.gen_range(0usize..3)];
                f.corrupt_rate = [0.0, 0.05, 0.2][rng.gen_range(0usize..3)];
                f.delay_rate = [0.0, 0.1, 0.3][rng.gen_range(0usize..3)];
            }
            10 => {
                let f = c.fault.get_or_insert_with(FaultSpec::default);
                f.degraded_links = rng.gen_range(0u32..=4);
                f.degrade_factor = [0.25, 0.5, 1.0][rng.gen_range(0usize..3)];
            }
            11 => {
                let pipelines = c.pipelines;
                let f = c.fault.get_or_insert_with(FaultSpec::default);
                if f.kills.len() >= 3 {
                    f.kills.clear();
                }
                // Kill times span the whole walkthrough (a frame is
                // ~11 ms of virtual time at the fuzzing geometry), so
                // mutants reach early-, mid- and post-run kills.
                f.kills.push(KillSpec {
                    pipeline: rng.gen_range(0..pipelines),
                    stage: rng.gen_range(0u32..5),
                    at_ms: rng.gen_range(0u64..=40),
                });
                f.heartbeat_period_us = [1_000, 2_000, 5_000][rng.gen_range(0usize..3)];
                f.phi_dead = [2.0, 3.0][rng.gen_range(0usize..2)];
            }
            12 => {
                if let Some(f) = &mut c.fault {
                    f.kills.clear();
                }
            }
            13 => {
                let pipelines = c.pipelines;
                let f = c.fault.get_or_insert_with(FaultSpec::default);
                f.stall = Some(StallSpec {
                    pipeline: rng.gen_range(0..pipelines),
                    stage: rng.gen_range(0u32..5),
                    at_ms: rng.gen_range(0u64..=2),
                    for_ms: if rng.gen() {
                        rng.gen_range(1u64..=5)
                    } else {
                        u64::MAX
                    },
                });
            }
            14 => {
                if let Some(f) = &mut c.fault {
                    f.stall = None;
                }
            }
            15 => {
                let f = c.fault.get_or_insert_with(FaultSpec::default);
                f.max_spares = rng.gen_range(0u32..=2);
                f.retry_budget = rng.gen_range(0u32..=4);
                f.timeout_us = [200, 500, 1_000][rng.gen_range(0usize..3)];
                f.checkpoint_depth = rng.gen_range(1u32..=4);
            }
            16 => c.auto_place = !c.auto_place,
            19 => {
                c.tuning.kernel = [KernelChoice::Auto, KernelChoice::Scalar, KernelChoice::Simd]
                    [rng.gen_range(0usize..3)]
            }
            20 => {
                c.tuning.fuse =
                    [FuseChoice::Auto, FuseChoice::Off, FuseChoice::On][rng.gen_range(0usize..3)]
            }
            17 => {
                // Explicit scheduler weights from a palette spanning the
                // interesting regimes: flat (everything merges), spiky
                // (maximal replication), zero-heavy (degenerate).
                let palette = [0.0, 0.1, 1.0, 4.0, 250.0];
                c.stage_weights = Some((0..5).map(|_| palette[rng.gen_range(0usize..5)]).collect());
            }
            21 => {
                c.runtime = if rng.gen() {
                    Runtime::Tasks
                } else {
                    Runtime::Static
                };
            }
            22 => {
                // Task-runtime knob palette: a capacity of 1 forces
                // backpressure on every chain handoff (the
                // `task:queue-full` arm); the timeout/retry spread
                // exercises the steal ARQ's backoff schedule.
                c.runtime = Runtime::Tasks;
                c.task_tuning = TaskTuning {
                    queue_capacity: [1, 2, 8, 32][rng.gen_range(0usize..4)],
                    steal_timeout_us: [50, 200, 1_000][rng.gen_range(0usize..3)],
                    steal_retries: rng.gen_range(1u32..=4),
                };
            }
            23 => {
                // Chaos arm: a kill on top of a lossy message plane while
                // the task runtime is stealing — the `task:kill-midsteal`
                // and `task:steal-loss` labels in one mutant.
                let pipelines = c.pipelines;
                c.runtime = Runtime::Tasks;
                let f = c.fault.get_or_insert_with(FaultSpec::default);
                f.drop_rate = [0.05, 0.2][rng.gen_range(0usize..2)];
                f.kills.push(KillSpec {
                    pipeline: rng.gen_range(0..pipelines),
                    stage: rng.gen_range(0u32..5),
                    at_ms: rng.gen_range(0u64..=40),
                });
                if f.kills.len() > 3 {
                    f.kills.drain(..f.kills.len() - 3);
                }
            }
            24 => {
                // Serving workload shape: session counts and per-session
                // frame budgets, small enough that the double run (cache
                // on + off) stays cheap.
                let s = self.serve.get_or_insert_with(ServeFuzz::default);
                s.sessions_a = [1, 2, 4, 8][rng.gen_range(0usize..4)];
                s.sessions_b = [1, 2, 4][rng.gen_range(0usize..3)];
                s.frames = rng.gen_range(1u32..=3);
            }
            25 => {
                // Tenant weights: equal, skewed, and strongly skewed mixes
                // drive the WFQ allocator through its contended regimes.
                let s = self.serve.get_or_insert_with(ServeFuzz::default);
                s.weight_a = rng.gen_range(1u32..=4);
                s.weight_b = rng.gen_range(1u32..=2);
            }
            26 => {
                // Cache geometry: capacity 0 disables the cache, 1–2 force
                // eviction (`serve:cache-evict`); a single bucket forces a
                // collision on every probe.
                let s = self.serve.get_or_insert_with(ServeFuzz::default);
                s.cache_capacity = [0, 1, 2, 8, 64][rng.gen_range(0usize..5)];
                s.cache_buckets = [1, 2, 16][rng.gen_range(0usize..3)];
            }
            27 => {
                // Pool size and shed thresholds: a queue depth / session
                // cap of 1–2 against the burst size forces deterministic
                // load shedding (`serve:shed`).
                let s = self.serve.get_or_insert_with(ServeFuzz::default);
                s.pool = [1, 2, 4][rng.gen_range(0usize..3)];
                s.queue_depth = [1, 2, 8][rng.gen_range(0usize..3)];
                s.max_sessions = [2, 4, 16][rng.gen_range(0usize..3)];
            }
            28 => self.serve = None,
            29 => {
                // Governor tuning palette: small epochs make decisions
                // land inside short fuzz runs; a zero watt cap forces the
                // `dvfs:cap-block` arm.
                c.power = if rng.gen() {
                    PowerConfig::Governed(GovernorTuning {
                        epoch_frames: [1, 2, 4, 8][rng.gen_range(0usize..4)],
                        hysteresis_epochs: rng.gen_range(1u32..=2),
                        power_cap_watts: [0.0, 4.0, 8.0][rng.gen_range(0usize..3)],
                        ..GovernorTuning::default()
                    })
                } else {
                    PowerConfig::default()
                };
            }
            30 => {
                // Static splits: one raised and one throttled core drawn
                // from the filter band, mirroring the paper's hand tuning.
                let mut pairs = vec![(
                    CoreId::new(rng.gen_range(0u8..12) * 2),
                    [FreqMHz::F400, FreqMHz::F800][rng.gen_range(0usize..2)],
                )];
                if rng.gen() {
                    pairs.push((
                        CoreId::new(rng.gen_range(12u8..24) * 2),
                        [FreqMHz::F400, FreqMHz::F800][rng.gen_range(0usize..2)],
                    ));
                }
                c.power = PowerConfig::Static(pairs);
            }
            31 => {
                // The wavefront workload excludes the fault plane and the
                // task runtime (validate enforces it), so this arm clears
                // both rather than burning its mutation on a rollback.
                if c.workload.is_film() {
                    c.fault = None;
                    c.runtime = Runtime::Static;
                    self.serve = None;
                    c.workload = Workload::Wavefront(WavefrontSpec {
                        width: [32, 64, 96][rng.gen_range(0usize..3)],
                        height: [32, 64][rng.gen_range(0usize..2)],
                        seeds: rng.gen_range(1u32..=5),
                        max_waves: [0, 4, 16][rng.gen_range(0usize..3)],
                    });
                } else {
                    c.workload = Workload::Film;
                }
            }
            _ => c.stage_weights = None,
        }
        // Drop fault sub-specs that point past a shrunken pipeline count.
        if let Some(f) = &mut c.fault {
            let p = c.pipelines;
            f.kills.retain(|k| k.pipeline < p);
            if f.stall.is_some_and(|s| s.pipeline >= p) {
                f.stall = None;
            }
        }
    }
}

/// Static + dynamic coverage features of one case/report pair. Static
/// features come from probing the deterministic [`FaultPlan`] decision
/// surface (which branches *will* fire); dynamic ones from what the run
/// actually did (degradations, recoveries, replay).
pub fn coverage(case: &FuzzCase, outcome_events: &CoverageEvents) -> BTreeSet<String> {
    let c = &case.cfg;
    let mut set = BTreeSet::new();
    set.insert(format!("mode:{}", mode_tag(c.renderer)));
    set.insert(format!("arr:{}", c.arrangement.name()));
    set.insert(format!("p:{}", c.pipelines));
    set.insert(format!(
        "fid:{}",
        if c.fidelity == Fidelity::Full {
            "full"
        } else {
            "timing"
        }
    ));
    if c.tuning.kernel_threads > 1 {
        set.insert("tuning:threads".into());
    }
    if !c.tuning.buffer_pool {
        set.insert("tuning:no-pool".into());
    }
    if c.tuning.kernel != KernelChoice::Auto {
        set.insert(format!("kernel:{}", c.tuning.kernel.name()));
    }
    if c.tuning.fuse != FuseChoice::Auto {
        set.insert(format!("fuse:{}", c.tuning.fuse.name()));
    }
    if c.auto_place {
        set.insert("place:auto".into());
        // Probe the scheduler's decision surface: which placement
        // shapes does this case actually reach?
        let auto = scc_core::auto_place(c);
        if auto.plan.groups.iter().any(|g| g.replicas > 1) {
            set.insert("place:replicated".into());
        }
        if auto.plan.groups.iter().any(|g| g.len > 1) {
            set.insert("place:merged".into());
        }
    }
    if c.stage_weights.is_some() {
        set.insert("weights:explicit".into());
    }
    match &c.power {
        PowerConfig::Static(pairs) if pairs.is_empty() => {}
        PowerConfig::Static(pairs) => {
            set.insert("dvfs:static".into());
            if pairs.iter().any(|(_, f)| *f == FreqMHz::F800) {
                set.insert("dvfs:static-raise".into());
            }
            if pairs.iter().any(|(_, f)| *f == FreqMHz::F400) {
                set.insert("dvfs:static-throttle".into());
            }
        }
        PowerConfig::Governed(t) => {
            set.insert("dvfs:governed".into());
            if t.power_cap_watts == 0.0 {
                set.insert("dvfs:zero-cap".into());
            }
        }
    }
    match &c.workload {
        Workload::Film => {}
        Workload::Generic(_) => {
            set.insert("workload:generic".into());
        }
        Workload::Wavefront(w) => {
            set.insert("workload:wavefront".into());
            if w.max_waves > 0 {
                set.insert("wavefront:capped".into());
            }
        }
    }
    if c.runtime == Runtime::Tasks {
        set.insert("runtime:tasks".into());
        if let Some(f) = &c.fault {
            // Steal-handshake legs (request/grant/claim/ack) traverse
            // the same lossy message plane as data, so any loss rate
            // reaches the ARQ path of the steal protocol.
            if f.drop_rate > 0.0 || f.corrupt_rate > 0.0 || f.delay_rate > 0.0 {
                set.insert("task:steal-loss".into());
            }
            // A kill can land between a steal grant and its claim-ack;
            // the fence must then reject the stale claim and re-queue.
            if !f.kills.is_empty() {
                set.insert("task:kill-midsteal".into());
            }
        }
    }
    if let Some(f) = &c.fault {
        if f.degraded_links > 0 && f.degrade_factor < 1.0 {
            set.insert("links:degraded".into());
        }
        if let Some(s) = &f.stall {
            set.insert(
                if s.for_ms == u64::MAX {
                    "stall:forever"
                } else {
                    "stall:transient"
                }
                .into(),
            );
        }
        set.insert(format!("kills:{}", f.kills.len()));
        if !f.kills.is_empty() {
            set.insert(
                if f.kills.len() as u32 <= f.max_spares {
                    "spares:enough"
                } else {
                    "spares:short"
                }
                .into(),
            );
        }
        // Probe the message-plane decision surface the way the runner
        // will query it (per from/to/seq/attempt), without running.
        let plan = FaultPlan::new(FaultConfig {
            seed: f.seed,
            drop_rate: f.drop_rate,
            corrupt_rate: f.corrupt_rate,
            delay_rate: f.delay_rate,
            max_delay: SimTime::from_us(f.max_delay_us),
            ..FaultConfig::default()
        });
        for from in 0..4u64 {
            for to in 0..4u64 {
                for seq in 0..4u64 {
                    let mut first = None;
                    for attempt in 0..=f.retry_budget.min(3) {
                        let o = plan.message_outcome(from, to, seq, attempt);
                        match o {
                            MessageOutcome::Drop => {
                                set.insert("msg:drop".into());
                            }
                            MessageOutcome::Corrupt { .. } => {
                                set.insert("msg:corrupt".into());
                            }
                            MessageOutcome::Delay(_) => {
                                set.insert("msg:delay".into());
                            }
                            MessageOutcome::Deliver => {
                                set.insert("msg:deliver".into());
                                if attempt > 0 && !matches!(first, Some(MessageOutcome::Deliver)) {
                                    set.insert("msg:deliver-after-retry".into());
                                }
                            }
                        }
                        if attempt == 0 {
                            first = Some(o);
                        }
                    }
                }
            }
        }
        if (0..64).any(|i| !plan.flit_delay(i).is_zero()) {
            set.insert("flit:delayed".into());
        }
    }
    if outcome_events.degradations > 0 {
        set.insert("event:degradation".into());
    }
    if outcome_events.recoveries > 0 {
        set.insert("event:recovery".into());
    }
    if outcome_events.frames_replayed > 0 {
        set.insert("event:replay".into());
    }
    if outcome_events.task_backpressure > 0 {
        set.insert("task:queue-full".into());
    }
    if outcome_events.task_steals > 0 {
        set.insert("task:steal".into());
    }
    if let Some(s) = &case.serve {
        set.insert("serve:on".into());
        if s.cache_capacity == 0 {
            set.insert("serve:cache-off".into());
        }
        if s.weight_a != s.weight_b {
            set.insert("serve:weighted".into());
        }
    }
    if outcome_events.dvfs_raises > 0 {
        set.insert("dvfs:raise".into());
    }
    if outcome_events.dvfs_throttles > 0 {
        set.insert("dvfs:throttle".into());
    }
    if outcome_events.dvfs_cap_blocks > 0 {
        set.insert("dvfs:cap-block".into());
    }
    if outcome_events.serve_sheds > 0 {
        set.insert("serve:shed".into());
    }
    if outcome_events.serve_cache_hits > 0 {
        set.insert("serve:cache-hit".into());
    }
    if outcome_events.serve_cache_evictions > 0 {
        set.insert("serve:cache-evict".into());
    }
    set
}

/// The run facts [`coverage`] folds in.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoverageEvents {
    pub degradations: usize,
    pub recoveries: usize,
    pub frames_replayed: u32,
    /// Backpressure stalls the task runtime's bounded deques recorded.
    pub task_backpressure: u64,
    /// Successful steals the task runtime completed.
    pub task_steals: u64,
    /// Sessions the serving frontend shed (admission control fired).
    pub serve_sheds: u64,
    /// Strip-cache hits the serving frontend recorded.
    pub serve_cache_hits: u64,
    /// Strip-cache evictions the serving frontend recorded.
    pub serve_cache_evictions: u64,
    /// Frequency raises the governor applied.
    pub dvfs_raises: u64,
    /// Island throttles the governor applied.
    pub dvfs_throttles: u64,
    /// Raises the governor wanted but the power cap rejected.
    pub dvfs_cap_blocks: u64,
}

/// Is this configuration inside the DES validator's supported envelope?
/// The static pipeline's cross-validator covers single-renderer,
/// kills-only fault plans with enough spares; the task runtime runs the
/// same engine under both backends (DES-flavored schedule), so it covers
/// every renderer mode, kills without spares, and lossy transport —
/// stalls stay out for both.
fn des_eligible(cfg: &RunConfig) -> bool {
    if cfg.runtime == Runtime::Tasks {
        return cfg.fault.as_ref().is_none_or(|f| f.stall.is_none());
    }
    if cfg.renderer != RendererMode::SingleRenderer {
        return false;
    }
    // Governed power over an auto-placed graph sits outside the film
    // cross-validator's envelope: replicated/merged groups give the
    // frame-major and pipelined executors structurally different idle
    // profiles, so near a governor threshold the two can legitimately
    // pick different moves. Default-placement governed runs stay in —
    // their decision traces must match epoch for epoch.
    if matches!(cfg.power, PowerConfig::Governed(_)) && cfg.auto_place {
        return false;
    }
    match &cfg.fault {
        None => true,
        Some(f) => {
            f.stall.is_none()
                && f.drop_rate == 0.0
                && f.corrupt_rate == 0.0
                && f.delay_rate == 0.0
                && f.degraded_links == 0
                && f.kills.len() as u32 <= f.max_spares
        }
    }
}

/// Run one case through every oracle that applies:
///
/// 1. the frame-major simulator with the full invariant catalogue
///    applied to its report (collected, not panicking);
/// 2. the film oracle — `Full`-fidelity output frames must match the
///    sequential reference bit for bit, faults or no faults;
/// 3. the DES differential — when the config is inside the DES envelope,
///    walkthrough timing (clean runs, ±[`DES_TIMING_TOLERANCE`]), the
///    recovery timeline and the output film must agree between the two
///    executors. Kills inside the end-of-run boundary window (see
///    [`DES_TIMING_TOLERANCE`]) are excluded from the recovery-count
///    comparison and surface as `replay:boundary-kill` coverage.
pub fn run_oracle(case: &FuzzCase) -> Outcome {
    if !case.cfg.workload.is_film() {
        return run_workload_oracle(case);
    }
    let mut failures = Vec::new();

    let mut sim_cfg = case.cfg.clone();
    sim_cfg.trace = true; // the trace invariants need spans
    sim_cfg.verify = false; // collect violations instead of panicking
    let report = match run_caught(|| SimRunner::new(sim_cfg.clone(), crate::verify_scene()).run()) {
        Ok(r) => r,
        Err(msg) if msg.contains("no surviving pipeline") => {
            // Every lane dead is a *modelled* fatal outcome (the sim
            // documents the panic), so it counts as coverage, not as a
            // conformance failure.
            let mut cov = coverage(case, &CoverageEvents::default());
            cov.insert("event:total-loss".into());
            return Outcome {
                failures: Vec::new(),
                coverage: cov,
            };
        }
        Err(msg) => {
            return Outcome {
                failures: vec![Failure {
                    check: "panic".into(),
                    detail: msg,
                }],
                coverage: coverage(case, &CoverageEvents::default()),
            };
        }
    };

    for v in scc_core::invariant::check_report(&report) {
        failures.push(Failure {
            check: v.check.to_string(),
            detail: v.detail,
        });
    }

    if case.cfg.fidelity == Fidelity::Full {
        let reference = scc_core::reference::reference_frames(&case.cfg, crate::verify_scene());
        match &report.outputs {
            Some(frames) if frames.len() == reference.len() => {
                for (i, (got, want)) in frames.iter().zip(&reference).enumerate() {
                    let (g, w) = (frame_checksum(got), frame_checksum(want));
                    if g != w {
                        failures.push(Failure {
                            check: "film-divergence".into(),
                            detail: format!("frame {i}: sim {g:016x} != reference {w:016x}"),
                        });
                        break;
                    }
                }
            }
            Some(frames) => failures.push(Failure {
                check: "film-divergence".into(),
                detail: format!(
                    "sim delivered {} frames, reference {}",
                    frames.len(),
                    reference.len()
                ),
            }),
            None => failures.push(Failure {
                check: "film-divergence".into(),
                detail: "full fidelity but no output frames".into(),
            }),
        }
    }

    let mut boundary_cov: Option<String> = None;
    if des_eligible(&case.cfg) {
        let mut des_cfg = case.cfg.clone();
        des_cfg.trace = false;
        des_cfg.verify = false;
        let des = match run_caught(|| scc_core::run_des(&des_cfg, crate::verify_scene())) {
            Ok(d) => d,
            Err(msg) => {
                failures.push(Failure {
                    check: "panic".into(),
                    detail: format!("DES executor panicked: {msg}"),
                });
                let events = CoverageEvents {
                    degradations: report.degradations.len(),
                    recoveries: report.recoveries.len(),
                    frames_replayed: report.recoveries.iter().map(|r| r.frames_replayed).sum(),
                    task_backpressure: report.task_stats.map_or(0, |t| t.backpressure_stalls),
                    task_steals: report.task_stats.map_or(0, |t| t.steals),
                    ..CoverageEvents::default()
                };
                return Outcome {
                    failures,
                    coverage: coverage(case, &events),
                };
            }
        };
        // The strict timing bound binds uniform-frequency runs only: a
        // governed run changes frequency mid-flight, and the frame-major
        // and pipelined executors overlap those changes with idle time
        // differently, so end-to-end skew can legitimately exceed the
        // drain-order tolerance. The governed cross-backend instrument is
        // the decision trace, which must match epoch for epoch.
        let uniform_power = matches!(&case.cfg.power, PowerConfig::Static(v) if v.is_empty());
        if case.cfg.fault.is_none() && uniform_power {
            let dev = (des.total_secs - report.total_secs).abs() / report.total_secs;
            if dev > DES_TIMING_TOLERANCE {
                failures.push(Failure {
                    check: "differential-timing".into(),
                    detail: format!(
                        "sim {:.6}s vs DES {:.6}s ({:.1}% apart)",
                        report.total_secs,
                        des.total_secs,
                        dev * 100.0
                    ),
                });
            }
        }
        if matches!(&case.cfg.power, PowerConfig::Governed(_))
            && report.dvfs_decisions != des.dvfs_decisions
        {
            failures.push(Failure {
                check: "dvfs-parity".into(),
                detail: format!(
                    "sim made {} decision(s), DES {} — traces differ",
                    report.dvfs_decisions.len(),
                    des.dvfs_decisions.len()
                ),
            });
        }
        // Boundary-kill tolerance: sim and DES agree on end-to-end time
        // only to ±DES_TIMING_TOLERANCE, and within the *last frame's*
        // transit of the pipeline the executors additionally disagree
        // about per-stage drain order (the frame-major sim walks every
        // stage of frame k before frame k+1; the DES pipelines them).
        // A kill scheduled inside that window of the earlier finisher's
        // end is observable by one executor and past the other's last
        // strip for the killed stage. Its recovery count has no
        // well-defined cross-executor answer; the oracle records the
        // boundary as coverage instead of reporting divergence.
        let boundary_kills = case.cfg.fault.as_ref().map_or(0, |f| {
            let min_total = report.total_secs.min(des.total_secs);
            // Frames interleave across pipelines, so the drain cadence a
            // killed stage sees is its *lane's* frame count: with p
            // lanes, a lane turns over every ceil(f/p)-th of the run.
            let lane_frames = case
                .cfg
                .frames
                .div_ceil(u64::from(case.cfg.pipelines.max(1)));
            let frame_period = min_total / lane_frames.max(1) as f64;
            let horizon = min_total * (1.0 - DES_TIMING_TOLERANCE) - frame_period;
            f.kills
                .iter()
                .filter(|k| k.at_ms as f64 / 1e3 >= horizon)
                .count()
        });
        if boundary_kills > 0 {
            boundary_cov = Some("replay:boundary-kill".to_string());
        }
        // Under the task runtime the two backends run differently
        // flavored schedules, so whether a kill is observed with chains
        // still queued (a fence records a recovery) or caught at handoff
        // time and re-routed (no event) — and how much in-flight work a
        // fence catches — are both legitimately schedule-dependent. The
        // cross-backend instruments there are the film and the conserved
        // task ledger; the replay-count comparison only binds the static
        // pipeline, whose recovery schedule is deterministic.
        if case.cfg.runtime != Runtime::Static {
            // fallthrough to the film comparison below
        } else if des.recoveries.len() != report.recoveries.len() {
            let diff = report.recoveries.len().abs_diff(des.recoveries.len());
            if diff > boundary_kills {
                failures.push(Failure {
                    check: "differential-replay".into(),
                    detail: format!(
                        "sim recovered {} times, DES {} ({} boundary kill(s) tolerated)",
                        report.recoveries.len(),
                        des.recoveries.len(),
                        boundary_kills
                    ),
                });
            }
        } else if boundary_kills == 0 {
            for (s, d) in report.recoveries.iter().zip(&des.recoveries) {
                if s.frames_replayed != d.frames_replayed {
                    failures.push(Failure {
                        check: "differential-replay".into(),
                        detail: format!(
                            "frame {}: sim replayed {} frames, DES {}",
                            s.frame, s.frames_replayed, d.frames_replayed
                        ),
                    });
                    break;
                }
            }
        }
        if case.cfg.fidelity == Fidelity::Full {
            if let (Some(a), Some(b)) = (&report.outputs, &des.frames) {
                let fa: Vec<u64> = a.iter().map(frame_checksum).collect();
                let fb: Vec<u64> = b.iter().map(frame_checksum).collect();
                if fa != fb {
                    failures.push(Failure {
                        check: "differential-film".into(),
                        detail: "sim and DES output films differ".into(),
                    });
                }
            }
        }
    }

    // Serving oracle: when the case carries a serving workload, the
    // frontend must (a) keep the exactly-once session ledger balanced,
    // (b) be *semantically transparent* about its strip cache — the film
    // fingerprint and frame count with the cache on must equal a second
    // run with the cache disabled — and (c) never shed silently (counter
    // and event log agree). The decisions are cache-independent by
    // construction, so this is exact, not statistical.
    let (mut serve_sheds, mut serve_hits, mut serve_evicts) = (0u64, 0u64, 0u64);
    if let Some(scfg) = case.serve_config() {
        match run_caught(|| serve(&scfg, &crate::verify_scene())) {
            Ok(on) => {
                let r = &on.report;
                for v in scc_core::check_session_ledger(r.admitted, r.completed, r.shed) {
                    failures.push(Failure {
                        check: v.check.to_string(),
                        detail: v.detail,
                    });
                }
                if r.shed != r.shed_events.len() as u64 {
                    failures.push(Failure {
                        check: "serve-silent-shed".into(),
                        detail: format!(
                            "shed counter {} but {} shed event(s) recorded",
                            r.shed,
                            r.shed_events.len()
                        ),
                    });
                }
                let mut off_cfg = scfg.clone();
                off_cfg.cache_capacity = 0;
                match run_caught(|| serve(&off_cfg, &crate::verify_scene())) {
                    Ok(off) => {
                        if r.film_hash != off.report.film_hash
                            || r.frames_served != off.report.frames_served
                        {
                            failures.push(Failure {
                                check: "serve-cache-transparency".into(),
                                detail: format!(
                                    "cache on: film {:016x} / {} frames, \
                                     cache off: film {:016x} / {} frames",
                                    r.film_hash,
                                    r.frames_served,
                                    off.report.film_hash,
                                    off.report.frames_served
                                ),
                            });
                        }
                    }
                    Err(msg) => failures.push(Failure {
                        check: "panic".into(),
                        detail: format!("serving engine panicked (cache off): {msg}"),
                    }),
                }
                serve_sheds = r.shed;
                serve_hits = r.cache.hits;
                serve_evicts = r.cache.evictions;
            }
            Err(msg) => failures.push(Failure {
                check: "panic".into(),
                detail: format!("serving engine panicked: {msg}"),
            }),
        }
    }

    let (dvfs_raises, dvfs_throttles, dvfs_cap_blocks) = dvfs_counts(&report.dvfs_decisions);
    let events = CoverageEvents {
        degradations: report.degradations.len(),
        recoveries: report.recoveries.len(),
        frames_replayed: report.recoveries.iter().map(|r| r.frames_replayed).sum(),
        task_backpressure: report.task_stats.map_or(0, |t| t.backpressure_stalls),
        task_steals: report.task_stats.map_or(0, |t| t.steals),
        serve_sheds,
        serve_cache_hits: serve_hits,
        serve_cache_evictions: serve_evicts,
        dvfs_raises,
        dvfs_throttles,
        dvfs_cap_blocks,
    };
    let mut cov = coverage(case, &events);
    cov.extend(boundary_cov);
    Outcome {
        failures,
        coverage: cov,
    }
}

fn dvfs_counts(decisions: &[scc_core::GovernorDecision]) -> (u64, u64, u64) {
    let mut raises = 0;
    let mut throttles = 0;
    let mut blocks = 0;
    for d in decisions {
        match d.action {
            GovernorAction::Raise { .. } => raises += 1,
            GovernorAction::Throttle { .. } => throttles += 1,
            GovernorAction::CapBlocked { .. } => blocks += 1,
            GovernorAction::Hold => {}
        }
    }
    (raises, throttles, blocks)
}

/// The oracle for spec-driven (non-film) workloads: the item-major
/// simulator and the DES executor run the same resolved chain, so their
/// output digests must be bit-equal and their virtual times within
/// [`DES_TIMING_TOLERANCE`]; a governed run must additionally produce an
/// identical decision trace on both backends and the same output digest
/// as an ungoverned run — the governor moves schedules, never bytes.
fn run_workload_oracle(case: &FuzzCase) -> Outcome {
    let mut failures = Vec::new();
    let mut cfg = case.cfg.clone();
    cfg.trace = false;
    cfg.verify = false;

    let generic = |backend: Backend| -> Result<scc_core::GenericReport, String> {
        run_caught(|| scc_core::run(&cfg, backend)).map(|out| match out.report {
            BackendReport::Generic(r) => r,
            _ => unreachable!("workload runs return the generic report"),
        })
    };
    let (sim, des) = match (generic(Backend::Sim), generic(Backend::Des)) {
        (Ok(s), Ok(d)) => (s, d),
        (Err(msg), _) | (_, Err(msg)) => {
            return Outcome {
                failures: vec![Failure {
                    check: "panic".into(),
                    detail: msg,
                }],
                coverage: coverage(case, &CoverageEvents::default()),
            };
        }
    };

    for r in [&sim, &des] {
        for v in scc_core::check_generic_report(r) {
            failures.push(Failure {
                check: v.check.to_string(),
                detail: v.detail,
            });
        }
    }
    if sim.output_digest != des.output_digest {
        failures.push(Failure {
            check: "workload-digest-divergence".into(),
            detail: format!(
                "sim digest {:016x} != DES digest {:016x}",
                sim.output_digest, des.output_digest
            ),
        });
    }
    let dev = (des.total_secs - sim.total_secs).abs() / sim.total_secs;
    if dev > DES_TIMING_TOLERANCE {
        failures.push(Failure {
            check: "differential-timing".into(),
            detail: format!(
                "sim {:.6}s vs DES {:.6}s ({:.1}% apart)",
                sim.total_secs,
                des.total_secs,
                dev * 100.0
            ),
        });
    }
    if matches!(cfg.power, PowerConfig::Governed(_)) {
        if sim.dvfs_decisions != des.dvfs_decisions {
            failures.push(Failure {
                check: "dvfs-parity".into(),
                detail: format!(
                    "sim made {} decision(s), DES {} — traces differ",
                    sim.dvfs_decisions.len(),
                    des.dvfs_decisions.len()
                ),
            });
        }
        let mut ungoverned = cfg.clone();
        ungoverned.power = PowerConfig::default();
        match run_caught(|| scc_core::run(&ungoverned, Backend::Sim)) {
            Ok(out) => {
                let BackendReport::Generic(r) = out.report else {
                    unreachable!("workload runs return the generic report")
                };
                if r.output_digest != sim.output_digest {
                    failures.push(Failure {
                        check: "dvfs-output-drift".into(),
                        detail: format!(
                            "governed digest {:016x} != static digest {:016x}",
                            sim.output_digest, r.output_digest
                        ),
                    });
                }
            }
            Err(msg) => failures.push(Failure {
                check: "panic".into(),
                detail: format!("ungoverned workload run panicked: {msg}"),
            }),
        }
    }

    let (dvfs_raises, dvfs_throttles, dvfs_cap_blocks) = dvfs_counts(&sim.dvfs_decisions);
    let events = CoverageEvents {
        dvfs_raises,
        dvfs_throttles,
        dvfs_cap_blocks,
        ..CoverageEvents::default()
    };
    Outcome {
        failures,
        coverage: coverage(case, &events),
    }
}

/// Run a runner call, converting a panic into its message. Keeps one bad
/// mutant from killing the whole fuzzing campaign.
fn run_caught<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|e| {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".into())
    })
}

/// Does the case still fail with the same check name?
fn still_fails(case: &FuzzCase, check: &str) -> bool {
    case.cfg.validate().is_ok()
        && case.serve_config().is_none_or(|s| s.validate().is_ok())
        && run_oracle(case).failures.iter().any(|f| f.check == check)
}

/// Complexity score the shrinker minimises. A candidate is only accepted
/// when this strictly decreases, so the greedy loop cannot oscillate
/// between candidates that merely *change* the case.
fn cost(case: &FuzzCase) -> u64 {
    let c = &case.cfg;
    let mut k = 0u64;
    if let Some(f) = &c.fault {
        k += 1_000;
        k += 500 * f.kills.len() as u64;
        if f.stall.is_some() {
            k += 500;
        }
        if f.drop_rate > 0.0 || f.corrupt_rate > 0.0 || f.delay_rate > 0.0 {
            k += 100;
        }
        if f.degraded_links > 0 {
            k += 100;
        }
    }
    k += c.pipelines as u64 * 50;
    k += c.frames * 10;
    k += (c.width as u64 * c.height as u64) / 64;
    if c.renderer != RendererMode::SingleRenderer {
        k += 25;
    }
    if c.arrangement != Arrangement::Unordered {
        k += 5;
    }
    if c.tuning.kernel_threads != 1 || !c.tuning.buffer_pool {
        k += 5;
    }
    if c.tuning.kernel != KernelChoice::Auto || c.tuning.fuse != FuseChoice::Auto {
        k += 5;
    }
    if c.auto_place {
        k += 50;
    }
    if c.runtime != Runtime::Static {
        k += 75;
    }
    if c.task_tuning != TaskTuning::default() {
        k += 5;
    }
    if c.stage_weights.is_some() {
        k += 25;
    }
    if let Some(s) = &case.serve {
        k += 200;
        k += u64::from(s.sessions_a + s.sessions_b) * 10;
        k += u64::from(s.frames) * 5;
        if s.cache_capacity > 0 {
            k += 5;
        }
    }
    match &c.power {
        PowerConfig::Static(pairs) if pairs.is_empty() => {}
        PowerConfig::Static(pairs) => k += 50 + 10 * pairs.len() as u64,
        PowerConfig::Governed(_) => k += 100,
    }
    if !c.workload.is_film() {
        k += 150;
    }
    if c.seed != 1 {
        k += 1;
    }
    k
}

/// Shrink a failing case to a minimal repro that still trips the *same*
/// check. Candidate simplifications are applied greedily to fixpoint;
/// the result is what lands in `tests/regressions/`.
pub fn shrink(mut case: FuzzCase, check: &str) -> FuzzCase {
    let candidates: Vec<fn(&mut FuzzCase)> = vec![
        |t| t.cfg.fault = None,
        |t| {
            if let Some(f) = &mut t.cfg.fault {
                f.stall = None;
            }
        },
        |t| {
            if let Some(f) = &mut t.cfg.fault {
                f.kills.truncate(1);
            }
        },
        |t| {
            if let Some(f) = &mut t.cfg.fault {
                f.kills.clear();
            }
        },
        |t| {
            if let Some(f) = &mut t.cfg.fault {
                f.drop_rate = 0.0;
                f.corrupt_rate = 0.0;
                f.delay_rate = 0.0;
            }
        },
        |t| {
            if let Some(f) = &mut t.cfg.fault {
                f.degraded_links = 0;
                f.degrade_factor = 1.0;
            }
        },
        |t| t.cfg.pipelines = 1,
        |t| t.cfg.frames = 2,
        |t| {
            t.cfg.width = 32;
            t.cfg.height = 24;
        },
        |t| t.cfg.renderer = RendererMode::SingleRenderer,
        |t| t.cfg.arrangement = Arrangement::Unordered,
        |t| t.cfg.tuning = Default::default(),
        |t| {
            t.cfg.runtime = Runtime::Static;
            t.cfg.task_tuning = Default::default();
        },
        |t| t.cfg.task_tuning = Default::default(),
        |t| t.cfg.stage_weights = None,
        |t| {
            t.cfg.auto_place = false;
            t.cfg.stage_weights = None;
        },
        |t| t.serve = None,
        |t| {
            if let Some(s) = &mut t.serve {
                s.sessions_a = 1;
                s.sessions_b = 1;
                s.frames = 1;
            }
        },
        |t| t.cfg.power = PowerConfig::default(),
        |t| t.cfg.workload = Workload::Film,
        |t| t.cfg.seed = 1,
    ];
    loop {
        let mut improved = false;
        for candidate in &candidates {
            let mut trial = case.clone();
            candidate(&mut trial);
            if let Some(f) = &mut trial.cfg.fault {
                let p = trial.cfg.pipelines;
                f.kills.retain(|k| k.pipeline < p);
                if f.stall.is_some_and(|s| s.pipeline >= p) {
                    f.stall = None;
                }
            }
            if cost(&trial) < cost(&case) && still_fails(&trial, check) {
                case = trial;
                improved = true;
            }
        }
        if !improved {
            return case;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn repro_text_round_trips() {
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let mut case = FuzzCase::base(7);
        for _ in 0..40 {
            case.mutate(&mut rng);
            let text = case.to_text();
            assert!(
                text.lines().count() <= 10,
                "repro must stay within 10 lines:\n{text}"
            );
            let back = FuzzCase::from_text(&text).expect("parse own output");
            assert_eq!(back.to_text(), text, "round trip changed the case");
        }
    }

    #[test]
    fn coverage_sees_task_runtime_arms() {
        let mut case = FuzzCase::base(3);
        case.cfg.runtime = Runtime::Tasks;
        case.cfg.fault = Some(FaultSpec {
            drop_rate: 0.05,
            kills: vec![KillSpec {
                pipeline: 0,
                stage: 1,
                at_ms: 3,
            }],
            ..FaultSpec::default()
        });
        let set = coverage(
            &case,
            &CoverageEvents {
                task_backpressure: 1,
                task_steals: 2,
                ..CoverageEvents::default()
            },
        );
        for label in [
            "runtime:tasks",
            "task:steal-loss",
            "task:kill-midsteal",
            "task:queue-full",
            "task:steal",
        ] {
            assert!(set.contains(label), "missing {label} in {set:?}");
        }
        let clean = coverage(&FuzzCase::base(1), &CoverageEvents::default());
        assert!(
            !clean
                .iter()
                .any(|c| c.starts_with("task:") || c.starts_with("runtime:")),
            "static case claims task coverage: {clean:?}"
        );
    }

    #[test]
    fn oracle_clears_task_runtime_chaos() {
        // A kill on a lossy plane under the task runtime: the oracle must
        // see a bit-identical film, balanced ledgers, and sim/DES
        // agreement — the chaos shows up as coverage, not failures.
        let mut case = FuzzCase::base(9);
        case.cfg.runtime = Runtime::Tasks;
        case.cfg.fault = Some(FaultSpec {
            seed: 7,
            drop_rate: 0.05,
            kills: vec![KillSpec {
                pipeline: 0,
                stage: 1,
                at_ms: 3,
            }],
            heartbeat_period_us: 2_000,
            phi_dead: 2.0,
            ..FaultSpec::default()
        });
        let out = run_oracle(&case);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.coverage.contains("runtime:tasks"));
        assert!(out.coverage.contains("task:kill-midsteal"));
        assert!(out.coverage.contains("task:steal-loss"));
    }

    #[test]
    fn oracle_clears_stalled_thief_repro() {
        // tests/regressions/stalled-thief-steal.txt: a permanently
        // stalled worker used to run the steal handshake as a thief; the
        // platform pushed its legs past the stall window (the end of
        // virtual time) and the run never terminated. The stalled core
        // must be fenced as fail-stop-equivalent and the oracle must
        // come back clean.
        let text = "\
run mode=single arr=unordered p=1 w=64 h=48 f=4 seed=0xd22d65871def9b4c fid=full threads=4 pool=0 runtime=tasks qcap=8 steal_us=200 steal_retries=3
fault seed=0xa5b5766792751374 drop=0 corrupt=0.2 delay=0 max_delay_us=200 links=2 factor=1 timeout_us=5000 retries=3
sup hb_us=2000 phi=2 spares=4294967295 depth=4
kill p=0 s=3 at_ms=34
kill p=0 s=1 at_ms=27
stall p=0 s=4 at_ms=0 for_ms=18446744073709551615
";
        let case = FuzzCase::from_text(text).expect("repro parses");
        let out = run_oracle(&case);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.coverage.contains("runtime:tasks"));
    }

    #[test]
    fn mutate_preserves_validity() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut case = FuzzCase::base(1);
        for _ in 0..200 {
            case.mutate(&mut rng);
            case.cfg.validate().expect("mutants stay valid");
            if let Some(scfg) = case.serve_config() {
                scfg.validate().expect("serve mutants stay valid");
            }
        }
    }

    #[test]
    fn coverage_sees_serving_arms() {
        let mut case = FuzzCase::base(3);
        case.serve = Some(ServeFuzz {
            weight_a: 3,
            weight_b: 1,
            ..ServeFuzz::default()
        });
        let set = coverage(
            &case,
            &CoverageEvents {
                serve_sheds: 2,
                serve_cache_hits: 5,
                serve_cache_evictions: 1,
                ..CoverageEvents::default()
            },
        );
        for label in [
            "serve:on",
            "serve:weighted",
            "serve:shed",
            "serve:cache-hit",
            "serve:cache-evict",
        ] {
            assert!(set.contains(label), "missing {label} in {set:?}");
        }
        let clean = coverage(&FuzzCase::base(1), &CoverageEvents::default());
        assert!(
            !clean.iter().any(|c| c.starts_with("serve:")),
            "pipeline-only case claims serving coverage: {clean:?}"
        );
    }

    #[test]
    fn serve_repro_line_round_trips() {
        let mut case = FuzzCase::base(5);
        case.serve = Some(ServeFuzz {
            sessions_a: 8,
            cache_capacity: 0,
            cache_buckets: 1,
            queue_depth: 1,
            ..ServeFuzz::default()
        });
        let text = case.to_text();
        assert!(text.lines().any(|l| l.starts_with("serve ")));
        let back = FuzzCase::from_text(&text).expect("parse own output");
        assert_eq!(back.serve, case.serve);
        assert_eq!(back.to_text(), text);
        // Pre-serving repros still parse to a pipeline-only case.
        let old = FuzzCase::base(5).to_text();
        assert_eq!(FuzzCase::from_text(&old).expect("parse").serve, None);
    }

    #[test]
    #[cfg_attr(feature = "verify-selftest", ignore = "mutants make every run fail")]
    fn oracle_clears_serving_cases() {
        // An overloaded serving workload with a collision-prone cache:
        // the oracle must see a balanced ledger, non-silent sheds and a
        // cache-transparent film — the pressure shows up as coverage.
        let mut case = FuzzCase::base(3);
        case.serve = Some(ServeFuzz {
            sessions_a: 8,
            sessions_b: 2,
            cache_capacity: 2,
            cache_buckets: 1,
            queue_depth: 1,
            max_sessions: 2,
            ..ServeFuzz::default()
        });
        let out = run_oracle(&case);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        for label in ["serve:on", "serve:shed", "serve:cache-evict"] {
            assert!(
                out.coverage.contains(label),
                "missing {label} in {:?}",
                out.coverage
            );
        }

        // A roomy cache over an overlapping pose span: hits, no pressure.
        let mut warm = FuzzCase::base(3);
        warm.serve = Some(ServeFuzz {
            sessions_a: 8,
            ..ServeFuzz::default()
        });
        let out = run_oracle(&warm);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(
            out.coverage.contains("serve:cache-hit"),
            "missing serve:cache-hit in {:?}",
            out.coverage
        );
    }

    #[test]
    fn power_and_workload_repro_lines_round_trip() {
        let mut case = FuzzCase::base(5);
        case.cfg.power = PowerConfig::Governed(GovernorTuning {
            epoch_frames: 2,
            power_cap_watts: 0.0,
            ..GovernorTuning::default()
        });
        case.cfg.workload = Workload::Wavefront(WavefrontSpec {
            width: 32,
            height: 32,
            seeds: 2,
            max_waves: 4,
        });
        let text = case.to_text();
        assert!(text.lines().any(|l| l.starts_with("power kind=governed")));
        assert!(text.lines().any(|l| l.starts_with("workload kind=wavefront")));
        let back = FuzzCase::from_text(&text).expect("parse own output");
        assert_eq!(back.to_text(), text);

        let mut split = FuzzCase::base(5);
        split.cfg.power = PowerConfig::Static(vec![
            (CoreId::new(4), FreqMHz::F800),
            (CoreId::new(8), FreqMHz::F400),
        ]);
        let text = split.to_text();
        assert!(text.contains("power kind=static pairs=4:800,8:400"));
        assert_eq!(FuzzCase::from_text(&text).expect("parse").to_text(), text);

        // Pre-power-plane repros still parse to the uniform default.
        let old = FuzzCase::base(5).to_text();
        let parsed = FuzzCase::from_text(&old).expect("parse");
        assert!(matches!(parsed.cfg.power, PowerConfig::Static(ref v) if v.is_empty()));
        assert!(parsed.cfg.workload.is_film());
    }

    #[test]
    fn coverage_sees_dvfs_and_workload_arms() {
        let mut case = FuzzCase::base(3);
        case.cfg.power = PowerConfig::Governed(GovernorTuning {
            power_cap_watts: 0.0,
            ..GovernorTuning::default()
        });
        case.cfg.workload = Workload::Wavefront(WavefrontSpec {
            max_waves: 4,
            ..WavefrontSpec::default()
        });
        let set = coverage(
            &case,
            &CoverageEvents {
                dvfs_raises: 1,
                dvfs_throttles: 1,
                dvfs_cap_blocks: 1,
                ..CoverageEvents::default()
            },
        );
        for label in [
            "dvfs:governed",
            "dvfs:zero-cap",
            "dvfs:raise",
            "dvfs:throttle",
            "dvfs:cap-block",
            "workload:wavefront",
            "wavefront:capped",
        ] {
            assert!(set.contains(label), "missing {label} in {set:?}");
        }
        let mut split = FuzzCase::base(3);
        split.cfg.power = PowerConfig::Static(vec![(CoreId::new(4), FreqMHz::F800)]);
        let set = coverage(&split, &CoverageEvents::default());
        assert!(set.contains("dvfs:static"));
        assert!(set.contains("dvfs:static-raise"));
        let clean = coverage(&FuzzCase::base(1), &CoverageEvents::default());
        assert!(
            !clean
                .iter()
                .any(|c| c.starts_with("dvfs:") || c.starts_with("workload:")),
            "default case claims power/workload coverage: {clean:?}"
        );
    }

    #[test]
    #[cfg_attr(feature = "verify-selftest", ignore = "mutants make every run fail")]
    fn oracle_clears_governed_wavefront_case() {
        let mut case = FuzzCase::base(11);
        case.cfg.workload = Workload::Wavefront(WavefrontSpec::default());
        case.cfg.power = PowerConfig::Governed(GovernorTuning {
            epoch_frames: 2,
            ..GovernorTuning::default()
        });
        let out = run_oracle(&case);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.coverage.contains("workload:wavefront"));
        assert!(out.coverage.contains("dvfs:governed"));
    }

    #[test]
    fn coverage_sees_fault_decision_branches() {
        let mut lossy = FuzzCase::base(1);
        lossy.cfg.fault = Some(FaultSpec {
            seed: 9,
            drop_rate: 0.3,
            corrupt_rate: 0.3,
            delay_rate: 0.3,
            ..FaultSpec::default()
        });
        let set = coverage(&lossy, &CoverageEvents::default());
        for feature in [
            "msg:drop",
            "msg:corrupt",
            "msg:delay",
            "msg:deliver",
            "flit:delayed",
        ] {
            assert!(set.contains(feature), "missing {feature} in {set:?}");
        }
        let clean = coverage(&FuzzCase::base(1), &CoverageEvents::default());
        assert!(
            !clean.contains("msg:drop"),
            "clean case claims fault coverage"
        );
    }

    #[test]
    fn coverage_sees_scheduler_decisions() {
        let mut auto = FuzzCase::base(1);
        auto.cfg.auto_place = true;
        let set = coverage(&auto, &CoverageEvents::default());
        for feature in ["place:auto", "place:replicated", "place:merged"] {
            assert!(set.contains(feature), "missing {feature} in {set:?}");
        }
        let clean = coverage(&FuzzCase::base(1), &CoverageEvents::default());
        assert!(
            !clean.contains("place:auto"),
            "fixed case claims scheduler coverage"
        );
        auto.cfg.stage_weights = Some(vec![1.0; 5]);
        assert!(coverage(&auto, &CoverageEvents::default()).contains("weights:explicit"));
    }

    #[test]
    #[cfg_attr(feature = "verify-selftest", ignore = "mutants make every run fail")]
    fn oracle_passes_auto_placed_cases() {
        // The scheduler inside the full differential oracle: sim vs DES
        // vs sequential reference, clean and with a kill on the
        // replicated bottleneck's primary.
        let mut auto = FuzzCase::base(3);
        auto.cfg.auto_place = true;
        let out = run_oracle(&auto);
        assert!(
            out.failures.is_empty(),
            "auto case failed: {:?}",
            out.failures
        );
        assert!(out.coverage.contains("place:auto"));

        auto.cfg.fault = Some(FaultSpec {
            kills: vec![KillSpec {
                pipeline: 0,
                stage: 1,
                at_ms: 1,
            }],
            heartbeat_period_us: 2_000,
            phi_dead: 2.0,
            ..FaultSpec::default()
        });
        let out = run_oracle(&auto);
        assert!(
            out.failures.is_empty(),
            "auto kill case failed: {:?}",
            out.failures
        );
        assert!(out.coverage.contains("event:recovery"));
    }

    #[test]
    #[cfg_attr(feature = "verify-selftest", ignore = "mutants make every run fail")]
    fn oracle_passes_clean_and_recovery_cases() {
        let clean = FuzzCase::base(3);
        let out = run_oracle(&clean);
        assert!(
            out.failures.is_empty(),
            "clean case failed: {:?}",
            out.failures
        );
        assert!(out.coverage.contains("mode:single"));

        let mut kill = FuzzCase::base(3);
        kill.cfg.fault = Some(FaultSpec {
            kills: vec![KillSpec {
                pipeline: 0,
                stage: 1,
                at_ms: 1,
            }],
            heartbeat_period_us: 2_000,
            phi_dead: 2.0,
            ..FaultSpec::default()
        });
        let out = run_oracle(&kill);
        assert!(
            out.failures.is_empty(),
            "kill case failed: {:?}",
            out.failures
        );
        assert!(out.coverage.contains("event:recovery"));
    }
}
