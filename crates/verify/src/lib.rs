//! # scc-verify — the conformance harness
//!
//! Four layers of defence for the macro-pipelining framework, each
//! independent of the code it checks:
//!
//! * **golden run-digests** ([`golden_matrix`], [`digest_case`]) — a
//!   diff-friendly text digest of everything deterministic in a run
//!   (report fingerprint, film hash, trace summary, energy identity)
//!   for the full renderer × arrangement matrix plus fault, recovery
//!   and native-tuning variants, pinned under `tests/golden/`;
//! * **differential oracle** ([`fuzz::run_oracle`]) — one configuration
//!   executed by the frame-major simulator, the DES validator, and the
//!   sequential reference data path, with the invariant checker
//!   ([`scc_core::invariant`]) applied to the report;
//! * **coverage-guided fuzzer** ([`fuzz`], driven by the `scc-verify`
//!   binary) — mutates fault plans, kill schedules and tunings, keeps
//!   mutants that reach new fault-decision branches or recovery phases,
//!   and shrinks any failure to a ≤ 10-line repro for
//!   `tests/regressions/`;
//! * **telemetry conformance** ([`telemetry`]) — the golden matrix
//!   re-run with `RunConfig::telemetry` on (digests must not move), the
//!   exporter schema checks against `scc_telemetry::names::ALL`, and
//!   the Figure 15 idle-quartile reproduction from live histograms.

use scc_core::runner::sim::SimRunner;
use scc_core::spec::{Fidelity, RunConfig};
use scc_core::viz::frame_checksum;
use scc_core::WalkthroughReport;
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

pub mod fuzz;
pub mod telemetry;

/// FNV-1a offset basis (the same constants `viz::frame_checksum` uses,
/// so every hash in the harness speaks one dialect).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x100_0000_01B3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a string's UTF-8 bytes.
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// The fixed scene every conformance run renders: small enough for CI,
/// rich enough that every filter has real work.
pub fn verify_scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig {
        side: 8,
        spacing: 8.0,
        seed: 3,
    }))
}

/// One golden configuration: a stable name (the golden file's stem) and
/// the run it pins.
#[derive(Debug, Clone)]
pub struct GoldenCase {
    pub name: String,
    pub cfg: RunConfig,
}

fn base_cfg() -> RunConfig {
    RunConfig::builder()
        .pipelines(2)
        .size(64, 48)
        .frames(4)
        .seed(11)
        .fidelity(Fidelity::Full)
        .trace(true)
        .verify(true)
        .build()
        .expect("valid config")
}

/// The golden matrix: every renderer mode × every arrangement, plus a
/// degraded (permanent stall, no spares), a recovered (kill + spare),
/// and a lossy-links variant. All run under the invariant checker.
pub fn golden_matrix() -> Vec<GoldenCase> {
    use scc_core::spec::{Arrangement, FaultSpec, KillSpec, RendererMode, Runtime, StallSpec};
    let mut cases = Vec::new();
    for mode in [
        RendererMode::SingleRenderer,
        RendererMode::PerPipelineRenderer,
        RendererMode::McpcRenderer,
    ] {
        for arr in [
            Arrangement::Unordered,
            Arrangement::Ordered,
            Arrangement::Flipped,
        ] {
            let mut cfg = base_cfg();
            cfg.renderer = mode;
            cfg.arrangement = arr;
            cases.push(GoldenCase {
                name: format!(
                    "{}-{}",
                    match mode {
                        RendererMode::SingleRenderer => "single",
                        RendererMode::PerPipelineRenderer => "perpipe",
                        RendererMode::McpcRenderer => "mcpc",
                    },
                    arr.name()
                ),
                cfg,
            });
        }
    }
    let mut degraded = base_cfg();
    degraded.pipelines = 3;
    degraded.fault = Some(FaultSpec {
        stall: Some(StallSpec {
            pipeline: 1,
            stage: 2,
            at_ms: 0,
            for_ms: u64::MAX,
        }),
        max_spares: 0,
        ..FaultSpec::default()
    });
    cases.push(GoldenCase {
        name: "fault-degraded".into(),
        cfg: degraded,
    });
    let mut recovered = base_cfg();
    recovered.fault = Some(FaultSpec {
        kills: vec![KillSpec {
            pipeline: 0,
            stage: 1,
            at_ms: 1,
        }],
        heartbeat_period_us: 2_000,
        phi_dead: 2.0,
        ..FaultSpec::default()
    });
    cases.push(GoldenCase {
        name: "fault-recovered".into(),
        cfg: recovered,
    });
    let mut lossy = base_cfg();
    lossy.fault = Some(FaultSpec {
        seed: 0x1055,
        drop_rate: 0.05,
        corrupt_rate: 0.05,
        delay_rate: 0.10,
        ..FaultSpec::default()
    });
    cases.push(GoldenCase {
        name: "fault-lossy".into(),
        cfg: lossy,
    });
    // The stage-graph scheduler: one auto-placed run per renderer mode
    // (film must stay bit-identical to the fixed digests' film hash),
    // plus a kill on the replicated bottleneck's primary — the
    // supervisor must migrate a scheduler placement, group siblings
    // included, without moving the film hash.
    for (tag, mode) in [
        ("single", RendererMode::SingleRenderer),
        ("perpipe", RendererMode::PerPipelineRenderer),
        ("mcpc", RendererMode::McpcRenderer),
    ] {
        let mut cfg = base_cfg();
        cfg.renderer = mode;
        cfg.auto_place = true;
        cases.push(GoldenCase {
            name: format!("auto-{tag}"),
            cfg,
        });
    }
    let mut auto_recovered = base_cfg();
    auto_recovered.auto_place = true;
    auto_recovered.fault = Some(FaultSpec {
        kills: vec![KillSpec {
            pipeline: 0,
            stage: 1,
            at_ms: 1,
        }],
        heartbeat_period_us: 2_000,
        phi_dead: 2.0,
        ..FaultSpec::default()
    });
    cases.push(GoldenCase {
        name: "auto-recovered".into(),
        cfg: auto_recovered,
    });
    // The dependency-driven task runtime: the steal scheduler must
    // deliver the *same film hash* as the fixed digests, and the
    // exactly-once ledger (spawned/completed/requeued/steals) rides in
    // the fingerprint so any conservation drift moves the digest.
    let mut tasks_clean = base_cfg();
    tasks_clean.runtime = Runtime::Tasks;
    tasks_clean.trace = false;
    cases.push(GoldenCase {
        name: "tasks-clean".into(),
        cfg: tasks_clean,
    });
    let mut tasks_recovered = base_cfg();
    tasks_recovered.runtime = Runtime::Tasks;
    tasks_recovered.trace = false;
    tasks_recovered.fault = Some(FaultSpec {
        kills: vec![KillSpec {
            pipeline: 0,
            stage: 1,
            at_ms: 1,
        }],
        heartbeat_period_us: 2_000,
        phi_dead: 2.0,
        ..FaultSpec::default()
    });
    cases.push(GoldenCase {
        name: "tasks-recovered".into(),
        cfg: tasks_recovered,
    });
    // The power plane: a governed film and a hand-tuned static split.
    // The film hash must stay equal to the fixed digests' — frequency
    // moves schedules, never pixels — while the fingerprint carries the
    // power config and decision trace, so any governor drift (an extra
    // raise, a moved epoch) shifts the digest.
    let mut dvfs_governed = base_cfg();
    dvfs_governed.power = scc_core::PowerConfig::Governed(scc_core::GovernorTuning::default());
    cases.push(GoldenCase {
        name: "dvfs-governed".into(),
        cfg: dvfs_governed,
    });
    let mut dvfs_static = base_cfg();
    dvfs_static.power = scc_core::PowerConfig::Static(vec![
        (scc_sim::CoreId::new(4), scc_sim::FreqMHz::F800),
        (scc_sim::CoreId::new(8), scc_sim::FreqMHz::F400),
    ]);
    cases.push(GoldenCase {
        name: "dvfs-static".into(),
        cfg: dvfs_static,
    });
    cases
}

/// Digest everything deterministic in a walkthrough report as a small
/// diff-friendly text block. Floats go in as IEEE-754 bit patterns —
/// formatting can never drift.
pub fn digest_report(r: &WalkthroughReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fingerprint={:016x}\n",
        fnv1a_str(&r.fingerprint())
    ));
    match &r.outputs {
        Some(frames) => {
            let mut h = FNV_OFFSET;
            for f in frames {
                for b in frame_checksum(f).to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(FNV_PRIME);
                }
            }
            out.push_str(&format!("film={:016x} frames={}\n", h, frames.len()));
        }
        None => out.push_str("film=none\n"),
    }
    let replayed: u32 = r.recoveries.iter().map(|e| e.frames_replayed).sum();
    out.push_str(&format!(
        "events degradations={} recoveries={} replayed={}\n",
        r.degradations.len(),
        r.recoveries.len(),
        replayed
    ));
    match &r.trace {
        Some(log) => {
            let mut text = String::new();
            for e in log.events() {
                text.push_str(&format!(
                    "{} {} {:?} {} {:?} {} {}\n",
                    e.core,
                    e.kind.name(),
                    e.pipeline,
                    e.frame,
                    e.phase,
                    e.t0.as_ps(),
                    e.t1.as_ps()
                ));
            }
            out.push_str(&format!(
                "trace spans={} digest={:016x}\n",
                log.events().len(),
                fnv1a_str(&text)
            ));
        }
        None => out.push_str("trace=none\n"),
    }
    out.push_str(&format!(
        "energy scc={:016x} idle_w={:016x} total_secs={:016x}\n",
        r.scc_energy_joules.to_bits(),
        r.scc_idle_power.to_bits(),
        r.total_secs.to_bits()
    ));
    out
}

/// Run one golden case through the simulator (invariant-checked) and
/// render its digest block, headed by the case name and config.
pub fn digest_case(case: &GoldenCase) -> String {
    let report = SimRunner::new(case.cfg.clone(), verify_scene()).run();
    format!(
        "== {}\nconfig={}\n{}",
        case.name,
        config_line(&case.cfg),
        digest_report(&report)
    )
}

/// One-line canonical config rendering for digest headers. The
/// scheduler suffix (`auto=1`, explicit weights) only appears when the
/// case opts in, so the fixed-arrangement digests are byte-stable
/// across the scheduler's introduction; likewise the kernel/fusion
/// suffix appears only when a case departs from the `Auto` defaults.
pub fn config_line(cfg: &RunConfig) -> String {
    let mut auto = if cfg.auto_place {
        match &cfg.stage_weights {
            Some(w) => format!(" auto=1 weights={w:?}"),
            None => " auto=1".to_string(),
        }
    } else {
        String::new()
    };
    if cfg.tuning.kernel != scc_core::KernelChoice::Auto {
        auto.push_str(&format!(" kernel={}", cfg.tuning.kernel.name()));
    }
    if cfg.tuning.fuse != scc_core::FuseChoice::Auto {
        auto.push_str(&format!(" fuse={}", cfg.tuning.fuse.name()));
    }
    // Like the scheduler suffix: only non-default runtimes print, so the
    // pre-task-runtime digests stay byte-stable.
    if cfg.runtime != scc_core::spec::Runtime::Static {
        auto.push_str(&format!(
            " runtime={} qcap={} steal_us={} retries={}",
            cfg.runtime.name(),
            cfg.task_tuning.queue_capacity,
            cfg.task_tuning.steal_timeout_us,
            cfg.task_tuning.steal_retries
        ));
    }
    // Power and workload suffixes print only away from the defaults, so
    // every pre-power-plane digest stays byte-stable.
    match &cfg.power {
        scc_core::PowerConfig::Static(pairs) if pairs.is_empty() => {}
        scc_core::PowerConfig::Static(pairs) => {
            let list: Vec<String> = pairs
                .iter()
                .map(|(c, f)| format!("{}:{}", c.raw(), f.mhz()))
                .collect();
            auto.push_str(&format!(" power=static[{}]", list.join(",")));
        }
        scc_core::PowerConfig::Governed(t) => {
            auto.push_str(&format!(
                " power=governed epoch={} hyst={} cap_w={}",
                t.epoch_frames, t.hysteresis_epochs, t.power_cap_watts
            ));
        }
    }
    if !cfg.workload.is_film() {
        auto.push_str(&format!(" workload={}", cfg.workload.name()));
    }
    format!(
        "{} {} p={} {}x{}x{} seed={:#x}{auto} fault={}",
        cfg.renderer.name(),
        cfg.arrangement.name(),
        cfg.pipelines,
        cfg.width,
        cfg.height,
        cfg.frames,
        cfg.seed,
        match &cfg.fault {
            None => "none".to_string(),
            Some(f) => format!(
                "seed={:#x} drop={:?} corrupt={:?} delay={:?} stall={} kills={}",
                f.seed,
                f.drop_rate,
                f.corrupt_rate,
                f.delay_rate,
                f.stall.is_some(),
                f.kills.len()
            ),
        }
    )
}

/// Digest of the native runner's output film under several tunings: the
/// film hash must be identical for every (threads, pooling) combination
/// and equal to the sequential reference — wall-clock timings are
/// excluded, so the digest is byte-stable across machines.
pub fn native_tuning_digest() -> String {
    use scc_core::run_native;
    use scc_core::spec::NativeTuning;
    let mut cfg = base_cfg();
    cfg.width = 48;
    cfg.height = 32;
    cfg.frames = 3;
    cfg.trace = false;
    let reference = scc_core::reference::reference_frames(&cfg, verify_scene());
    let ref_hash = film_hash(&reference);
    let mut out = format!("== native-tuning\nreference={:016x}\n", ref_hash);
    for (threads, pool) in [(1u32, true), (2, true), (2, false)] {
        let mut c = cfg.clone();
        c.tuning = NativeTuning {
            kernel_threads: threads,
            buffer_pool: pool,
            ..NativeTuning::default()
        };
        let report = run_native(&c, verify_scene());
        out.push_str(&format!(
            "threads={} pool={} film={:016x}\n",
            threads,
            pool,
            film_hash(&report.frames)
        ));
    }
    out
}

/// Digest of the stage-graph scheduler's *decisions* on the golden
/// geometry: the full decision table (stage, class, weight, group,
/// replicas, cores) for every renderer mode, pinned verbatim plus an
/// FNV fold. Any change to the cost model, the partitioning passes or
/// the core realisation moves this file — reviewers see the new table,
/// not just a hash.
pub fn autoplace_decision_digest() -> String {
    use scc_core::spec::RendererMode;
    let mut out = String::from("== autoplace-decision\n");
    for (tag, mode) in [
        ("single", RendererMode::SingleRenderer),
        ("perpipe", RendererMode::PerPipelineRenderer),
        ("mcpc", RendererMode::McpcRenderer),
    ] {
        let mut cfg = base_cfg();
        cfg.renderer = mode;
        cfg.auto_place = true;
        let table = scc_core::auto_place(&cfg).decision_table();
        out.push_str(&format!(
            "-- {tag} digest={:016x}\n{table}",
            fnv1a_str(&table)
        ));
    }
    out
}

/// Digest of the scheduler's decision tables under *explicit* fusion
/// costing — `fuse=off` (plain weight sums) next to `fuse=on` (fused
/// pointwise runs discounted) for every renderer mode. Pinned alongside
/// `autoplace-decision` so the repartitioning effect of fused-group
/// weights is itself a reviewed, byte-stable artefact.
pub fn autoplace_decision_fused_digest() -> String {
    use scc_core::spec::RendererMode;
    use scc_core::FuseChoice;
    let mut out = String::from("== autoplace-decision-fused\n");
    for (tag, mode) in [
        ("single", RendererMode::SingleRenderer),
        ("perpipe", RendererMode::PerPipelineRenderer),
        ("mcpc", RendererMode::McpcRenderer),
    ] {
        for (fuse_tag, fuse) in [("off", FuseChoice::Off), ("on", FuseChoice::On)] {
            let mut cfg = base_cfg();
            cfg.renderer = mode;
            cfg.auto_place = true;
            cfg.tuning.fuse = fuse;
            let table = scc_core::auto_place(&cfg).decision_table();
            out.push_str(&format!(
                "-- {tag} fuse={fuse_tag} digest={:016x}\n{table}",
                fnv1a_str(&table)
            ));
        }
    }
    out
}

/// Digest of a pinned multi-tenant serving run: the session ledger, the
/// cache counters, the WFQ contention split, the film fingerprint and
/// the virtual-time fields (as IEEE-754 bits), all byte-stable because
/// the serving engine's control loop runs in virtual time. Any change to
/// admission, WFQ, cache keying or shed policy moves this file.
pub fn serving_smoke_digest() -> String {
    use scc_serve::{serve, ServeConfig, TenantSpec};
    let mut run = base_cfg();
    run.width = 48;
    run.height = 32;
    run.trace = false;
    let cfg = ServeConfig {
        run,
        tenants: vec![
            TenantSpec::new("gold", 3, 8, 3),
            TenantSpec::new("bronze", 1, 8, 3),
        ],
        shards: 2,
        pool: 2,
        cache_capacity: 32,
        cache_buckets: 16,
        queue_depth: 4,
        max_sessions: 10,
        batch_frames: 3,
        pose_span: 4,
        arrival_burst: 6,
        seed: 0x5EC5_E55,
        keep_films: false,
    };
    let out = serve(&cfg, &verify_scene());
    let r = &out.report;
    let mut doc = String::from("== serving-smoke\n");
    doc.push_str(&format!(
        "config shards={} pool={} cache={}x{} qd={} cap={} batch={} span={} seed={:#x}\n",
        cfg.shards,
        cfg.pool,
        cfg.cache_capacity,
        cfg.cache_buckets,
        cfg.queue_depth,
        cfg.max_sessions,
        cfg.batch_frames,
        cfg.pose_span,
        cfg.seed
    ));
    doc.push_str(&format!(
        "ledger admitted={} completed={} shed={} events={}\n",
        r.admitted,
        r.completed,
        r.shed,
        r.shed_events.len()
    ));
    doc.push_str(&format!(
        "frames served={} unique_renders={} rounds={} contended={} contended_frames={}\n",
        r.frames_served, r.unique_renders, r.rounds, r.contended_rounds, r.contended_frames_total
    ));
    doc.push_str(&format!(
        "cache hits={} misses={} evictions={} collisions={} insertions={}\n",
        r.cache.hits, r.cache.misses, r.cache.evictions, r.cache.collisions, r.cache.insertions
    ));
    for t in &r.per_tenant {
        doc.push_str(&format!(
            "tenant {} w={} offered={} shed={} sessions={} frames={} contended={}\n",
            t.name, t.weight, t.offered, t.shed, t.completed_sessions, t.frames_completed,
            t.contended_frames
        ));
    }
    doc.push_str(&format!(
        "film={:016x} vtime={:016x}\n",
        r.film_hash,
        r.virtual_secs.to_bits()
    ));
    doc
}

fn film_hash(frames: &[scc_filters::Image]) -> u64 {
    let mut h = FNV_OFFSET;
    for f in frames {
        for b in frame_checksum(f).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Digest of the *schema* of the bench trajectory's JSON artefacts
/// (`BENCH_native_pipeline.json`, `BENCH_recovery.json`,
/// `BENCH_autoplace.json`): the sorted set of JSON keys each document
/// exposes. Values vary run to run — the shape must not.
pub fn bench_schema_digest() -> String {
    use scc_bench::autoplace::measure_autoplace;
    use scc_bench::native_throughput::measure_native_throughput;
    use scc_bench::recovery::measure_recovery;
    let mut cfg = base_cfg();
    cfg.width = 48;
    cfg.height = 32;
    cfg.frames = 2;
    cfg.trace = false;
    cfg.verify = false;
    let scene = verify_scene();
    let throughput = measure_native_throughput(&cfg, &scene, &[1]);
    let recovery = measure_recovery(&cfg, &scene, &[1]);
    let autoplace = measure_autoplace(&cfg, &scene);
    let kernels = scc_bench::kernels::measure_kernels(48, 32, 2, cfg.seed, &[1]);
    let tasks = scc_bench::tasks::measure_tasks(&cfg, &scene);
    let serving = scc_bench::serving::measure_serving(&cfg, &scene, &[2]);
    let dvfs = scc_bench::dvfs::measure_dvfs(&cfg, &scene);
    let mut out = String::from("== bench-schema\n");
    for (name, json) in [
        ("native_pipeline", throughput.to_json()),
        ("recovery", recovery.to_json()),
        ("autoplace", autoplace.to_json()),
        ("kernels", kernels.to_json()),
        ("tasks", tasks.to_json()),
        ("serving", serving.to_json()),
        ("dvfs", dvfs.to_json()),
    ] {
        let keys = json_keys(&json);
        out.push_str(&format!(
            "BENCH_{name}.json keys={} digest={:016x}\n",
            keys.len(),
            fnv1a_str(&keys.join(","))
        ));
        for k in keys {
            out.push_str(&format!("  {k}\n"));
        }
    }
    out
}

/// Extract the sorted, deduplicated set of object keys from a JSON
/// document (string-scan; the vendored serde has no parser).
pub fn json_keys(json: &str) -> Vec<String> {
    let mut keys = std::collections::BTreeSet::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            let mut k = j + 1;
            while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                k += 1;
            }
            if k < bytes.len() && bytes[k] == b':' {
                keys.insert(json[start..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys.into_iter().collect()
}

/// The whole golden document: matrix digests, native tuning digest,
/// the scheduler decision digest, and the bench schema digest, in a
/// fixed order.
pub fn golden_document() -> String {
    let mut out = String::new();
    for case in golden_matrix() {
        out.push_str(&digest_case(&case));
        out.push('\n');
    }
    out.push_str(&native_tuning_digest());
    out.push('\n');
    out.push_str(&autoplace_decision_digest());
    out.push('\n');
    out.push_str(&serving_smoke_digest());
    out.push('\n');
    out.push_str(&bench_schema_digest());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn json_keys_extracts_object_keys_only() {
        let json = r#"{"a":1,"nested":{"b":[{"c":"not:a:key"},2]},"a":3}"#;
        assert_eq!(json_keys(json), vec!["a", "b", "c", "nested"]);
    }

    #[test]
    fn golden_matrix_covers_the_full_mode_arrangement_grid() {
        let cases = golden_matrix();
        assert_eq!(
            cases.len(),
            20,
            "3x3 matrix + 3 fault variants + 4 scheduler variants + \
             2 task-runtime variants + 2 power-plane variants"
        );
        let names: Vec<_> = cases.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"single-ordered"));
        assert!(names.contains(&"mcpc-flipped"));
        assert!(names.contains(&"fault-recovered"));
        assert!(names.contains(&"auto-single"));
        assert!(names.contains(&"auto-recovered"));
        assert!(names.contains(&"tasks-clean"));
        assert!(names.contains(&"tasks-recovered"));
        assert!(names.contains(&"dvfs-governed"));
        assert!(names.contains(&"dvfs-static"));
        for c in &cases {
            assert_eq!(
                c.name.starts_with("auto-"),
                c.cfg.auto_place,
                "{}: auto_place must match the auto- prefix",
                c.name
            );
        }
        for c in &cases {
            assert!(
                c.cfg.verify,
                "{}: golden runs are invariant-checked",
                c.name
            );
            c.cfg.validate().expect("golden config valid");
        }
    }

    #[test]
    #[cfg_attr(feature = "verify-selftest", ignore = "mutants trip the checker")]
    fn digests_are_deterministic() {
        let case = &golden_matrix()[0];
        assert_eq!(digest_case(case), digest_case(case));
    }
}
