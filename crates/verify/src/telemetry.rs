//! Telemetry conformance checks — the verify job's `telemetry` step.
//!
//! Three guarantees, each checked against the same golden matrix the
//! run-digests pin:
//!
//! * **observation has no observer effect** — running any golden case
//!   with [`RunConfig::telemetry`](scc_core::RunConfig) enabled must
//!   leave its pinned digest byte-identical;
//! * **the exporters speak the catalogued schema** — every metric name
//!   in a snapshot comes from [`scc_telemetry::names::ALL`], events are
//!   time-ordered, and the Prometheus / JSON exporters render every
//!   family they are given;
//! * **Figure 15 falls out of the live metrics** — for every stage the
//!   `scc_stage_idle_ms` histogram's quantile brackets must contain the
//!   report's exact `idle_ms` quartiles.

use crate::GoldenCase;
use scc_core::WalkthroughReport;
use scc_telemetry::{names, Snapshot};

/// The same golden case with telemetry recording switched on. The name
/// is kept: its digest must match the telemetry-off pinned file.
pub fn with_telemetry(case: &GoldenCase) -> GoldenCase {
    let mut cfg = case.cfg.clone();
    cfg.telemetry = true;
    GoldenCase {
        name: case.name.clone(),
        cfg,
    }
}

/// Check a snapshot against the metric-name catalogue and the exporter
/// contracts. Returns every violation, one per line.
pub fn check_snapshot_schema(snap: &Snapshot) -> Result<(), String> {
    let mut errs = Vec::new();
    let catalogued = |name: &str| names::ALL.contains(&name);
    for s in &snap.counters {
        if !catalogued(&s.name) {
            errs.push(format!("counter {} not in names::ALL", s.name));
        }
    }
    for s in &snap.gauges {
        if !catalogued(&s.name) {
            errs.push(format!("gauge {} not in names::ALL", s.name));
        }
    }
    for s in &snap.histograms {
        if !catalogued(&s.name) {
            errs.push(format!("histogram {} not in names::ALL", s.name));
        }
        if s.bucket_counts.len() != s.bounds.len() + 1 {
            errs.push(format!(
                "histogram {}: {} buckets for {} bounds (want bounds+1)",
                s.name,
                s.bucket_counts.len(),
                s.bounds.len()
            ));
        }
        if s.bucket_counts.iter().sum::<u64>() != s.count {
            errs.push(format!(
                "histogram {}: bucket counts disagree with count",
                s.name
            ));
        }
    }
    if snap.events.windows(2).any(|w| w[0].at_ns > w[1].at_ns) {
        errs.push("events are not time-ordered".to_string());
    }

    // Prometheus exposition: exactly one `# TYPE` header per family.
    let prom = scc_telemetry::prometheus::render(snap);
    for s in &snap.counters {
        let header = format!("# TYPE {} counter", s.name);
        if prom.matches(&header).count() != 1 {
            errs.push(format!("prometheus: missing/duplicated `{header}`"));
        }
    }
    for s in &snap.histograms {
        let header = format!("# TYPE {} histogram", s.name);
        if prom.matches(&header).count() != 1 {
            errs.push(format!("prometheus: missing/duplicated `{header}`"));
        }
    }

    // JSON exporter: schema tag present, document balanced.
    let json = scc_telemetry::json::render(snap);
    if !json.contains(&format!(
        "\"schema\": \"{}\"",
        scc_telemetry::json::SNAPSHOT_SCHEMA
    )) {
        errs.push("json: schema tag missing".to_string());
    }
    if json.matches('{').count() != json.matches('}').count()
        || json.matches('[').count() != json.matches(']').count()
    {
        errs.push("json: unbalanced braces/brackets".to_string());
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs.join("\n"))
    }
}

/// Check that the live `scc_stage_idle_ms` histograms reproduce the
/// report's Figure 15 idle quartiles: for every stage with an idle
/// distribution, each exact quartile must lie inside the histogram's
/// quantile bracket (the tightest statement a fixed-bucket sketch can
/// make). Returns every violation, one per line.
pub fn check_idle_quartiles(report: &WalkthroughReport) -> Result<(), String> {
    let snap = report
        .telemetry
        .as_ref()
        .ok_or("report carries no telemetry snapshot")?;
    let mut errs = Vec::new();
    let mut checked = 0usize;
    for s in &report.stage_reports {
        let Some(q) = &s.idle_ms else { continue };
        let pl = s.pipeline.map(|i| i.to_string());
        let labels = [
            ("pipeline", pl.as_deref().unwrap_or("-")),
            ("stage", s.kind.name()),
        ];
        let Some(h) = snap.histogram(names::STAGE_IDLE_MS, &labels) else {
            errs.push(format!(
                "no {} histogram for stage {} p{:?}",
                names::STAGE_IDLE_MS,
                s.kind.name(),
                s.pipeline
            ));
            continue;
        };
        for (tag, quantile, exact) in [
            ("q1", 0.25, q.q1),
            ("median", 0.50, q.median),
            ("q3", 0.75, q.q3),
        ] {
            match h.quantile_bracket(quantile) {
                Some((lo, hi)) if lo <= exact && exact <= hi => checked += 1,
                Some((lo, hi)) => errs.push(format!(
                    "stage {} p{:?} {tag}: exact {exact} ms outside bracket [{lo}, {hi}]",
                    s.kind.name(),
                    s.pipeline
                )),
                None => errs.push(format!(
                    "stage {} p{:?}: empty idle histogram",
                    s.kind.name(),
                    s.pipeline
                )),
            }
        }
    }
    if checked == 0 {
        errs.push("no idle quartiles were checked".to_string());
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden_matrix;

    #[test]
    fn with_telemetry_only_flips_the_flag() {
        let case = &golden_matrix()[0];
        let on = with_telemetry(case);
        assert!(on.cfg.telemetry && !case.cfg.telemetry);
        assert_eq!(on.name, case.name);
        let mut roundtrip = on.cfg.clone();
        roundtrip.telemetry = false;
        assert_eq!(format!("{roundtrip:?}"), format!("{:?}", case.cfg));
    }

    #[test]
    fn schema_check_flags_uncatalogued_names() {
        let sink = scc_telemetry::TelemetrySink::enabled();
        sink.count("scc_not_in_catalogue_total", &[], 1);
        let err = check_snapshot_schema(&sink.snapshot().unwrap()).unwrap_err();
        assert!(err.contains("not in names::ALL"), "{err}");
    }
}
