//! Mutation smoke test (the acceptance gate for the whole harness).
//!
//! Built with `--features verify-selftest`, `scc-core` plants two
//! off-by-one bugs in the frame accounting:
//!
//! * the transfer stage under-counts its ledger by one frame, and
//! * recovery acknowledgements lag by one frame, doubling the replay.
//!
//! The harness must catch both — the first through the invariant
//! checker's frame-conservation rule, the second through the fuzzer's
//! differential oracle against the DES validator — and the shrinker must
//! reduce the failing configuration to a repro of at most 10 lines.
#![cfg(feature = "verify-selftest")]

use scc_core::spec::{FaultSpec, KillSpec};
use scc_verify::fuzz::{run_oracle, shrink, FuzzCase};

fn kill_case() -> FuzzCase {
    let mut case = FuzzCase::base(3);
    // Six frames keep the 22 ms kill well clear of the end-of-run
    // boundary window (which starts at ~0.62 × total here) — inside
    // that window the oracle deliberately tolerates replay-count skew
    // and the planted mutant would go unseen.
    case.cfg.frames = 6;
    // The kill lands while the *third* frame is in flight: by then the
    // lagging acknowledgement has pinned a delivered strip in the
    // checkpoint ring, so the sim replays 2 frames where the DES
    // executor replays 1 — the differential the oracle must see.
    case.cfg.fault = Some(FaultSpec {
        kills: vec![KillSpec {
            pipeline: 0,
            stage: 1,
            at_ms: 22,
        }],
        heartbeat_period_us: 2_000,
        phi_dead: 2.0,
        ..FaultSpec::default()
    });
    case
}

#[test]
fn both_planted_mutants_are_caught_in_one_oracle_pass() {
    let outcome = run_oracle(&kill_case());
    let checks: Vec<&str> = outcome.failures.iter().map(|f| f.check.as_str()).collect();
    assert!(
        checks.contains(&"frame-conservation"),
        "invariant checker missed the transfer ledger mutant: {checks:?}"
    );
    assert!(
        checks.contains(&"differential-replay"),
        "differential oracle missed the replay mutant: {checks:?}"
    );
}

#[test]
fn shrinker_produces_a_minimal_repro() {
    let minimal = shrink(kill_case(), "frame-conservation");
    let text = minimal.to_text();
    assert!(
        text.lines().count() <= 10,
        "repro must fit in 10 lines:\n{text}"
    );
    // The shrunk case must still reproduce the same failure...
    let outcome = run_oracle(&minimal);
    assert!(
        outcome
            .failures
            .iter()
            .any(|f| f.check == "frame-conservation"),
        "shrunk repro no longer fails: {:?}",
        outcome.failures
    );
    // ...and the ledger mutant needs no fault plan at all, so the
    // shrinker should have stripped it down to a clean run line.
    assert!(
        minimal.cfg.fault.is_none(),
        "shrinker kept an unnecessary fault plan:\n{text}"
    );
    // Round trip: what lands in tests/regressions/ must parse.
    let back = FuzzCase::from_text(&text).expect("repro parses");
    assert_eq!(back.to_text(), text);
}
