//! Golden run-digests: the full renderer × arrangement matrix plus the
//! fault, tuning and bench-schema variants, pinned as diff-friendly text
//! under `tests/golden/`. Regenerate after an intentional behaviour
//! change with `UPDATE_GOLDEN=1 cargo test -p scc-verify golden`.
//!
//! Disabled under `verify-selftest`: the planted mutants make every
//! digest (deliberately) wrong.
#![cfg(not(feature = "verify-selftest"))]

use scc_verify::{
    autoplace_decision_digest, autoplace_decision_fused_digest, bench_schema_digest, digest_case,
    golden_matrix, native_tuning_digest, serving_smoke_digest,
};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn check_or_update(name: &str, digest: &str) -> Result<(), String> {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, digest).expect("write golden file");
        return Ok(());
    }
    let want = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: {e} — run UPDATE_GOLDEN=1 to create it", path.display()))?;
    if want == digest {
        return Ok(());
    }
    let mut msg = format!("{name}: digest drifted from {}\n", path.display());
    for (l, (got, exp)) in digest.lines().zip(want.lines()).enumerate() {
        if got != exp {
            msg.push_str(&format!(
                "  line {}: got  {got}\n  line {}: want {exp}\n",
                l + 1,
                l + 1
            ));
        }
    }
    Err(msg)
}

#[test]
fn golden_matrix_digests_match_the_pinned_files() {
    let mut drift = Vec::new();
    for case in golden_matrix() {
        if let Err(e) = check_or_update(&case.name, &digest_case(&case)) {
            drift.push(e);
        }
    }
    assert!(drift.is_empty(), "{}", drift.join("\n"));
}

#[test]
fn native_tuning_digest_matches_the_pinned_file() {
    if let Err(e) = check_or_update("native-tuning", &native_tuning_digest()) {
        panic!("{e}");
    }
}

#[test]
fn bench_schema_digest_matches_the_pinned_file() {
    if let Err(e) = check_or_update("bench-schema", &bench_schema_digest()) {
        panic!("{e}");
    }
}

#[test]
fn serving_smoke_digest_matches_the_pinned_file() {
    if let Err(e) = check_or_update("serving-smoke", &serving_smoke_digest()) {
        panic!("{e}");
    }
}

#[test]
fn autoplace_decision_digest_matches_the_pinned_file() {
    if let Err(e) = check_or_update("autoplace-decision", &autoplace_decision_digest()) {
        panic!("{e}");
    }
}

#[test]
fn autoplace_decision_fused_digest_matches_the_pinned_file() {
    if let Err(e) = check_or_update(
        "autoplace-decision-fused",
        &autoplace_decision_fused_digest(),
    ) {
        panic!("{e}");
    }
}

/// The acceptance bar: two consecutive runs of the whole matrix must be
/// byte-identical — no wall-clock, allocator or iteration-order leak.
#[test]
fn consecutive_matrix_runs_are_byte_identical() {
    for case in golden_matrix() {
        assert_eq!(
            digest_case(&case),
            digest_case(&case),
            "{}: two consecutive runs disagree",
            case.name
        );
    }
    assert_eq!(native_tuning_digest(), native_tuning_digest());
    assert_eq!(autoplace_decision_digest(), autoplace_decision_digest());
    assert_eq!(
        autoplace_decision_fused_digest(),
        autoplace_decision_fused_digest()
    );
    assert_eq!(serving_smoke_digest(), serving_smoke_digest());
    assert_eq!(bench_schema_digest(), bench_schema_digest());
}
