//! Telemetry conformance: the golden matrix with telemetry enabled must
//! not move a single pinned digest, every snapshot must speak the
//! catalogued schema, and the Figure 15 idle quartiles must be
//! reproducible from the live `scc_stage_idle_ms` histograms alone.
//!
//! Disabled under `verify-selftest`: the planted mutants make every
//! digest (deliberately) wrong.
#![cfg(not(feature = "verify-selftest"))]

use scc_core::runner::sim::SimRunner;
use scc_core::{run_with_scene, Backend};
use scc_telemetry::names;
use scc_verify::telemetry::{check_idle_quartiles, check_snapshot_schema, with_telemetry};
use scc_verify::{digest_case, golden_matrix, verify_scene};
use std::path::PathBuf;

fn pinned(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(format!("{name}.txt"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} — pin the telemetry-off digest first",
            path.display()
        )
    })
}

/// Observation must be free of observer effects: every golden case run
/// with telemetry on reproduces the telemetry-off pinned digest,
/// byte for byte.
#[test]
fn telemetry_on_leaves_every_golden_digest_unchanged() {
    for case in golden_matrix() {
        assert_eq!(
            digest_case(&with_telemetry(&case)),
            pinned(&case.name),
            "{}: enabling telemetry moved the golden digest",
            case.name
        );
    }
}

/// Every sim-backend snapshot across the 3×3 matrix passes the exporter
/// schema checks, and its idle histograms bracket the report's exact
/// Figure 15 quartiles.
#[test]
fn matrix_snapshots_pass_schema_and_reproduce_idle_quartiles() {
    for case in golden_matrix().iter().take(9) {
        let cfg = with_telemetry(case).cfg;
        let report = SimRunner::new(cfg, verify_scene()).run();
        let snap = report.telemetry.as_ref().expect("telemetry enabled");
        check_snapshot_schema(snap).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert!(
            snap.counter(names::FRAMES_TOTAL, &[]).map(|c| c.value) == Some(case.cfg.frames),
            "{}: frames counter disagrees with the config",
            case.name
        );
        check_idle_quartiles(&report).unwrap_or_else(|e| panic!("{}: {e}", case.name));
    }
}

/// The DES and native backends feed the same sink: their facade
/// outcomes carry schema-clean snapshots with the delivered frame count.
#[test]
fn des_and_native_snapshots_pass_schema_checks() {
    let base = &golden_matrix()[0]; // single-renderer: valid for DES too
    let cfg = with_telemetry(base).cfg;
    for backend in [Backend::Des, Backend::Native] {
        let outcome = run_with_scene(&cfg, backend, verify_scene());
        let snap = outcome
            .telemetry
            .as_ref()
            .unwrap_or_else(|| panic!("{}: telemetry enabled", backend.name()));
        check_snapshot_schema(snap).unwrap_or_else(|e| panic!("{}: {e}", backend.name()));
        assert_eq!(
            snap.counter(names::FRAMES_TOTAL, &[]).map(|c| c.value),
            Some(cfg.frames),
            "{}: frames counter disagrees with the config",
            backend.name()
        );
    }
}
