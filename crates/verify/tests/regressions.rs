//! Replay every shrunk fuzzer repro under `tests/regressions/` and
//! require the full oracle to pass. A repro lands there when the fuzzer
//! finds (and minimises) a failing configuration; once the bug is fixed
//! the file stays behind as a tripwire.
//!
//! Disabled under `verify-selftest`: the planted mutants make every
//! repro (deliberately) fail.
#![cfg(not(feature = "verify-selftest"))]

use scc_verify::fuzz::{run_oracle, FuzzCase};
use std::path::PathBuf;

fn regressions_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/regressions")
}

#[test]
fn every_saved_repro_passes_the_oracle() {
    let dir = regressions_dir();
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("tests/regressions exists") {
        let path = entry.expect("read dir entry").path();
        if path.extension().is_none_or(|e| e != "txt") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read repro");
        let case = FuzzCase::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = run_oracle(&case);
        assert!(
            outcome.failures.is_empty(),
            "{}: {:?}",
            path.display(),
            outcome.failures
        );
        replayed += 1;
    }
    assert!(replayed > 0, "no repro files found in {}", dir.display());
}
