//! Property-based tests of the RCCE-style communicator: ordering,
//! payload integrity and collective correctness under random traffic.

use bytes::Bytes;
use proptest::prelude::*;
use scc_rcce::{broadcast, communicator, gather, scatter, MpbConfig};
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn point_to_point_preserves_order_and_payload(
        msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..40)
    ) {
        let mut eps = communicator(2, 4, MpbConfig::default());
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let expect = msgs.clone();
        let sender = thread::spawn(move || {
            for m in msgs {
                a.send(1, Bytes::from(m)).unwrap();
            }
        });
        for e in &expect {
            let got = b.recv(0).unwrap();
            prop_assert_eq!(&got[..], &e[..]);
        }
        sender.join().unwrap();
    }

    #[test]
    fn interleaved_sources_stay_independent(
        from_a in prop::collection::vec(any::<u8>(), 1..30),
        from_b in prop::collection::vec(any::<u8>(), 1..30),
    ) {
        let mut eps = communicator(3, 4, MpbConfig::default());
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let (ea, eb) = (from_a.clone(), from_b.clone());
        let ta = thread::spawn(move || {
            for &x in &ea {
                a.send(2, Bytes::from(vec![x])).unwrap();
            }
        });
        let tb = thread::spawn(move || {
            for &x in &eb {
                b.send(2, Bytes::from(vec![x])).unwrap();
            }
        });
        // Receive from each source in its own order, interleaved.
        let (mut ia, mut ib) = (0, 0);
        while ia < from_a.len() || ib < from_b.len() {
            if ia < from_a.len() {
                let got = c.recv(0).unwrap();
                prop_assert_eq!(got[0], from_a[ia]);
                ia += 1;
            }
            if ib < from_b.len() {
                let got = c.recv(1).unwrap();
                prop_assert_eq!(got[0], from_b[ib]);
                ib += 1;
            }
        }
        ta.join().unwrap();
        tb.join().unwrap();
    }

    #[test]
    fn scatter_gather_roundtrip(
        n in 2usize..6,
        payload_len in 1usize..32,
        seed in any::<u8>(),
    ) {
        // Root scatters distinct parts; every rank transforms its part;
        // root gathers and checks.
        let eps = communicator(n, n, MpbConfig::default());
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                thread::spawn(move || -> Option<Vec<Bytes>> {
                    let parts = (ep.rank() == 0).then(|| {
                        (0..ep.size())
                            .map(|i| Bytes::from(vec![i as u8 ^ seed; payload_len]))
                            .collect::<Vec<_>>()
                    });
                    let mine = scatter(&ep, 0, parts).unwrap();
                    // Transform: increment every byte.
                    let transformed: Vec<u8> = mine.iter().map(|b| b.wrapping_add(1)).collect();
                    gather(&ep, 0, Bytes::from(transformed)).unwrap()
                })
            })
            .collect();
        let mut root_result = None;
        for h in handles {
            if let Some(r) = h.join().unwrap() {
                root_result = Some(r);
            }
        }
        let all = root_result.expect("root gathered");
        for (i, part) in all.iter().enumerate() {
            let expect = vec![(i as u8 ^ seed).wrapping_add(1); payload_len];
            prop_assert_eq!(&part[..], &expect[..]);
        }
    }

    #[test]
    fn broadcast_delivers_identical_payload(
        n in 2usize..6,
        payload in prop::collection::vec(any::<u8>(), 0..64),
        root_pick in any::<u8>(),
    ) {
        let root = root_pick as usize % n;
        let eps = communicator(n, n, MpbConfig::default());
        let expect = payload.clone();
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let payload = payload.clone();
                thread::spawn(move || {
                    let arg = (ep.rank() == root).then(|| Bytes::from(payload));
                    broadcast(&ep, root, arg).unwrap().to_vec()
                })
            })
            .collect();
        for h in handles {
            prop_assert_eq!(h.join().unwrap(), expect.clone());
        }
    }

    #[test]
    fn mpb_chunks_monotone_in_payload(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let mpb = MpbConfig::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(mpb.chunks(lo) <= mpb.chunks(hi));
        prop_assert!(mpb.wire_bytes(hi) >= hi);
        // Chunk maths consistent with capacity.
        prop_assert!(mpb.chunks(hi) * mpb.payload_per_chunk() >= hi);
    }
}
