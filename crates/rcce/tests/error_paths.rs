//! Integration tests for the communicator's failure surfaces: every way a
//! reliable operation can give up must end in the *right* [`RcceError`]
//! variant, in bounded time — the ARQ never spins forever, a corrupted
//! stream is distinguishable from a silent one, and heartbeat monitoring
//! reports silence and garbage distinctly. The self-healing supervisor
//! builds on exactly these guarantees.

use bytes::Bytes;
use scc_rcce::{
    await_heartbeat, communicator, decode_claim_ack, decode_steal_grant, decode_steal_request,
    decode_task_claim, encode_claim_ack, encode_steal_grant, encode_steal_request,
    encode_task_claim, poll_heartbeat, send_heartbeat, ClaimAck, ClaimReject, ClaimTable,
    ClaimVerdict, MpbConfig, RcceError, Reliability, StealGrant, StealRequest, TaskClaim, TaskId,
};
use scc_sim::{FaultConfig, FaultPlan};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn fast() -> Reliability {
    Reliability {
        timeout: Duration::from_millis(10),
        retries: 2,
    }
}

fn plan(seed: u64, drop: f64, corrupt: f64) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new(FaultConfig {
        seed,
        drop_rate: drop,
        corrupt_rate: corrupt,
        ..FaultConfig::default()
    }))
}

/// A stream whose every envelope is mangled in flight: the receiver sees
/// traffic but never an intact CRC, so it must report `Corrupt` (not
/// `Timeout`), while the sender — acknowledged by nobody — exhausts its
/// retry budget.
#[test]
fn corrupted_stream_surfaces_corrupt_on_both_ends() {
    let mut eps = communicator(2, 4, MpbConfig::default());
    let mut b = eps.pop().unwrap();
    let mut a = eps.pop().unwrap();
    a.set_reliability(fast());
    b.set_reliability(fast());
    a.set_fault_plan(plan(11, 0.0, 1.0));
    let sender = thread::spawn(move || a.send_reliable(1, Bytes::from_static(&[0xAB; 256])));
    assert_eq!(b.recv_reliable(0), Err(RcceError::Corrupt { rank: 0 }));
    assert_eq!(
        sender.join().expect("sender thread"),
        Err(RcceError::RetriesExhausted {
            rank: 1,
            attempts: 3
        })
    );
}

/// A stream whose every envelope is dropped outright: the receiver sees
/// nothing at all and must report `Timeout`, not `Corrupt`.
#[test]
fn dropped_stream_surfaces_timeout_at_the_receiver() {
    let mut eps = communicator(2, 4, MpbConfig::default());
    let mut b = eps.pop().unwrap();
    let mut a = eps.pop().unwrap();
    a.set_reliability(fast());
    b.set_reliability(fast());
    a.set_fault_plan(plan(23, 1.0, 0.0));
    let sender = thread::spawn(move || a.send_reliable(1, Bytes::from_static(b"gone")));
    assert_eq!(b.recv_reliable(0), Err(RcceError::Timeout { rank: 0 }));
    assert_eq!(
        sender.join().expect("sender thread"),
        Err(RcceError::RetriesExhausted {
            rank: 1,
            attempts: 3
        })
    );
}

/// An unacknowledged send gives up after its exponential-backoff budget
/// rather than retrying forever: the error carries the attempt count and
/// the call returns within a small multiple of the worst-case patience
/// (sum of all backoff windows).
#[test]
fn unacknowledged_send_gives_up_in_bounded_time() {
    let mut eps = communicator(2, 4, MpbConfig::default());
    let _b = eps.pop().unwrap(); // alive but never receiving: no acks.
    let mut a = eps.pop().unwrap();
    a.set_reliability(fast());
    let t0 = Instant::now();
    let got = a.send_reliable(1, Bytes::from_static(&[1; 64]));
    let elapsed = t0.elapsed();
    assert_eq!(
        got,
        Err(RcceError::RetriesExhausted {
            rank: 1,
            attempts: 3
        })
    );
    // Windows: 10 + 20 + 40 = 70 ms of patience; anything wildly past
    // that means the ARQ looped instead of giving up.
    assert!(
        elapsed < Duration::from_millis(700),
        "ARQ did not give up promptly: {elapsed:?}"
    );
}

/// A monitored peer that never beats: `await_heartbeat` reports `Timeout`
/// against that rank within (roughly) the requested window.
#[test]
fn heartbeat_silence_surfaces_timeout() {
    let mut eps = communicator(2, 4, MpbConfig::default());
    let b = eps.pop().unwrap();
    let _a = eps.pop().unwrap(); // silent.
    let t0 = Instant::now();
    assert_eq!(
        await_heartbeat(&b, 0, Duration::from_millis(30)),
        Err(RcceError::Timeout { rank: 0 })
    );
    assert!(t0.elapsed() >= Duration::from_millis(30));
}

/// Garbage on the heartbeat channel — wrong length or wrong magic — is
/// reported as `Corrupt`, never silently decoded into a bogus liveness
/// signal.
#[test]
fn undecodable_heartbeat_surfaces_corrupt() {
    let mut eps = communicator(2, 4, MpbConfig::default());
    let b = eps.pop().unwrap();
    let a = eps.pop().unwrap();
    a.send(1, Bytes::from_static(b"not a heartbeat")).unwrap();
    assert_eq!(poll_heartbeat(&b, 0), Err(RcceError::Corrupt { rank: 0 }));
    // An intact beat right after still flows — the error is per-message.
    send_heartbeat(&a, 1, 7).unwrap();
    let hb = await_heartbeat(&b, 0, Duration::from_millis(500)).expect("intact beat decodes");
    assert_eq!((hb.rank, hb.seq), (0, 7));
}

/// Addressing errors fail fast on every reliable entry point.
#[test]
fn invalid_ranks_are_rejected_up_front() {
    let mut eps = communicator(2, 4, MpbConfig::default());
    let _b = eps.pop().unwrap();
    let a = eps.pop().unwrap();
    let invalid = |rank| RcceError::InvalidRank { rank, size: 2 };
    assert_eq!(
        a.send_reliable(0, Bytes::from_static(b"self")),
        Err(invalid(0))
    );
    assert_eq!(
        a.send_reliable(9, Bytes::from_static(b"oob")),
        Err(invalid(9))
    );
    assert_eq!(a.recv_reliable(0).unwrap_err(), invalid(0));
    assert_eq!(send_heartbeat(&a, 0, 0), Err(invalid(0)));
    assert_eq!(
        await_heartbeat(&a, 9, Duration::from_millis(1)),
        Err(invalid(9))
    );
}

// ---- steal/claim wire messages (the task runtime's control plane) ----

fn steal_task() -> TaskId {
    TaskId {
        frame: 3,
        strip: 1,
        group: 2,
    }
}

/// A truncated steal frame — any prefix of any of the four messages —
/// decodes to `None` rather than a bogus message.
#[test]
fn truncated_steal_frames_are_rejected() {
    let frames: Vec<Bytes> = vec![
        encode_steal_request(StealRequest {
            thief: 1,
            epoch: 0,
            nonce: 5,
        }),
        encode_steal_grant(StealGrant {
            victim: 2,
            epoch: 0,
            nonce: 5,
            task: steal_task(),
        }),
        encode_task_claim(TaskClaim {
            thief: 1,
            epoch: 0,
            nonce: 5,
        }),
        encode_claim_ack(ClaimAck {
            accepted: true,
            nonce: 5,
        }),
    ];
    for wire in frames {
        for cut in 0..wire.len() {
            let short = &wire[..cut];
            assert_eq!(decode_steal_request(short), None, "cut {cut}");
            assert_eq!(decode_steal_grant(short), None, "cut {cut}");
            assert_eq!(decode_task_claim(short), None, "cut {cut}");
            assert_eq!(decode_claim_ack(short), None, "cut {cut}");
        }
    }
}

/// A single flipped bit anywhere in a steal frame trips the embedded
/// CRC: the frame decodes to `None` instead of smuggling a wrong nonce,
/// epoch, or task identity into the handshake.
#[test]
fn corrupt_crc_rejects_every_steal_frame() {
    let wire = encode_steal_grant(StealGrant {
        victim: 2,
        epoch: 1,
        nonce: 77,
        task: steal_task(),
    });
    assert!(decode_steal_grant(&wire).is_some(), "intact frame decodes");
    for byte in 0..wire.len() {
        let mut bad = wire.to_vec();
        bad[byte] ^= 0x01;
        assert_eq!(
            decode_steal_grant(&bad),
            None,
            "bit flip at byte {byte} undetected"
        );
    }
    let wire = encode_task_claim(TaskClaim {
        thief: 1,
        epoch: 1,
        nonce: 77,
    });
    for byte in 0..wire.len() {
        let mut bad = wire.to_vec();
        bad[byte] ^= 0x80;
        assert_eq!(decode_task_claim(&bad), None, "flip at byte {byte}");
    }
}

/// A claim whose epoch does not match the victim's offer — the thief is
/// working from a pre-fence grant — is rejected, and after the fence the
/// nonce is gone entirely; the task went back to the victim's queue
/// either way.
#[test]
fn claim_for_unknown_or_fenced_epoch_is_rejected() {
    let mut table = ClaimTable::new();
    table.offer(10, 1, steal_task());
    // Thief claims with a made-up future epoch: rejected as stale.
    assert_eq!(
        table.claim(TaskClaim {
            thief: 1,
            epoch: 99,
            nonce: 10
        }),
        ClaimVerdict::Rejected(ClaimReject::StaleEpoch)
    );
    // Supervisor fences the victim: the offer's task is reclaimed...
    assert_eq!(table.fence(1), vec![steal_task()]);
    // ...and the straggling claim for the old epoch finds nothing.
    assert_eq!(
        table.claim(TaskClaim {
            thief: 1,
            epoch: 0,
            nonce: 10
        }),
        ClaimVerdict::Rejected(ClaimReject::UnknownNonce)
    );
}

/// Two thieves racing for the same grant: exactly one wins ownership.
/// The winner's retransmitted claim stays accepted (idempotence), the
/// loser is rejected every time — a task is never handed out twice.
#[test]
fn double_claim_is_rejected_exactly_once_semantics() {
    let mut table = ClaimTable::new();
    table.offer(42, 1, steal_task());
    let won = table.claim(TaskClaim {
        thief: 1,
        epoch: 0,
        nonce: 42,
    });
    assert_eq!(won, ClaimVerdict::Accepted(steal_task()));
    // A different thief replaying the same nonce never gets the task.
    for _ in 0..3 {
        assert_eq!(
            table.claim(TaskClaim {
                thief: 2,
                epoch: 0,
                nonce: 42
            }),
            ClaimVerdict::Rejected(ClaimReject::ForeignThief)
        );
    }
    // The winner's duplicate (lost-ack retransmit) is answered the same.
    assert_eq!(
        table.claim(TaskClaim {
            thief: 1,
            epoch: 0,
            nonce: 42,
        }),
        ClaimVerdict::Accepted(steal_task())
    );
    // And the victim can no longer cancel what it no longer owns.
    assert_eq!(table.cancel(42), None);
}

/// Steal control frames survive a real (lossless) channel round trip and
/// a cross-decode attempt: a grant never parses as a request and vice
/// versa, so a misrouted frame cannot corrupt the handshake state.
#[test]
fn steal_frames_cross_decode_as_none_over_a_channel() {
    let mut eps = communicator(2, 4, MpbConfig::default());
    let b = eps.pop().unwrap();
    let a = eps.pop().unwrap();
    a.send(
        1,
        encode_steal_request(StealRequest {
            thief: 0,
            epoch: 0,
            nonce: 1,
        }),
    )
    .unwrap();
    let raw = b.recv(0).unwrap();
    assert_eq!(decode_steal_grant(&raw), None, "request is not a grant");
    assert_eq!(decode_claim_ack(&raw), None, "request is not an ack");
    assert_eq!(
        decode_steal_request(&raw),
        Some(StealRequest {
            thief: 0,
            epoch: 0,
            nonce: 1
        })
    );
}
