//! CRC-32 (IEEE 802.3) payload checksums.
//!
//! The real RCCE moves payloads through MPB windows and DRAM partitions
//! with no end-to-end integrity check; the fault-tolerant protocol in
//! [`crate::comm`] adds one so injected corruption (see
//! `scc_sim::fault`) is detected rather than silently propagated into
//! frames. Table-driven, reflected polynomial `0xEDB88320`, byte-at-a-time
//! — plenty for kilobyte strips at native-runner rates.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32/ISO-HDLC of `data` (the common "crc32" with init and final
/// XOR of `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0xA5u8; 4096];
        let base = crc32(&data);
        for byte in [0usize, 1, 100, 4095] {
            for bit in 0..8 {
                let mut mutated = data.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(crc32(&mutated), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
