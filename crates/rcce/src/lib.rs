//! # scc-rcce — RCCE-style message passing
//!
//! The paper programs the SCC with Intel's RCCE library ("similar to the
//! familiar MPI libraries", §VI). This crate reproduces its programming
//! model for the native (real threads) execution path of the macro
//! pipeline:
//!
//! * [`comm`] — ranked endpoints with blocking, source-matched
//!   `send`/`recv`, bounded windows for MPB backpressure, barriers, and
//!   per-endpoint wait-time instrumentation (feeding the Figure 15
//!   idle-time measurements);
//! * [`onesided`] — RCCE's actual core layer: one-sided `put`/`get`
//!   into MPB windows with flag handshakes, plus the chunked two-sided
//!   protocol built on them (the origin of the per-chunk costs in
//!   [`mpb`]);
//! * [`collective`] — broadcast / gather / scatter built over send/recv;
//! * [`health`] — heartbeat datagrams and the phi-style accrual failure
//!   detector feeding the supervision control plane;
//! * [`steal`] — work-stealing control messages (request / grant /
//!   claim / ack) and the victim-side [`ClaimTable`] that makes task
//!   hand-off idempotent under message loss;
//! * [`mpb`] — the Message Passing Buffer chunking model shared with the
//!   simulator's timing path.
//!
//! The *simulated* timing of SCC messaging (payload landing in the
//! receiver's DRAM partition) lives in `scc-sim::platform`; this crate is
//! the functional/parallel counterpart.

pub mod collective;
pub mod comm;
pub mod crc;
pub mod error;
pub mod health;
pub mod mpb;
pub mod onesided;
pub mod steal;

pub use collective::{broadcast, gather, scatter};
pub use comm::{communicator, CommStats, Endpoint, Reliability};
pub use crc::crc32;
pub use error::RcceError;
pub use health::{
    await_heartbeat, decode_heartbeat, encode_heartbeat, poll_heartbeat, record_heartbeat_miss,
    send_heartbeat, Heartbeat, PhiDetector, HEARTBEAT_WIRE_BYTES,
};
pub use mpb::MpbConfig;
pub use onesided::{one_sided, recv_via_get, send_via_put, OneSided};
pub use steal::{
    decode_claim_ack, decode_steal_grant, decode_steal_request, decode_task_claim,
    encode_claim_ack, encode_steal_grant, encode_steal_request, encode_task_claim, ClaimAck,
    ClaimReject, ClaimTable, ClaimVerdict, StealGrant, StealRequest, TaskClaim, TaskId,
    CLAIM_ACK_WIRE_BYTES, STEAL_GRANT_WIRE_BYTES, STEAL_REQUEST_WIRE_BYTES, TASK_CLAIM_WIRE_BYTES,
};
