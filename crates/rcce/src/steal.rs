//! Work-stealing control messages and the idempotent task-claim
//! handshake.
//!
//! The task runtime (scc-core's `taskrt` module) balances load by
//! stealing strips between per-core deques. Steal traffic rides the same
//! lossy transport as frames, so the protocol must survive any single
//! message being dropped, delayed, or corrupted without ever executing a
//! task twice or losing one. The design is a two-phase handshake with
//! victim-side bookkeeping:
//!
//! 1. thief → victim: [`StealRequest`] (carries the thief's rank, its
//!    view of the victim's fence *epoch*, and a fresh *nonce*);
//! 2. victim → thief: [`StealGrant`] naming one task, recorded in the
//!    victim's [`ClaimTable`] as an outstanding offer;
//! 3. thief → victim: [`TaskClaim`] echoing the nonce — only an
//!    *accepted* claim transfers ownership;
//! 4. victim → thief: [`ClaimAck`] with the verdict.
//!
//! Loss at any step is safe: an unclaimed offer times out on the victim
//! and the task returns to its deque; a re-sent claim for an
//! already-accepted nonce is answered identically (idempotence), so a
//! lost ack cannot double-execute; a claim for a nonce the victim never
//! offered — or offered under an older epoch, or to a different thief —
//! is rejected and the thief backs off. Epochs advance when the
//! supervisor fences a core, instantly invalidating every offer that
//! predates the fence (stale-steal rejection).
//!
//! Every message carries its own CRC-32 in addition to the transport's
//! frame checksum: steal control frames are small and load-bearing, so
//! they self-validate even when handed around outside an ARQ channel
//! (e.g. the simulator's virtual-time wire).

use crate::crc::crc32;
use bytes::Bytes;
use std::collections::BTreeMap;

/// Wire size of a [`StealRequest`] (magic, thief, epoch, nonce, crc).
pub const STEAL_REQUEST_WIRE_BYTES: usize = 28;
/// Wire size of a [`StealGrant`] (magic, victim, epoch, nonce, task
/// triple, crc).
pub const STEAL_GRANT_WIRE_BYTES: usize = 40;
/// Wire size of a [`TaskClaim`] (magic, thief, epoch, nonce, crc).
pub const TASK_CLAIM_WIRE_BYTES: usize = 28;
/// Wire size of a [`ClaimAck`] (magic, verdict, nonce, crc).
pub const CLAIM_ACK_WIRE_BYTES: usize = 20;

const STEAL_REQUEST_MAGIC: u32 = 0x5354_4C31; // "STL1"
const STEAL_GRANT_MAGIC: u32 = 0x5354_4C32; // "STL2"
const TASK_CLAIM_MAGIC: u32 = 0x5354_4C33; // "STL3"
const CLAIM_ACK_MAGIC: u32 = 0x5354_4C34; // "STL4"

/// The unit of stolen work: one strip of one frame at one stage group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TaskId {
    /// Frame index within the film.
    pub frame: u32,
    /// Strip index within the frame.
    pub strip: u32,
    /// Stage-group index within the `StagePlan`.
    pub group: u32,
}

/// Phase 1: a hungry thief asks a victim for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealRequest {
    /// Rank of the requesting core.
    pub thief: u32,
    /// The thief's view of the victim's fence epoch.
    pub epoch: u64,
    /// Fresh per-request nonce; echoed through the whole handshake.
    pub nonce: u64,
}

/// Phase 2: the victim offers one task (ownership not yet transferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealGrant {
    /// Rank of the granting core.
    pub victim: u32,
    /// Victim's current fence epoch at grant time.
    pub epoch: u64,
    /// Nonce copied from the request.
    pub nonce: u64,
    /// The offered task.
    pub task: TaskId,
}

/// Phase 3: the thief commits to the offered task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskClaim {
    /// Rank of the claiming core.
    pub thief: u32,
    /// Epoch copied from the grant.
    pub epoch: u64,
    /// Nonce copied from the grant.
    pub nonce: u64,
}

/// Phase 4: the victim's verdict on a claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClaimAck {
    /// Whether ownership transferred to the claiming thief.
    pub accepted: bool,
    /// Nonce the verdict is about.
    pub nonce: u64,
}

fn finish(mut raw: Vec<u8>) -> Bytes {
    let crc = crc32(&raw);
    raw.extend_from_slice(&crc.to_le_bytes());
    Bytes::from(raw)
}

/// Check length, magic, and trailing CRC; return the body between them.
fn open(raw: &[u8], want_len: usize, want_magic: u32) -> Option<&[u8]> {
    if raw.len() != want_len {
        return None;
    }
    let magic = u32::from_le_bytes(raw[0..4].try_into().unwrap());
    if magic != want_magic {
        return None;
    }
    let body_end = want_len - 4;
    let crc = u32::from_le_bytes(raw[body_end..].try_into().unwrap());
    if crc32(&raw[..body_end]) != crc {
        return None;
    }
    Some(&raw[4..body_end])
}

fn u32_at(body: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(body[off..off + 4].try_into().unwrap())
}

fn u64_at(body: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(body[off..off + 8].try_into().unwrap())
}

/// Serialise a steal request to its 28-byte wire form.
pub fn encode_steal_request(msg: StealRequest) -> Bytes {
    let mut raw = Vec::with_capacity(STEAL_REQUEST_WIRE_BYTES);
    raw.extend_from_slice(&STEAL_REQUEST_MAGIC.to_le_bytes());
    raw.extend_from_slice(&msg.thief.to_le_bytes());
    raw.extend_from_slice(&msg.epoch.to_le_bytes());
    raw.extend_from_slice(&msg.nonce.to_le_bytes());
    finish(raw)
}

/// Parse a wire payload as a steal request; `None` on wrong length,
/// magic, or CRC.
pub fn decode_steal_request(raw: &[u8]) -> Option<StealRequest> {
    let body = open(raw, STEAL_REQUEST_WIRE_BYTES, STEAL_REQUEST_MAGIC)?;
    Some(StealRequest {
        thief: u32_at(body, 0),
        epoch: u64_at(body, 4),
        nonce: u64_at(body, 12),
    })
}

/// Serialise a steal grant to its 40-byte wire form.
pub fn encode_steal_grant(msg: StealGrant) -> Bytes {
    let mut raw = Vec::with_capacity(STEAL_GRANT_WIRE_BYTES);
    raw.extend_from_slice(&STEAL_GRANT_MAGIC.to_le_bytes());
    raw.extend_from_slice(&msg.victim.to_le_bytes());
    raw.extend_from_slice(&msg.epoch.to_le_bytes());
    raw.extend_from_slice(&msg.nonce.to_le_bytes());
    raw.extend_from_slice(&msg.task.frame.to_le_bytes());
    raw.extend_from_slice(&msg.task.strip.to_le_bytes());
    raw.extend_from_slice(&msg.task.group.to_le_bytes());
    finish(raw)
}

/// Parse a wire payload as a steal grant; `None` on wrong length,
/// magic, or CRC.
pub fn decode_steal_grant(raw: &[u8]) -> Option<StealGrant> {
    let body = open(raw, STEAL_GRANT_WIRE_BYTES, STEAL_GRANT_MAGIC)?;
    Some(StealGrant {
        victim: u32_at(body, 0),
        epoch: u64_at(body, 4),
        nonce: u64_at(body, 12),
        task: TaskId {
            frame: u32_at(body, 20),
            strip: u32_at(body, 24),
            group: u32_at(body, 28),
        },
    })
}

/// Serialise a task claim to its 28-byte wire form.
pub fn encode_task_claim(msg: TaskClaim) -> Bytes {
    let mut raw = Vec::with_capacity(TASK_CLAIM_WIRE_BYTES);
    raw.extend_from_slice(&TASK_CLAIM_MAGIC.to_le_bytes());
    raw.extend_from_slice(&msg.thief.to_le_bytes());
    raw.extend_from_slice(&msg.epoch.to_le_bytes());
    raw.extend_from_slice(&msg.nonce.to_le_bytes());
    finish(raw)
}

/// Parse a wire payload as a task claim; `None` on wrong length,
/// magic, or CRC.
pub fn decode_task_claim(raw: &[u8]) -> Option<TaskClaim> {
    let body = open(raw, TASK_CLAIM_WIRE_BYTES, TASK_CLAIM_MAGIC)?;
    Some(TaskClaim {
        thief: u32_at(body, 0),
        epoch: u64_at(body, 4),
        nonce: u64_at(body, 12),
    })
}

/// Serialise a claim ack to its 20-byte wire form.
pub fn encode_claim_ack(msg: ClaimAck) -> Bytes {
    let mut raw = Vec::with_capacity(CLAIM_ACK_WIRE_BYTES);
    raw.extend_from_slice(&CLAIM_ACK_MAGIC.to_le_bytes());
    raw.extend_from_slice(&u32::from(msg.accepted).to_le_bytes());
    raw.extend_from_slice(&msg.nonce.to_le_bytes());
    finish(raw)
}

/// Parse a wire payload as a claim ack; `None` on wrong length, magic,
/// CRC, or a verdict byte that is neither 0 nor 1.
pub fn decode_claim_ack(raw: &[u8]) -> Option<ClaimAck> {
    let body = open(raw, CLAIM_ACK_WIRE_BYTES, CLAIM_ACK_MAGIC)?;
    let verdict = u32_at(body, 0);
    if verdict > 1 {
        return None;
    }
    Some(ClaimAck {
        accepted: verdict == 1,
        nonce: u64_at(body, 4),
    })
}

/// Why a claim was turned down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimReject {
    /// The victim never offered this nonce (or already cancelled it).
    UnknownNonce,
    /// The offer predates the victim's current fence epoch.
    StaleEpoch,
    /// The nonce was offered (or already granted) to a different thief.
    ForeignThief,
}

/// The victim's answer to one [`TaskClaim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimVerdict {
    /// Ownership transferred (or had already transferred to this same
    /// thief — re-sent claims are answered identically).
    Accepted(TaskId),
    /// Ownership did not transfer; the task stays with the victim.
    Rejected(ClaimReject),
}

#[derive(Debug, Clone, Copy)]
struct Offer {
    thief: u32,
    epoch: u64,
    task: TaskId,
    accepted: bool,
}

/// Victim-side ledger of outstanding and settled steal offers.
///
/// The table is what makes the handshake *exactly-once*: a task leaves
/// the victim only through [`ClaimTable::claim`] accepting it, every
/// other path (timeout via [`ClaimTable::cancel`], fence via
/// [`ClaimTable::fence`]) returns the task to the victim's deque, and a
/// duplicate claim from the accepted thief is answered with the same
/// verdict instead of a second task.
#[derive(Debug, Default)]
pub struct ClaimTable {
    epoch: u64,
    offers: BTreeMap<u64, Offer>,
}

impl ClaimTable {
    /// An empty table at epoch 0.
    pub fn new() -> ClaimTable {
        ClaimTable::default()
    }

    /// The current fence epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record an outstanding grant of `task` to `thief` under `nonce`.
    /// Panics on nonce reuse — nonces are the handshake's identity and
    /// the runtime draws them from a monotone counter.
    pub fn offer(&mut self, nonce: u64, thief: u32, task: TaskId) {
        let prev = self.offers.insert(
            nonce,
            Offer {
                thief,
                epoch: self.epoch,
                task,
                accepted: false,
            },
        );
        assert!(prev.is_none(), "steal nonce {nonce} reused");
    }

    /// Judge one claim. Accepting marks the offer settled; claiming an
    /// already-accepted nonce from the same thief re-returns `Accepted`
    /// (idempotent retransmit), from any other thief returns
    /// [`ClaimReject::ForeignThief`].
    pub fn claim(&mut self, claim: TaskClaim) -> ClaimVerdict {
        let Some(offer) = self.offers.get_mut(&claim.nonce) else {
            return ClaimVerdict::Rejected(ClaimReject::UnknownNonce);
        };
        if offer.thief != claim.thief {
            return ClaimVerdict::Rejected(ClaimReject::ForeignThief);
        }
        if offer.epoch < self.epoch || claim.epoch != offer.epoch {
            return ClaimVerdict::Rejected(ClaimReject::StaleEpoch);
        }
        offer.accepted = true;
        ClaimVerdict::Accepted(offer.task)
    }

    /// Withdraw an unaccepted offer (victim-side claim timeout) and get
    /// its task back for re-queueing. `None` if the nonce is unknown or
    /// the claim already transferred ownership.
    pub fn cancel(&mut self, nonce: u64) -> Option<TaskId> {
        match self.offers.get(&nonce) {
            Some(offer) if !offer.accepted => {
                let task = offer.task;
                self.offers.remove(&nonce);
                Some(task)
            }
            _ => None,
        }
    }

    /// Advance the fence epoch, invalidating every unaccepted offer made
    /// before it. Returns the reclaimed tasks for re-queueing.
    pub fn fence(&mut self, new_epoch: u64) -> Vec<TaskId> {
        assert!(new_epoch > self.epoch, "fence epoch must advance");
        self.epoch = new_epoch;
        let stale: Vec<u64> = self
            .offers
            .iter()
            .filter(|(_, o)| !o.accepted && o.epoch < new_epoch)
            .map(|(&n, _)| n)
            .collect();
        stale
            .into_iter()
            .map(|n| self.offers.remove(&n).expect("stale nonce present").task)
            .collect()
    }

    /// Number of offers the victim is still waiting on.
    pub fn outstanding(&self) -> usize {
        self.offers.values().filter(|o| !o.accepted).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TASK: TaskId = TaskId {
        frame: 7,
        strip: 2,
        group: 1,
    };

    #[test]
    fn all_four_codecs_round_trip() {
        let req = StealRequest {
            thief: 9,
            epoch: 3,
            nonce: 0xDEAD,
        };
        assert_eq!(decode_steal_request(&encode_steal_request(req)), Some(req));
        let grant = StealGrant {
            victim: 4,
            epoch: 3,
            nonce: 0xDEAD,
            task: TASK,
        };
        assert_eq!(decode_steal_grant(&encode_steal_grant(grant)), Some(grant));
        let claim = TaskClaim {
            thief: 9,
            epoch: 3,
            nonce: 0xDEAD,
        };
        assert_eq!(decode_task_claim(&encode_task_claim(claim)), Some(claim));
        for accepted in [true, false] {
            let ack = ClaimAck {
                accepted,
                nonce: 0xDEAD,
            };
            assert_eq!(decode_claim_ack(&encode_claim_ack(ack)), Some(ack));
        }
    }

    #[test]
    fn wire_sizes_are_pinned() {
        assert_eq!(
            encode_steal_request(StealRequest {
                thief: 0,
                epoch: 0,
                nonce: 0
            })
            .len(),
            STEAL_REQUEST_WIRE_BYTES
        );
        assert_eq!(
            encode_steal_grant(StealGrant {
                victim: 0,
                epoch: 0,
                nonce: 0,
                task: TASK
            })
            .len(),
            STEAL_GRANT_WIRE_BYTES
        );
        assert_eq!(
            encode_task_claim(TaskClaim {
                thief: 0,
                epoch: 0,
                nonce: 0
            })
            .len(),
            TASK_CLAIM_WIRE_BYTES
        );
        assert_eq!(
            encode_claim_ack(ClaimAck {
                accepted: true,
                nonce: 0
            })
            .len(),
            CLAIM_ACK_WIRE_BYTES
        );
    }

    #[test]
    fn claim_table_happy_path() {
        let mut table = ClaimTable::new();
        table.offer(1, 9, TASK);
        assert_eq!(table.outstanding(), 1);
        let verdict = table.claim(TaskClaim {
            thief: 9,
            epoch: 0,
            nonce: 1,
        });
        assert_eq!(verdict, ClaimVerdict::Accepted(TASK));
        assert_eq!(table.outstanding(), 0);
        // Retransmitted claim (lost ack) answered identically.
        let again = table.claim(TaskClaim {
            thief: 9,
            epoch: 0,
            nonce: 1,
        });
        assert_eq!(again, ClaimVerdict::Accepted(TASK), "idempotent re-claim");
    }

    #[test]
    fn foreign_unknown_and_stale_claims_are_rejected() {
        let mut table = ClaimTable::new();
        table.offer(1, 9, TASK);
        assert_eq!(
            table.claim(TaskClaim {
                thief: 8,
                epoch: 0,
                nonce: 1
            }),
            ClaimVerdict::Rejected(ClaimReject::ForeignThief)
        );
        assert_eq!(
            table.claim(TaskClaim {
                thief: 9,
                epoch: 0,
                nonce: 99
            }),
            ClaimVerdict::Rejected(ClaimReject::UnknownNonce)
        );
        assert_eq!(
            table.claim(TaskClaim {
                thief: 9,
                epoch: 7,
                nonce: 1
            }),
            ClaimVerdict::Rejected(ClaimReject::StaleEpoch),
            "claim epoch must match the offer's"
        );
    }

    #[test]
    fn cancel_reclaims_only_unaccepted_offers() {
        let mut table = ClaimTable::new();
        table.offer(1, 9, TASK);
        assert_eq!(table.cancel(1), Some(TASK));
        assert_eq!(table.cancel(1), None, "second cancel finds nothing");
        table.offer(2, 9, TASK);
        table.claim(TaskClaim {
            thief: 9,
            epoch: 0,
            nonce: 2,
        });
        assert_eq!(table.cancel(2), None, "accepted offers cannot be recalled");
    }

    #[test]
    fn fence_reclaims_stale_offers_and_blocks_their_claims() {
        let mut table = ClaimTable::new();
        table.offer(1, 9, TASK);
        let reclaimed = table.fence(1);
        assert_eq!(reclaimed, vec![TASK]);
        assert_eq!(table.epoch(), 1);
        assert_eq!(
            table.claim(TaskClaim {
                thief: 9,
                epoch: 0,
                nonce: 1
            }),
            ClaimVerdict::Rejected(ClaimReject::UnknownNonce),
            "fenced offers are gone entirely"
        );
        // Accepted offers survive a fence (ownership already moved).
        table.offer(2, 9, TASK);
        table.claim(TaskClaim {
            thief: 9,
            epoch: 1,
            nonce: 2,
        });
        assert!(table.fence(2).is_empty());
    }
}
