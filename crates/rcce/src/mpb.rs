//! Message Passing Buffer (MPB) model.
//!
//! Each SCC tile contributes 16 KiB of on-die SRAM (8 KiB per core) that
//! RCCE uses as its transfer window: a `send` of more than one window's
//! worth of payload is broken into chunks, each round-tripping a
//! flag-handshake with the receiver. The chunk count is the multiplier on
//! the per-message software overhead, and is the reason large frames are
//! "divided into multiple sub-images and sent one after another" (§VI-A).

use serde::Serialize;

/// MPB geometry and protocol constants.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MpbConfig {
    /// Usable payload bytes per core's MPB window.
    pub window_bytes: u64,
    /// Bytes reserved per chunk for flags/headers.
    pub header_bytes: u64,
}

impl Default for MpbConfig {
    fn default() -> Self {
        MpbConfig {
            window_bytes: 8 * 1024,
            header_bytes: 32,
        }
    }
}

impl MpbConfig {
    /// Payload capacity of one chunk.
    pub fn payload_per_chunk(&self) -> u64 {
        self.window_bytes - self.header_bytes
    }

    /// Number of chunks needed to move `bytes` of payload.
    pub fn chunks(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1 // a zero-byte message still performs one handshake
        } else {
            bytes.div_ceil(self.payload_per_chunk())
        }
    }

    /// Total bytes that actually cross the interconnect for `bytes` of
    /// payload (headers included).
    pub fn wire_bytes(&self, bytes: u64) -> u64 {
        bytes + self.chunks(bytes) * self.header_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_scc() {
        let m = MpbConfig::default();
        assert_eq!(m.window_bytes, 8192);
        assert_eq!(m.payload_per_chunk(), 8160);
    }

    #[test]
    fn chunk_counts() {
        let m = MpbConfig {
            window_bytes: 1024,
            header_bytes: 24,
        };
        assert_eq!(m.chunks(0), 1);
        assert_eq!(m.chunks(1), 1);
        assert_eq!(m.chunks(1000), 1);
        assert_eq!(m.chunks(1001), 2);
        assert_eq!(m.chunks(10_000), 10);
    }

    #[test]
    fn wire_bytes_include_headers() {
        let m = MpbConfig {
            window_bytes: 1024,
            header_bytes: 24,
        };
        assert_eq!(m.wire_bytes(1000), 1024);
        assert_eq!(m.wire_bytes(2000), 2000 + 48);
    }

    #[test]
    fn strip_sized_frames_need_many_chunks() {
        // A 640×512 RGBA frame strip (1/7th) is ~187 KiB -> dozens of
        // chunks through an 8 KiB window.
        let m = MpbConfig::default();
        let strip = 640 * 74 * 4;
        assert!(m.chunks(strip) >= 23);
    }
}
