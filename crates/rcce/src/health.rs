//! Heartbeat datagrams and phi-style failure suspicion.
//!
//! The supervision control plane (scc-core's `supervise` module) needs a
//! liveness signal that travels the *same* network as data traffic — on
//! the real SCC the MCPC can only learn a core died by noticing its
//! messages stopped. This module supplies both halves:
//!
//! * a fixed 16-byte heartbeat datagram (magic, sender rank, sequence
//!   number) sent over ordinary [`Endpoint`] channels, so heartbeats
//!   contend, corrupt, and drop exactly like frames do;
//! * an accrual-style [`PhiDetector`] that converts heartbeat arrival
//!   times into a dimensionless suspicion level (elapsed silence in
//!   heartbeat periods). A core is *slow* while suspicion is below the
//!   `phi_dead` threshold and *dead* once it crosses — the distinction
//!   the ISSUE's supervisor needs to avoid migrating a stage that was
//!   merely stalled.
//!
//! The detector is deterministic: suspicion is a pure function of the
//! last observed arrival and the queried clock, so the simulated runners
//! can evaluate it in virtual time while native runs feed it wall-clock
//! nanoseconds.

use crate::comm::Endpoint;
use crate::error::RcceError;
use bytes::Bytes;
use std::time::{Duration, Instant};

/// Wire size of one heartbeat datagram. Mirrored by the simulator's
/// ledger charge (`scc_sim::HEARTBEAT_BYTES`) so both execution paths
/// pay the same traffic for liveness.
pub const HEARTBEAT_WIRE_BYTES: usize = 16;

/// Magic prefix distinguishing heartbeats from frame payloads ("HBT1").
const HEARTBEAT_MAGIC: u32 = 0x4842_5431;

/// One liveness datagram: who is alive, and how recent the claim is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sender's communicator rank.
    pub rank: u32,
    /// Monotonically increasing per-sender sequence number (starts at 1).
    pub seq: u64,
}

/// Serialise a heartbeat to its 16-byte wire form.
pub fn encode_heartbeat(hb: Heartbeat) -> Bytes {
    let mut raw = Vec::with_capacity(HEARTBEAT_WIRE_BYTES);
    raw.extend_from_slice(&HEARTBEAT_MAGIC.to_le_bytes());
    raw.extend_from_slice(&hb.rank.to_le_bytes());
    raw.extend_from_slice(&hb.seq.to_le_bytes());
    Bytes::from(raw)
}

/// Parse a wire payload as a heartbeat; `None` if it is anything else
/// (wrong length or magic).
pub fn decode_heartbeat(raw: &[u8]) -> Option<Heartbeat> {
    if raw.len() != HEARTBEAT_WIRE_BYTES {
        return None;
    }
    let magic = u32::from_le_bytes(raw[0..4].try_into().unwrap());
    if magic != HEARTBEAT_MAGIC {
        return None;
    }
    Some(Heartbeat {
        rank: u32::from_le_bytes(raw[4..8].try_into().unwrap()),
        seq: u64::from_le_bytes(raw[8..16].try_into().unwrap()),
    })
}

/// Send one heartbeat from `ep` to the supervisor at rank `dst`.
pub fn send_heartbeat(ep: &Endpoint, dst: usize, seq: u64) -> Result<(), RcceError> {
    ep.send(
        dst,
        encode_heartbeat(Heartbeat {
            rank: ep.rank() as u32,
            seq,
        }),
    )?;
    ep.telemetry()
        .count(scc_telemetry::names::HEARTBEATS_TOTAL, &[], 1);
    Ok(())
}

/// Record a phi-detector death verdict on `ep`'s telemetry sink: a
/// `heartbeat_miss` event plus the miss counter. Call when
/// [`PhiDetector::is_dead`] first flips for a peer.
pub fn record_heartbeat_miss(ep: &Endpoint, peer: usize, suspicion: f64) {
    let tel = ep.telemetry();
    tel.count(scc_telemetry::names::HEARTBEAT_MISSES_TOTAL, &[], 1);
    tel.event(
        ep.telemetry_now_ns(),
        scc_telemetry::EventKind::HeartbeatMiss {
            core: peer as u32,
            suspicion,
        },
    );
}

/// Non-blocking poll for a heartbeat from `src`. `Ok(None)` when nothing
/// has arrived; a payload that is not a well-formed heartbeat surfaces as
/// [`RcceError::Corrupt`] — on the health channel, garbage is indis-
/// tinguishable from corruption.
pub fn poll_heartbeat(ep: &Endpoint, src: usize) -> Result<Option<Heartbeat>, RcceError> {
    match ep.try_recv(src)? {
        None => Ok(None),
        Some(raw) => decode_heartbeat(&raw)
            .map(Some)
            .ok_or(RcceError::Corrupt { rank: src }),
    }
}

/// Block until a heartbeat arrives from `src`, or fail with
/// [`RcceError::Timeout`] after `timeout` of silence. This is the
/// native-path analogue of the simulated supervisor's detection deadline.
pub fn await_heartbeat(
    ep: &Endpoint,
    src: usize,
    timeout: Duration,
) -> Result<Heartbeat, RcceError> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(hb) = poll_heartbeat(ep, src)? {
            return Ok(hb);
        }
        if Instant::now() >= deadline {
            return Err(RcceError::Timeout { rank: src });
        }
        std::thread::yield_now();
    }
}

/// Accrual failure detector over one peer's heartbeat stream.
///
/// Suspicion is the silence since the last accepted heartbeat, measured
/// in heartbeat periods; the peer is declared dead once suspicion reaches
/// `phi_dead`. Stale or duplicate sequence numbers are ignored so
/// reordered health traffic can only ever *advance* the liveness
/// evidence, never rewind it.
#[derive(Debug, Clone)]
pub struct PhiDetector {
    period_ns: u64,
    phi_dead: f64,
    last_arrival_ns: u64,
    last_seq: Option<u64>,
}

impl PhiDetector {
    /// A detector armed at `now_ns`: the peer gets a full grace window
    /// from arming before any suspicion accrues.
    pub fn new(period_ns: u64, phi_dead: f64, now_ns: u64) -> PhiDetector {
        assert!(period_ns > 0, "heartbeat period must be positive");
        assert!(
            phi_dead.is_finite() && phi_dead >= 1.0,
            "phi_dead must be a finite threshold >= 1"
        );
        PhiDetector {
            period_ns,
            phi_dead,
            last_arrival_ns: now_ns,
            last_seq: None,
        }
    }

    /// Record a heartbeat with sequence `seq` arriving at `now_ns`.
    /// Returns whether it advanced the detector (false for stale or
    /// duplicate sequence numbers).
    pub fn observe(&mut self, now_ns: u64, seq: u64) -> bool {
        if self.last_seq.is_some_and(|s| seq <= s) {
            return false;
        }
        self.last_seq = Some(seq);
        self.last_arrival_ns = self.last_arrival_ns.max(now_ns);
        true
    }

    /// Silence since the last accepted heartbeat, in periods.
    pub fn suspicion(&self, now_ns: u64) -> f64 {
        now_ns.saturating_sub(self.last_arrival_ns) as f64 / self.period_ns as f64
    }

    /// True once suspicion has reached the death threshold.
    pub fn is_dead(&self, now_ns: u64) -> bool {
        self.suspicion(now_ns) >= self.phi_dead
    }

    /// Highest sequence number accepted so far.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::communicator;
    use crate::mpb::MpbConfig;
    use std::thread;

    #[test]
    fn codec_round_trips_and_rejects_garbage() {
        let hb = Heartbeat { rank: 17, seq: 42 };
        let wire = encode_heartbeat(hb);
        assert_eq!(wire.len(), HEARTBEAT_WIRE_BYTES);
        assert_eq!(decode_heartbeat(&wire), Some(hb));
        assert_eq!(decode_heartbeat(&wire[..15]), None, "short payload");
        let mut bad = wire.to_vec();
        bad[0] ^= 0xFF;
        assert_eq!(decode_heartbeat(&bad), None, "wrong magic");
    }

    #[test]
    fn heartbeats_flow_over_a_real_channel() {
        let mut eps = communicator(2, 4, MpbConfig::default());
        let supervisor = eps.remove(1);
        let worker = eps.remove(0);
        let t = thread::spawn(move || {
            for seq in 1..=3u64 {
                send_heartbeat(&worker, 1, seq).unwrap();
            }
        });
        for seq in 1..=3u64 {
            let hb = await_heartbeat(&supervisor, 0, Duration::from_secs(5)).unwrap();
            assert_eq!(hb, Heartbeat { rank: 0, seq });
        }
        t.join().unwrap();
    }

    #[test]
    fn silence_times_out_and_garbage_is_corrupt() {
        let mut eps = communicator(2, 4, MpbConfig::default());
        let supervisor = eps.remove(1);
        let worker = eps.remove(0);
        assert_eq!(
            await_heartbeat(&supervisor, 0, Duration::from_millis(20)),
            Err(RcceError::Timeout { rank: 0 })
        );
        // A frame-sized payload on the health channel is corruption.
        worker
            .send(1, Bytes::from_static(b"not a heartbeat"))
            .unwrap();
        assert_eq!(
            poll_heartbeat(&supervisor, 0),
            Err(RcceError::Corrupt { rank: 0 })
        );
    }

    #[test]
    fn suspicion_accrues_linearly_and_crosses_at_phi() {
        let mut phi = PhiDetector::new(1_000, 4.0, 0);
        phi.observe(500, 1);
        assert_eq!(phi.suspicion(500), 0.0);
        assert_eq!(phi.suspicion(2_500), 2.0);
        assert!(!phi.is_dead(500 + 3_999));
        assert!(phi.is_dead(500 + 4_000), "threshold is inclusive");
    }

    #[test]
    fn stale_and_duplicate_sequences_do_not_rewind_liveness() {
        let mut phi = PhiDetector::new(1_000, 2.0, 0);
        assert!(phi.observe(1_000, 5));
        assert!(!phi.observe(9_000, 5), "duplicate seq ignored");
        assert!(!phi.observe(9_000, 3), "stale seq ignored");
        assert_eq!(phi.last_seq(), Some(5));
        assert!(phi.is_dead(1_000 + 2_000));
        assert!(phi.observe(4_000, 6), "fresh seq accepted");
        assert!(!phi.is_dead(4_500));
    }

    #[test]
    fn grace_window_before_first_heartbeat() {
        let phi = PhiDetector::new(1_000, 3.0, 10_000);
        assert!(!phi.is_dead(12_999), "armed detector grants a grace window");
        assert!(phi.is_dead(13_000), "grace expires like any other silence");
    }
}
