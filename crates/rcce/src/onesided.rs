//! One-sided RCCE primitives: `put` / `get` into MPB windows plus flag
//! synchronisation.
//!
//! The real RCCE's core API is one-sided — `RCCE_put` writes into a
//! remote core's message-passing buffer, `RCCE_get` reads from one, and
//! single-byte *flags* provide the handshake; the two-sided
//! `RCCE_send`/`RCCE_recv` are built on top. This module reproduces that
//! layering on native threads: each rank owns an MPB window (shared,
//! lock-protected, like the physically shared on-die SRAM) and a flag
//! array, and [`send_via_put`]/[`recv_via_get`] implement the chunked
//! two-sided protocol exactly the way the RCCE library does — which is
//! also where the per-chunk handshake cost of `MpbConfig::chunks` comes
//! from.

use crate::mpb::MpbConfig;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Flag values, RCCE-style.
pub const FLAG_UNSET: u8 = 0;
pub const FLAG_SET: u8 = 1;

/// One rank's share of the on-die memory: an MPB window plus flags.
struct Window {
    buf: Mutex<Vec<u8>>,
    /// One flag per peer rank.
    flags: Vec<AtomicU8>,
}

/// A one-sided communicator of `size` ranks.
pub struct OneSided {
    rank: usize,
    windows: Arc<Vec<Window>>,
    mpb: MpbConfig,
}

/// Create the one-sided domain; returns one handle per rank.
pub fn one_sided(size: usize, mpb: MpbConfig) -> Vec<OneSided> {
    assert!(size >= 1);
    let windows = Arc::new(
        (0..size)
            .map(|_| Window {
                buf: Mutex::new(vec![0u8; mpb.window_bytes as usize]),
                flags: (0..size).map(|_| AtomicU8::new(FLAG_UNSET)).collect(),
            })
            .collect::<Vec<_>>(),
    );
    (0..size)
        .map(|rank| OneSided {
            rank,
            windows: Arc::clone(&windows),
            mpb,
        })
        .collect()
}

impl OneSided {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.windows.len()
    }

    pub fn mpb(&self) -> MpbConfig {
        self.mpb
    }

    /// Write `data` into `dst`'s MPB window at `offset` (RCCE_put).
    ///
    /// Panics if the write exceeds the window — the hardware would wrap
    /// or fault; RCCE never issues such a put.
    pub fn put(&self, dst: usize, offset: usize, data: &[u8]) {
        let mut buf = self.windows[dst].buf.lock();
        let end = offset + data.len();
        assert!(
            end <= buf.len(),
            "put beyond MPB window ({end} > {})",
            buf.len()
        );
        buf[offset..end].copy_from_slice(data);
    }

    /// Read `len` bytes from `src`'s MPB window at `offset` (RCCE_get).
    pub fn get(&self, src: usize, offset: usize, len: usize) -> Vec<u8> {
        let buf = self.windows[src].buf.lock();
        let end = offset + len;
        assert!(
            end <= buf.len(),
            "get beyond MPB window ({end} > {})",
            buf.len()
        );
        buf[offset..end].to_vec()
    }

    /// Set the flag that `owner` holds for peer `peer` (RCCE_flag_write).
    pub fn flag_write(&self, owner: usize, peer: usize, value: u8) {
        self.windows[owner].flags[peer].store(value, Ordering::Release);
    }

    /// Spin until `owner`'s flag for `peer` equals `value`
    /// (RCCE_wait_until).
    pub fn flag_wait(&self, owner: usize, peer: usize, value: u8) {
        while self.windows[owner].flags[peer].load(Ordering::Acquire) != value {
            std::hint::spin_loop();
        }
    }
}

/// Two-sided send implemented over put + flags, chunked through the MPB
/// window exactly like RCCE_send: for each chunk, wait for the receiver
/// to drain the window, put the chunk, raise the "data ready" flag.
pub fn send_via_put(comm: &OneSided, dst: usize, payload: &[u8]) {
    let me = comm.rank();
    let chunk_cap = comm.mpb().payload_per_chunk() as usize;
    let mut sent = 0;
    // Zero-length payloads still perform one (empty) handshake.
    loop {
        let chunk = &payload[sent..payload.len().min(sent + chunk_cap)];
        // Wait until the receiver has drained our previous chunk.
        comm.flag_wait(dst, me, FLAG_UNSET);
        comm.put(dst, 0, chunk);
        comm.flag_write(dst, me, FLAG_SET);
        sent += chunk.len();
        if sent >= payload.len() {
            break;
        }
    }
}

/// Two-sided receive over get + flags: for each chunk, wait for "data
/// ready", get it, lower the flag so the sender can reuse the window.
pub fn recv_via_get(comm: &OneSided, src: usize, len: usize) -> Vec<u8> {
    let me = comm.rank();
    let chunk_cap = comm.mpb().payload_per_chunk() as usize;
    let mut out = Vec::with_capacity(len);
    loop {
        comm.flag_wait(me, src, FLAG_SET);
        let take = chunk_cap.min(len - out.len());
        out.extend_from_slice(&comm.get(me, 0, take));
        comm.flag_write(me, src, FLAG_UNSET);
        if out.len() >= len {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn tiny_mpb() -> MpbConfig {
        MpbConfig {
            window_bytes: 128,
            header_bytes: 16,
        }
    }

    #[test]
    fn put_then_get_roundtrip() {
        let comms = one_sided(2, MpbConfig::default());
        comms[0].put(1, 8, b"hello mpb");
        let back = comms[1].get(1, 8, 9);
        assert_eq!(&back, b"hello mpb");
        // Rank 0 can read it back too: the MPB is plain shared memory.
        assert_eq!(&comms[0].get(1, 8, 9), b"hello mpb");
    }

    #[test]
    #[should_panic(expected = "put beyond MPB window")]
    fn put_overflow_panics() {
        let comms = one_sided(2, tiny_mpb());
        comms[0].put(1, 120, &[0u8; 16]);
    }

    #[test]
    fn flags_synchronise_two_threads() {
        let mut comms = one_sided(2, MpbConfig::default());
        let b = comms.pop().unwrap();
        let a = comms.pop().unwrap();
        let t = thread::spawn(move || {
            b.flag_wait(1, 0, FLAG_SET);
            let data = b.get(1, 0, 4);
            b.flag_write(1, 0, FLAG_UNSET);
            data
        });
        a.put(1, 0, b"sync");
        a.flag_write(1, 0, FLAG_SET);
        assert_eq!(t.join().unwrap(), b"sync");
        // The receiver lowered the flag again.
        assert_eq!(a.windows[1].flags[0].load(Ordering::Acquire), FLAG_UNSET);
    }

    #[test]
    fn chunked_send_recv_matches_payload() {
        // Payload much larger than the window: must flow in many chunks.
        let mpb = tiny_mpb();
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        assert!(mpb.chunks(payload.len() as u64) > 40);
        let mut comms = one_sided(2, mpb);
        let rx = comms.pop().unwrap();
        let tx = comms.pop().unwrap();
        let expect = payload.clone();
        let sender = thread::spawn(move || send_via_put(&tx, 1, &payload));
        let got = recv_via_get(&rx, 0, expect.len());
        sender.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn three_ranks_relay_via_puts() {
        let mut comms = one_sided(3, tiny_mpb());
        let c = comms.pop().unwrap();
        let b = comms.pop().unwrap();
        let a = comms.pop().unwrap();
        let payload: Vec<u8> = (0..300u16).map(|i| (i % 256) as u8).collect();
        let expect = payload.clone();
        let t1 = thread::spawn(move || send_via_put(&a, 1, &payload));
        let t2 = thread::spawn(move || {
            let m = recv_via_get(&b, 0, 300);
            send_via_put(&b, 2, &m);
        });
        let got = recv_via_get(&c, 1, 300);
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn zero_length_messages_handshake() {
        let mut comms = one_sided(2, tiny_mpb());
        let rx = comms.pop().unwrap();
        let tx = comms.pop().unwrap();
        let sender = thread::spawn(move || send_via_put(&tx, 1, &[]));
        let got = recv_via_get(&rx, 0, 0);
        sender.join().unwrap();
        assert!(got.is_empty());
    }
}
