//! RCCE-style communicator over native threads.
//!
//! The real RCCE library gives every core a rank and blocking
//! `RCCE_send` / `RCCE_recv` matched by source rank, plus barriers. This
//! module reproduces those semantics with one bounded crossbeam channel per
//! ordered rank pair: `send` blocks when the receiver's window is full
//! (MPB backpressure) and `recv(src)` blocks until that source delivers.
//!
//! Every endpoint tracks bytes/messages and the time spent blocked in
//! `recv` — the native runner's equivalent of the paper's per-stage idle
//! times (Figure 15).

use crate::crc::crc32;
use crate::error::RcceError;
use crate::mpb::MpbConfig;
use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use scc_sim::fault::{FaultPlan, MessageOutcome};
use scc_telemetry::{names, EventKind, TelemetrySink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Per-endpoint traffic counters (lock-free reads).
#[derive(Debug, Default)]
pub struct CommStats {
    pub sent_messages: AtomicU64,
    pub sent_bytes: AtomicU64,
    pub recv_messages: AtomicU64,
    pub recv_bytes: AtomicU64,
    /// Nanoseconds spent blocked waiting in `recv`.
    pub recv_wait_ns: AtomicU64,
    /// Nanoseconds spent blocked in `send` backpressure.
    pub send_wait_ns: AtomicU64,
    /// Transmission attempts beyond the first (reliable path).
    pub retransmissions: AtomicU64,
    /// Payloads discarded on arrival because their CRC failed.
    pub corrupt_drops: AtomicU64,
    /// Reliable operations that gave up (timeout or retry exhaustion).
    pub timeouts: AtomicU64,
}

impl CommStats {
    pub fn recv_wait(&self) -> Duration {
        Duration::from_nanos(self.recv_wait_ns.load(Ordering::Relaxed))
    }

    pub fn send_wait(&self) -> Duration {
        Duration::from_nanos(self.send_wait_ns.load(Ordering::Relaxed))
    }
}

/// Retry/timeout policy for the reliable (`send_reliable`/`recv_reliable`)
/// protocol: a stop-and-wait ARQ with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reliability {
    /// Acknowledgement window for the first attempt; attempt `n` waits
    /// `timeout << n`.
    pub timeout: Duration,
    /// Retransmissions allowed after the first attempt.
    pub retries: u32,
}

impl Default for Reliability {
    fn default() -> Self {
        Reliability {
            timeout: Duration::from_millis(200),
            retries: 3,
        }
    }
}

impl Reliability {
    /// Total worst-case patience of a receiver: the sum of every backoff
    /// window the slowest compliant sender could still be inside.
    fn receiver_patience(&self) -> Duration {
        // sum_{n=0..=retries} timeout * 2^n = timeout * (2^(retries+1) - 1)
        self.timeout
            * (2u32.saturating_pow(self.retries + 1))
                .saturating_sub(1)
                .max(1)
    }
}

/// One rank's endpoint of the communicator.
pub struct Endpoint {
    rank: usize,
    size: usize,
    /// `outs[d]` sends to rank d.
    outs: Vec<Option<Sender<Bytes>>>,
    /// `ins[s]` receives from rank s.
    ins: Vec<Option<Receiver<Bytes>>>,
    /// `ack_outs[s]` acknowledges data received from rank s.
    ack_outs: Vec<Option<Sender<u64>>>,
    /// `ack_ins[d]` carries acknowledgements from rank d for our sends.
    ack_ins: Vec<Option<Receiver<u64>>>,
    /// Next sequence number for reliable sends to each destination.
    send_seq: Vec<AtomicU64>,
    /// Next expected sequence number from each source.
    recv_seq: Vec<AtomicU64>,
    /// Reliable streams to each destination that completed with an ack —
    /// the ARQ audit's ledger against `send_seq` (streams started).
    acked_streams: Vec<AtomicU64>,
    barrier: Arc<Barrier>,
    mpb: MpbConfig,
    stats: Arc<CommStats>,
    reliability: Reliability,
    /// Deterministic fault schedule applied to reliable sends.
    fault: Option<Arc<FaultPlan>>,
    /// Per-source wait samples, for idle-time quartiles.
    wait_samples: Mutex<Vec<Duration>>,
    /// Shared telemetry sink (disabled by default): the ARQ protocol
    /// records retries, corrupt drops, and timeouts as they happen.
    tel: TelemetrySink,
    /// Wall-clock origin for telemetry event timestamps.
    tel_base: Instant,
}

/// Create a communicator of `size` ranks with per-pair channel capacity
/// `window_msgs` (the number of in-flight messages the receiver's MPB can
/// hold; RCCE's single window = 1).
pub fn communicator(size: usize, window_msgs: usize, mpb: MpbConfig) -> Vec<Endpoint> {
    assert!(size >= 1, "empty communicator");
    assert!(window_msgs >= 1, "zero-capacity window deadlocks");
    let barrier = Arc::new(Barrier::new(size));
    // senders[s][d] / receivers[d][s]
    let mut senders: Vec<Vec<Option<Sender<Bytes>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<Receiver<Bytes>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    // ack_senders[receiver][sender]: the ack path for data flowing
    // sender -> receiver. Sized generously so a receiver's ack never
    // blocks (a full ack channel is treated as a lost ack; the protocol
    // recovers via retransmission either way).
    let mut ack_senders: Vec<Vec<Option<Sender<u64>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    let mut ack_receivers: Vec<Vec<Option<Receiver<u64>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    for s in 0..size {
        for d in 0..size {
            if s == d {
                continue;
            }
            let (tx, rx) = bounded(window_msgs);
            senders[s][d] = Some(tx);
            receivers[d][s] = Some(rx);
            let (ack_tx, ack_rx) = bounded(window_msgs * 4 + 4);
            ack_senders[d][s] = Some(ack_tx);
            ack_receivers[s][d] = Some(ack_rx);
        }
    }
    senders
        .into_iter()
        .zip(receivers)
        .zip(ack_senders.into_iter().zip(ack_receivers))
        .enumerate()
        .map(|(rank, ((outs, ins), (ack_outs, ack_ins)))| Endpoint {
            rank,
            size,
            outs,
            ins,
            ack_outs,
            ack_ins,
            send_seq: (0..size).map(|_| AtomicU64::new(0)).collect(),
            recv_seq: (0..size).map(|_| AtomicU64::new(0)).collect(),
            acked_streams: (0..size).map(|_| AtomicU64::new(0)).collect(),
            barrier: Arc::clone(&barrier),
            mpb,
            stats: Arc::new(CommStats::default()),
            reliability: Reliability::default(),
            fault: None,
            wait_samples: Mutex::new(Vec::new()),
            tel: TelemetrySink::disabled(),
            tel_base: Instant::now(),
        })
        .collect()
}

impl Endpoint {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    pub fn mpb(&self) -> MpbConfig {
        self.mpb
    }

    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Blocking send to `dst`. Blocks while the destination's window is
    /// full (RCCE backpressure).
    pub fn send(&self, dst: usize, payload: Bytes) -> Result<(), RcceError> {
        if dst >= self.size || dst == self.rank {
            return Err(RcceError::InvalidRank {
                rank: dst,
                size: self.size,
            });
        }
        let tx = self.outs[dst].as_ref().expect("channel matrix hole");
        let bytes = payload.len() as u64;
        let t0 = Instant::now();
        tx.send(payload)
            .map_err(|_| RcceError::Disconnected { rank: dst })?;
        self.stats
            .send_wait_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats.sent_messages.fetch_add(1, Ordering::Relaxed);
        self.stats.sent_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Blocking receive from `src`, recording the wait time.
    pub fn recv(&self, src: usize) -> Result<Bytes, RcceError> {
        if src >= self.size || src == self.rank {
            return Err(RcceError::InvalidRank {
                rank: src,
                size: self.size,
            });
        }
        let rx = self.ins[src].as_ref().expect("channel matrix hole");
        let t0 = Instant::now();
        let payload = rx
            .recv()
            .map_err(|_| RcceError::Disconnected { rank: src })?;
        let waited = t0.elapsed();
        self.stats
            .recv_wait_ns
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        self.wait_samples.lock().push(waited);
        self.stats.recv_messages.fetch_add(1, Ordering::Relaxed);
        self.stats
            .recv_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        Ok(payload)
    }

    /// Non-blocking receive from `src`.
    pub fn try_recv(&self, src: usize) -> Result<Option<Bytes>, RcceError> {
        if src >= self.size || src == self.rank {
            return Err(RcceError::InvalidRank {
                rank: src,
                size: self.size,
            });
        }
        let rx = self.ins[src].as_ref().expect("channel matrix hole");
        match rx.try_recv() {
            Ok(p) => {
                self.stats.recv_messages.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .recv_bytes
                    .fetch_add(p.len() as u64, Ordering::Relaxed);
                Ok(Some(p))
            }
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                Err(RcceError::Disconnected { rank: src })
            }
        }
    }

    /// Install a deterministic fault schedule on this endpoint's reliable
    /// send path (call before moving the endpoint into its thread). The
    /// plan perturbs transmissions; the protocol is what recovers.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault = Some(plan);
    }

    /// Configure the retry/timeout policy (call before moving the
    /// endpoint into its thread).
    pub fn set_reliability(&mut self, reliability: Reliability) {
        self.reliability = reliability;
    }

    /// Attach a telemetry sink (call before moving the endpoint into its
    /// thread); event timestamps restart at this call. A disabled sink —
    /// the default — records nothing.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.tel = sink;
        self.tel_base = Instant::now();
    }

    /// The endpoint's telemetry sink (shared with `health` helpers).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.tel
    }

    /// Nanoseconds since the telemetry epoch ([`Endpoint::set_telemetry`]).
    pub fn telemetry_now_ns(&self) -> u64 {
        self.tel_base.elapsed().as_nanos() as u64
    }

    pub fn reliability(&self) -> Reliability {
        self.reliability
    }

    /// Reliable blocking send: CRC-framed stop-and-wait with bounded
    /// retransmission and exponential backoff. Pairs with
    /// [`Endpoint::recv_reliable`] on the destination rank.
    pub fn send_reliable(&self, dst: usize, payload: Bytes) -> Result<(), RcceError> {
        if dst >= self.size || dst == self.rank {
            return Err(RcceError::InvalidRank {
                rank: dst,
                size: self.size,
            });
        }
        let tx = self.outs[dst].as_ref().expect("channel matrix hole");
        let ack_rx = self.ack_ins[dst].as_ref().expect("ack matrix hole");
        let seq = self.send_seq[dst].fetch_add(1, Ordering::Relaxed);
        let envelope = encode_envelope(seq, &payload);
        let attempts = self.reliability.retries + 1;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retransmissions.fetch_add(1, Ordering::Relaxed);
                self.tel.count(names::ARQ_RETRIES_TOTAL, &[], 1);
                self.tel.event(
                    self.telemetry_now_ns(),
                    EventKind::ArqRetry {
                        from: self.rank as u32,
                        to: dst as u32,
                        attempt,
                    },
                );
            }
            let outcome = match &self.fault {
                Some(plan) => plan.message_outcome(self.rank as u64, dst as u64, seq, attempt),
                None => MessageOutcome::Deliver,
            };
            let transmitted = match outcome {
                MessageOutcome::Drop => false,
                MessageOutcome::Corrupt { offset, xor } => {
                    let t0 = Instant::now();
                    tx.send(corrupt_envelope(&envelope, offset, xor))
                        .map_err(|_| RcceError::Disconnected { rank: dst })?;
                    self.stats
                        .send_wait_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    true
                }
                MessageOutcome::Delay(d) => {
                    // Bound the injected latency so a hostile plan cannot
                    // freeze the thread past its own ack window.
                    let sleep =
                        Duration::from_nanos(d.as_ps() / 1000).min(self.reliability.timeout / 2);
                    std::thread::sleep(sleep);
                    let t0 = Instant::now();
                    tx.send(envelope.clone())
                        .map_err(|_| RcceError::Disconnected { rank: dst })?;
                    self.stats
                        .send_wait_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    true
                }
                MessageOutcome::Deliver => {
                    let t0 = Instant::now();
                    tx.send(envelope.clone())
                        .map_err(|_| RcceError::Disconnected { rank: dst })?;
                    self.stats
                        .send_wait_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    true
                }
            };
            let _ = transmitted; // a dropped attempt still burns its window
            let window = self
                .reliability
                .timeout
                .checked_mul(1 << attempt.min(16))
                .unwrap_or(Duration::MAX);
            let deadline = Instant::now() + window;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match ack_rx.recv_timeout(remaining) {
                    Ok(acked) if acked == seq => {
                        self.acked_streams[dst].fetch_add(1, Ordering::Relaxed);
                        self.stats.sent_messages.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .sent_bytes
                            .fetch_add(payload.len() as u64, Ordering::Relaxed);
                        return Ok(());
                    }
                    // A stale ack from an earlier message; keep waiting.
                    Ok(_) => continue,
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(RcceError::Disconnected { rank: dst });
                    }
                }
            }
        }
        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        self.tel.count(names::ARQ_TIMEOUTS_TOTAL, &[], 1);
        Err(RcceError::RetriesExhausted {
            rank: dst,
            attempts,
        })
    }

    /// Reliable blocking receive from `src`: verifies the CRC, discards
    /// corrupt or duplicate deliveries (re-acknowledging duplicates so the
    /// sender can make progress), and acknowledges the first intact copy.
    pub fn recv_reliable(&self, src: usize) -> Result<Bytes, RcceError> {
        if src >= self.size || src == self.rank {
            return Err(RcceError::InvalidRank {
                rank: src,
                size: self.size,
            });
        }
        let rx = self.ins[src].as_ref().expect("channel matrix hole");
        let ack_tx = self.ack_outs[src].as_ref().expect("ack matrix hole");
        let expected = self.recv_seq[src].load(Ordering::Relaxed);
        let t0 = Instant::now();
        let deadline = t0 + self.reliability.receiver_patience();
        let mut saw_corrupt = false;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                self.tel.count(names::ARQ_TIMEOUTS_TOTAL, &[], 1);
                return Err(if saw_corrupt {
                    RcceError::Corrupt { rank: src }
                } else {
                    RcceError::Timeout { rank: src }
                });
            }
            let envelope = match rx.recv_timeout(remaining) {
                Ok(e) => e,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RcceError::Disconnected { rank: src });
                }
            };
            let (seq, payload) = match decode_envelope(&envelope) {
                Some(ok) => ok,
                None => {
                    // Corrupt in flight: no ack, the sender will retry.
                    self.stats.corrupt_drops.fetch_add(1, Ordering::Relaxed);
                    self.tel.count(names::ARQ_CORRUPT_DROPS_TOTAL, &[], 1);
                    saw_corrupt = true;
                    continue;
                }
            };
            if seq < expected {
                // Duplicate of an already-delivered message (our ack was
                // lost or late); re-acknowledge and keep waiting.
                let _ = ack_tx.try_send(seq);
                continue;
            }
            // Stop-and-wait over a FIFO channel cannot reorder, so an
            // intact envelope from the stream's future is a protocol
            // bug, not a transport fault — fail closed in every build.
            if seq != expected {
                return Err(RcceError::Protocol {
                    rank: src,
                    detail: "reliable stream reordered",
                });
            }
            let _ = ack_tx.try_send(seq);
            self.recv_seq[src].store(seq + 1, Ordering::Relaxed);
            let waited = t0.elapsed();
            self.stats
                .recv_wait_ns
                .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
            self.wait_samples.lock().push(waited);
            self.stats.recv_messages.fetch_add(1, Ordering::Relaxed);
            self.stats
                .recv_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            return Ok(payload);
        }
    }

    /// ARQ state-machine legality audit for a quiesced endpoint (no
    /// sends in flight, reliability policy unchanged since creation):
    ///
    /// * acked streams never exceed started streams, per destination;
    /// * every started-but-unacked stream burned a recorded timeout;
    /// * retransmissions stay within the per-stream retry budget.
    pub fn audit_arq(&self) -> Result<(), String> {
        let mut started_total = 0u64;
        let mut unacked_total = 0u64;
        for dst in 0..self.size {
            let started = self.send_seq[dst].load(Ordering::Relaxed);
            let acked = self.acked_streams[dst].load(Ordering::Relaxed);
            if acked > started {
                return Err(format!(
                    "rank {}: {acked} acked streams to {dst} but only {started} started",
                    self.rank
                ));
            }
            started_total += started;
            unacked_total += started - acked;
        }
        let timeouts = self.stats.timeouts.load(Ordering::Relaxed);
        if unacked_total > timeouts {
            return Err(format!(
                "rank {}: {unacked_total} reliable streams died without an ack \
                 yet only {timeouts} timeouts were recorded",
                self.rank
            ));
        }
        let retrans = self.stats.retransmissions.load(Ordering::Relaxed);
        let budget = started_total * self.reliability.retries as u64;
        if retrans > budget {
            return Err(format!(
                "rank {}: {retrans} retransmissions exceed the budget of {budget} \
                 ({} streams x {} retries)",
                self.rank, started_total, self.reliability.retries
            ));
        }
        Ok(())
    }

    /// Synchronise all ranks (RCCE_barrier).
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Drain the recorded recv-wait samples (for idle-time statistics).
    pub fn take_wait_samples(&self) -> Vec<Duration> {
        std::mem::take(&mut *self.wait_samples.lock())
    }

    /// Number of MPB chunks a payload of `bytes` would need on hardware.
    pub fn chunks_for(&self, bytes: u64) -> u64 {
        self.mpb.chunks(bytes)
    }
}

/// Reliable-path wire format: `[seq: u64][crc32(payload): u32][payload]`,
/// big-endian. The CRC covers only the payload; a corrupted header makes
/// `decode_envelope` fail closed (seq/crc mismatch against the payload).
const ENVELOPE_HEADER: usize = 12;

fn encode_envelope(seq: u64, payload: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(ENVELOPE_HEADER + payload.len());
    buf.put_u64(seq);
    buf.put_u32(crc32(payload));
    buf.put_slice(payload);
    buf.freeze()
}

fn decode_envelope(envelope: &Bytes) -> Option<(u64, Bytes)> {
    let raw: &[u8] = envelope;
    if raw.len() < ENVELOPE_HEADER {
        return None;
    }
    let seq = u64::from_be_bytes(raw[0..8].try_into().expect("sized slice"));
    let crc = u32::from_be_bytes(raw[8..12].try_into().expect("sized slice"));
    let payload = &raw[ENVELOPE_HEADER..];
    if crc32(payload) != crc {
        return None;
    }
    Some((seq, Bytes::copy_from_slice(payload)))
}

/// Apply an injected single-byte corruption to a copy of `envelope`.
/// Payload bytes are preferred (exercising the CRC); an empty payload
/// corrupts the CRC field itself, which fails the check just the same.
fn corrupt_envelope(envelope: &Bytes, offset: u64, xor: u8) -> Bytes {
    let mut raw: Vec<u8> = envelope.to_vec();
    let idx = if raw.len() > ENVELOPE_HEADER {
        ENVELOPE_HEADER + (offset as usize % (raw.len() - ENVELOPE_HEADER))
    } else {
        8 + (offset as usize % 4)
    };
    raw[idx] ^= xor;
    Bytes::from(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn comm(n: usize) -> Vec<Endpoint> {
        communicator(n, 2, MpbConfig::default())
    }

    #[test]
    fn ping_pong() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = thread::spawn(move || {
            let m = b.recv(0).unwrap();
            assert_eq!(&m[..], b"ping");
            b.send(0, Bytes::from_static(b"pong")).unwrap();
        });
        a.send(1, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(&a.recv(1).unwrap()[..], b"pong");
        t.join().unwrap();
        assert_eq!(a.stats().sent_messages.load(Ordering::Relaxed), 1);
        assert_eq!(a.stats().recv_bytes.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn selective_receive_by_source() {
        let mut eps = comm(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let tb = thread::spawn(move || b.send(2, Bytes::from_static(b"from-b")).unwrap());
        let ta = thread::spawn(move || a.send(2, Bytes::from_static(b"from-a")).unwrap());
        // Receive from rank 1 first regardless of arrival order.
        assert_eq!(&c.recv(1).unwrap()[..], b"from-b");
        assert_eq!(&c.recv(0).unwrap()[..], b"from-a");
        ta.join().unwrap();
        tb.join().unwrap();
    }

    #[test]
    fn messages_from_same_source_keep_order() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = thread::spawn(move || {
            for i in 0u8..100 {
                a.send(1, Bytes::copy_from_slice(&[i])).unwrap();
            }
        });
        for i in 0u8..100 {
            assert_eq!(b.recv(0).unwrap()[0], i);
        }
        t.join().unwrap();
    }

    #[test]
    fn bounded_window_applies_backpressure() {
        let mut eps = communicator(2, 1, MpbConfig::default());
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = thread::spawn(move || {
            // Fill the single-slot window, then block on the second send
            // until the receiver drains.
            a.send(1, Bytes::from_static(b"1")).unwrap();
            a.send(1, Bytes::from_static(b"2")).unwrap();
            a.stats().send_wait_ns.load(Ordering::Relaxed)
        });
        thread::sleep(Duration::from_millis(50));
        b.recv(0).unwrap();
        b.recv(0).unwrap();
        let wait_ns = t.join().unwrap();
        assert!(
            wait_ns > 10_000_000,
            "sender should have blocked ~50 ms, waited {wait_ns} ns"
        );
    }

    #[test]
    fn invalid_ranks_rejected() {
        let eps = comm(2);
        assert!(matches!(
            eps[0].send(0, Bytes::new()),
            Err(RcceError::InvalidRank { .. })
        ));
        assert!(matches!(
            eps[0].send(5, Bytes::new()),
            Err(RcceError::InvalidRank { .. })
        ));
        assert!(matches!(eps[1].recv(1), Err(RcceError::InvalidRank { .. })));
    }

    #[test]
    fn disconnected_peer_errors() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        drop(eps); // drop rank 0 entirely
        assert!(matches!(b.recv(0), Err(RcceError::Disconnected { .. })));
        assert!(matches!(
            b.send(0, Bytes::new()),
            Err(RcceError::Disconnected { .. })
        ));
    }

    #[test]
    fn try_recv_does_not_block() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert!(b.try_recv(0).unwrap().is_none());
        a.send(1, Bytes::from_static(b"x")).unwrap();
        // Poll until visible (bounded channel send is synchronous here,
        // so it must be immediately visible).
        assert_eq!(&b.try_recv(0).unwrap().unwrap()[..], b"x");
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        let eps = comm(4);
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    ep.barrier();
                    // After the barrier every rank's increment is visible.
                    assert_eq!(c.load(Ordering::SeqCst), 4);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    fn fast_reliability() -> Reliability {
        Reliability {
            timeout: Duration::from_millis(40),
            retries: 3,
        }
    }

    fn lossy_plan(seed: u64, drop: f64, corrupt: f64) -> Arc<scc_sim::FaultPlan> {
        Arc::new(scc_sim::FaultPlan::new(scc_sim::FaultConfig {
            seed,
            drop_rate: drop,
            corrupt_rate: corrupt,
            ..scc_sim::FaultConfig::default()
        }))
    }

    #[test]
    fn envelope_roundtrip_and_corruption_detection() {
        let payload = Bytes::copy_from_slice(&[7u8; 1000]);
        let env = encode_envelope(42, &payload);
        let (seq, out) = decode_envelope(&env).expect("intact envelope decodes");
        assert_eq!(seq, 42);
        assert_eq!(&out[..], &payload[..]);
        for offset in [0u64, 13, 999, 5000] {
            assert!(
                decode_envelope(&corrupt_envelope(&env, offset, 0x40)).is_none(),
                "corruption at offset {offset} must fail the CRC"
            );
        }
        // Empty payload: corruption hits the header and still fails closed.
        let empty = encode_envelope(1, &Bytes::new());
        assert!(decode_envelope(&corrupt_envelope(&empty, 0, 1)).is_none());
    }

    #[test]
    fn reliable_roundtrip_without_faults() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = thread::spawn(move || {
            let m = b.recv_reliable(0).unwrap();
            assert_eq!(&m[..], b"ping");
            b.send_reliable(0, Bytes::from_static(b"pong")).unwrap();
        });
        a.send_reliable(1, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(&a.recv_reliable(1).unwrap()[..], b"pong");
        t.join().unwrap();
        assert_eq!(a.stats().retransmissions.load(Ordering::Relaxed), 0);
        assert_eq!(a.stats().sent_messages.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reliable_stream_survives_drops_and_corruption() {
        let mut eps = comm(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        // 25% drops + 25% corruption: roughly half of all attempts fail,
        // yet a retry budget of 3 recovers every message.
        a.set_fault_plan(lossy_plan(77, 0.25, 0.25));
        a.set_reliability(fast_reliability());
        b.set_reliability(fast_reliability());
        let t = thread::spawn(move || {
            for i in 0u8..30 {
                a.send_reliable(1, Bytes::copy_from_slice(&[i; 64]))
                    .unwrap();
            }
            a.stats().retransmissions.load(Ordering::Relaxed)
        });
        for i in 0u8..30 {
            let m = b.recv_reliable(0).unwrap();
            assert_eq!(&m[..], &[i; 64][..], "message {i} intact and in order");
        }
        let retransmissions = t.join().unwrap();
        assert!(
            retransmissions > 0,
            "a 50% fault rate must force at least one retransmission"
        );
        assert!(
            b.stats().corrupt_drops.load(Ordering::Relaxed) > 0,
            "some corrupted deliveries should have been caught by CRC"
        );
    }

    #[test]
    fn arq_audit_passes_after_lossy_traffic() {
        let mut eps = comm(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.set_fault_plan(lossy_plan(99, 0.2, 0.2));
        a.set_reliability(fast_reliability());
        b.set_reliability(fast_reliability());
        let t = thread::spawn(move || {
            for i in 0u8..20 {
                a.send_reliable(1, Bytes::copy_from_slice(&[i; 32]))
                    .unwrap();
            }
            a
        });
        for _ in 0..20 {
            b.recv_reliable(0).unwrap();
        }
        let a = t.join().unwrap();
        a.audit_arq().expect("sender ledger legal");
        b.audit_arq().expect("receiver ledger legal");
    }

    #[test]
    fn arq_audit_catches_an_unaccounted_stream() {
        let eps = comm(2);
        let a = &eps[0];
        // A stream that was started but neither acked nor timed out is
        // exactly the state a lost state machine would leave behind.
        a.send_seq[1].fetch_add(1, Ordering::Relaxed);
        let err = a.audit_arq().unwrap_err();
        assert!(err.contains("without an ack"), "unexpected detail: {err}");
    }

    #[test]
    fn out_of_order_envelope_is_a_protocol_violation() {
        let mut eps = comm(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        b.set_reliability(fast_reliability());
        // Hand-craft an intact envelope from the stream's future (seq 5
        // while 0 is expected) and push it down the raw channel.
        a.send(1, encode_envelope(5, &Bytes::from_static(b"rogue")))
            .unwrap();
        assert_eq!(
            b.recv_reliable(0).unwrap_err(),
            RcceError::Protocol {
                rank: 0,
                detail: "reliable stream reordered",
            }
        );
    }

    #[test]
    fn certain_drop_exhausts_retries() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.set_fault_plan(lossy_plan(5, 1.0, 0.0));
        a.set_reliability(Reliability {
            timeout: Duration::from_millis(5),
            retries: 2,
        });
        let err = a
            .send_reliable(1, Bytes::from_static(b"doomed"))
            .unwrap_err();
        assert_eq!(
            err,
            RcceError::RetriesExhausted {
                rank: 1,
                attempts: 3
            }
        );
        assert_eq!(a.stats().timeouts.load(Ordering::Relaxed), 1);
        drop(b);
    }

    #[test]
    fn silent_peer_times_out_receiver() {
        let mut eps = comm(2);
        let mut b = eps.pop().unwrap();
        let _a = eps.pop().unwrap();
        b.set_reliability(Reliability {
            timeout: Duration::from_millis(2),
            retries: 1,
        });
        assert_eq!(
            b.recv_reliable(0).unwrap_err(),
            RcceError::Timeout { rank: 0 }
        );
    }

    #[test]
    fn wait_samples_recorded() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            a.send(1, Bytes::from_static(b"late")).unwrap();
        });
        b.recv(0).unwrap();
        t.join().unwrap();
        let samples = b.take_wait_samples();
        assert_eq!(samples.len(), 1);
        assert!(samples[0] >= Duration::from_millis(10));
        assert!(b.take_wait_samples().is_empty(), "drained");
    }
}
