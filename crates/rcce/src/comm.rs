//! RCCE-style communicator over native threads.
//!
//! The real RCCE library gives every core a rank and blocking
//! `RCCE_send` / `RCCE_recv` matched by source rank, plus barriers. This
//! module reproduces those semantics with one bounded crossbeam channel per
//! ordered rank pair: `send` blocks when the receiver's window is full
//! (MPB backpressure) and `recv(src)` blocks until that source delivers.
//!
//! Every endpoint tracks bytes/messages and the time spent blocked in
//! `recv` — the native runner's equivalent of the paper's per-stage idle
//! times (Figure 15).

use crate::error::RcceError;
use crate::mpb::MpbConfig;
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Per-endpoint traffic counters (lock-free reads).
#[derive(Debug, Default)]
pub struct CommStats {
    pub sent_messages: AtomicU64,
    pub sent_bytes: AtomicU64,
    pub recv_messages: AtomicU64,
    pub recv_bytes: AtomicU64,
    /// Nanoseconds spent blocked waiting in `recv`.
    pub recv_wait_ns: AtomicU64,
    /// Nanoseconds spent blocked in `send` backpressure.
    pub send_wait_ns: AtomicU64,
}

impl CommStats {
    pub fn recv_wait(&self) -> Duration {
        Duration::from_nanos(self.recv_wait_ns.load(Ordering::Relaxed))
    }

    pub fn send_wait(&self) -> Duration {
        Duration::from_nanos(self.send_wait_ns.load(Ordering::Relaxed))
    }
}

/// One rank's endpoint of the communicator.
pub struct Endpoint {
    rank: usize,
    size: usize,
    /// `outs[d]` sends to rank d.
    outs: Vec<Option<Sender<Bytes>>>,
    /// `ins[s]` receives from rank s.
    ins: Vec<Option<Receiver<Bytes>>>,
    barrier: Arc<Barrier>,
    mpb: MpbConfig,
    stats: Arc<CommStats>,
    /// Per-source wait samples, for idle-time quartiles.
    wait_samples: Mutex<Vec<Duration>>,
}

/// Create a communicator of `size` ranks with per-pair channel capacity
/// `window_msgs` (the number of in-flight messages the receiver's MPB can
/// hold; RCCE's single window = 1).
pub fn communicator(size: usize, window_msgs: usize, mpb: MpbConfig) -> Vec<Endpoint> {
    assert!(size >= 1, "empty communicator");
    assert!(window_msgs >= 1, "zero-capacity window deadlocks");
    let barrier = Arc::new(Barrier::new(size));
    // senders[s][d] / receivers[d][s]
    let mut senders: Vec<Vec<Option<Sender<Bytes>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<Receiver<Bytes>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    for s in 0..size {
        for d in 0..size {
            if s == d {
                continue;
            }
            let (tx, rx) = bounded(window_msgs);
            senders[s][d] = Some(tx);
            receivers[d][s] = Some(rx);
        }
    }
    senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .map(|(rank, (outs, ins))| Endpoint {
            rank,
            size,
            outs,
            ins,
            barrier: Arc::clone(&barrier),
            mpb,
            stats: Arc::new(CommStats::default()),
            wait_samples: Mutex::new(Vec::new()),
        })
        .collect()
}

impl Endpoint {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    pub fn mpb(&self) -> MpbConfig {
        self.mpb
    }

    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Blocking send to `dst`. Blocks while the destination's window is
    /// full (RCCE backpressure).
    pub fn send(&self, dst: usize, payload: Bytes) -> Result<(), RcceError> {
        if dst >= self.size || dst == self.rank {
            return Err(RcceError::InvalidRank {
                rank: dst,
                size: self.size,
            });
        }
        let tx = self.outs[dst].as_ref().expect("channel matrix hole");
        let bytes = payload.len() as u64;
        let t0 = Instant::now();
        tx.send(payload)
            .map_err(|_| RcceError::Disconnected { rank: dst })?;
        self.stats
            .send_wait_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats.sent_messages.fetch_add(1, Ordering::Relaxed);
        self.stats.sent_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Blocking receive from `src`, recording the wait time.
    pub fn recv(&self, src: usize) -> Result<Bytes, RcceError> {
        if src >= self.size || src == self.rank {
            return Err(RcceError::InvalidRank {
                rank: src,
                size: self.size,
            });
        }
        let rx = self.ins[src].as_ref().expect("channel matrix hole");
        let t0 = Instant::now();
        let payload = rx
            .recv()
            .map_err(|_| RcceError::Disconnected { rank: src })?;
        let waited = t0.elapsed();
        self.stats
            .recv_wait_ns
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        self.wait_samples.lock().push(waited);
        self.stats.recv_messages.fetch_add(1, Ordering::Relaxed);
        self.stats
            .recv_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        Ok(payload)
    }

    /// Non-blocking receive from `src`.
    pub fn try_recv(&self, src: usize) -> Result<Option<Bytes>, RcceError> {
        if src >= self.size || src == self.rank {
            return Err(RcceError::InvalidRank {
                rank: src,
                size: self.size,
            });
        }
        let rx = self.ins[src].as_ref().expect("channel matrix hole");
        match rx.try_recv() {
            Ok(p) => {
                self.stats.recv_messages.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .recv_bytes
                    .fetch_add(p.len() as u64, Ordering::Relaxed);
                Ok(Some(p))
            }
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                Err(RcceError::Disconnected { rank: src })
            }
        }
    }

    /// Synchronise all ranks (RCCE_barrier).
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Drain the recorded recv-wait samples (for idle-time statistics).
    pub fn take_wait_samples(&self) -> Vec<Duration> {
        std::mem::take(&mut *self.wait_samples.lock())
    }

    /// Number of MPB chunks a payload of `bytes` would need on hardware.
    pub fn chunks_for(&self, bytes: u64) -> u64 {
        self.mpb.chunks(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn comm(n: usize) -> Vec<Endpoint> {
        communicator(n, 2, MpbConfig::default())
    }

    #[test]
    fn ping_pong() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = thread::spawn(move || {
            let m = b.recv(0).unwrap();
            assert_eq!(&m[..], b"ping");
            b.send(0, Bytes::from_static(b"pong")).unwrap();
        });
        a.send(1, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(&a.recv(1).unwrap()[..], b"pong");
        t.join().unwrap();
        assert_eq!(a.stats().sent_messages.load(Ordering::Relaxed), 1);
        assert_eq!(a.stats().recv_bytes.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn selective_receive_by_source() {
        let mut eps = comm(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let tb = thread::spawn(move || b.send(2, Bytes::from_static(b"from-b")).unwrap());
        let ta = thread::spawn(move || a.send(2, Bytes::from_static(b"from-a")).unwrap());
        // Receive from rank 1 first regardless of arrival order.
        assert_eq!(&c.recv(1).unwrap()[..], b"from-b");
        assert_eq!(&c.recv(0).unwrap()[..], b"from-a");
        ta.join().unwrap();
        tb.join().unwrap();
    }

    #[test]
    fn messages_from_same_source_keep_order() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = thread::spawn(move || {
            for i in 0u8..100 {
                a.send(1, Bytes::copy_from_slice(&[i])).unwrap();
            }
        });
        for i in 0u8..100 {
            assert_eq!(b.recv(0).unwrap()[0], i);
        }
        t.join().unwrap();
    }

    #[test]
    fn bounded_window_applies_backpressure() {
        let mut eps = communicator(2, 1, MpbConfig::default());
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = thread::spawn(move || {
            // Fill the single-slot window, then block on the second send
            // until the receiver drains.
            a.send(1, Bytes::from_static(b"1")).unwrap();
            a.send(1, Bytes::from_static(b"2")).unwrap();
            a.stats().send_wait_ns.load(Ordering::Relaxed)
        });
        thread::sleep(Duration::from_millis(50));
        b.recv(0).unwrap();
        b.recv(0).unwrap();
        let wait_ns = t.join().unwrap();
        assert!(
            wait_ns > 10_000_000,
            "sender should have blocked ~50 ms, waited {wait_ns} ns"
        );
    }

    #[test]
    fn invalid_ranks_rejected() {
        let eps = comm(2);
        assert!(matches!(
            eps[0].send(0, Bytes::new()),
            Err(RcceError::InvalidRank { .. })
        ));
        assert!(matches!(
            eps[0].send(5, Bytes::new()),
            Err(RcceError::InvalidRank { .. })
        ));
        assert!(matches!(eps[1].recv(1), Err(RcceError::InvalidRank { .. })));
    }

    #[test]
    fn disconnected_peer_errors() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        drop(eps); // drop rank 0 entirely
        assert!(matches!(b.recv(0), Err(RcceError::Disconnected { .. })));
        assert!(matches!(
            b.send(0, Bytes::new()),
            Err(RcceError::Disconnected { .. })
        ));
    }

    #[test]
    fn try_recv_does_not_block() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert!(b.try_recv(0).unwrap().is_none());
        a.send(1, Bytes::from_static(b"x")).unwrap();
        // Poll until visible (bounded channel send is synchronous here,
        // so it must be immediately visible).
        assert_eq!(&b.try_recv(0).unwrap().unwrap()[..], b"x");
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        let eps = comm(4);
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    ep.barrier();
                    // After the barrier every rank's increment is visible.
                    assert_eq!(c.load(Ordering::SeqCst), 4);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn wait_samples_recorded() {
        let mut eps = comm(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            a.send(1, Bytes::from_static(b"late")).unwrap();
        });
        b.recv(0).unwrap();
        t.join().unwrap();
        let samples = b.take_wait_samples();
        assert_eq!(samples.len(), 1);
        assert!(samples[0] >= Duration::from_millis(10));
        assert!(b.take_wait_samples().is_empty(), "drained");
    }
}
