//! Error type for the RCCE-style communicator.

use std::fmt;

/// Errors surfaced by communicator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RcceError {
    /// Rank out of range or messaging yourself.
    InvalidRank { rank: usize, size: usize },
    /// Peer endpoint was dropped.
    Disconnected { rank: usize },
    /// No intact message arrived from `rank` within the reliability
    /// window (reliable receive path only).
    Timeout { rank: usize },
    /// A payload from `rank` arrived but failed its CRC check and no
    /// intact retransmission followed.
    Corrupt { rank: usize },
    /// A reliable send to `rank` exhausted its retry budget without an
    /// acknowledgement.
    RetriesExhausted { rank: usize, attempts: u32 },
    /// The ARQ state machine saw an illegal transition — e.g. an intact
    /// envelope from the future of a FIFO stream. Indicates a protocol
    /// bug, not a transport fault, so it is never retried.
    Protocol { rank: usize, detail: &'static str },
}

impl fmt::Display for RcceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcceError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            RcceError::Disconnected { rank } => write!(f, "rank {rank} disconnected"),
            RcceError::Timeout { rank } => {
                write!(f, "timed out waiting for a message from rank {rank}")
            }
            RcceError::Corrupt { rank } => {
                write!(f, "message from rank {rank} failed its CRC check")
            }
            RcceError::RetriesExhausted { rank, attempts } => {
                write!(
                    f,
                    "send to rank {rank} unacknowledged after {attempts} attempts"
                )
            }
            RcceError::Protocol { rank, detail } => {
                write!(f, "ARQ protocol violation with rank {rank}: {detail}")
            }
        }
    }
}

impl std::error::Error for RcceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RcceError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));
        let d = RcceError::Disconnected { rank: 2 };
        assert!(d.to_string().contains("disconnected"));
        let t = RcceError::Timeout { rank: 3 };
        assert!(t.to_string().contains("timed out"));
        let c = RcceError::Corrupt { rank: 1 };
        assert!(c.to_string().contains("CRC"));
        let r = RcceError::RetriesExhausted {
            rank: 0,
            attempts: 4,
        };
        assert!(r.to_string().contains("4 attempts"));
        let p = RcceError::Protocol {
            rank: 6,
            detail: "reordered",
        };
        assert!(p.to_string().contains("protocol violation"));
    }
}
