//! Error type for the RCCE-style communicator.

use std::fmt;

/// Errors surfaced by communicator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RcceError {
    /// Rank out of range or messaging yourself.
    InvalidRank { rank: usize, size: usize },
    /// Peer endpoint was dropped.
    Disconnected { rank: usize },
}

impl fmt::Display for RcceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcceError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            RcceError::Disconnected { rank } => write!(f, "rank {rank} disconnected"),
        }
    }
}

impl std::error::Error for RcceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RcceError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));
        let d = RcceError::Disconnected { rank: 2 };
        assert!(d.to_string().contains("disconnected"));
    }
}
