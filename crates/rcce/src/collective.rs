//! Collectives built on the point-to-point primitives, RCCE-style
//! (RCCE implements its collectives in software over send/recv too).

use crate::comm::Endpoint;
use crate::error::RcceError;
use bytes::Bytes;

/// Root sends `payload` to every other rank; non-roots return the payload
/// they received. A simple linear broadcast, like RCCE_bcast.
pub fn broadcast(ep: &Endpoint, root: usize, payload: Option<Bytes>) -> Result<Bytes, RcceError> {
    if ep.rank() == root {
        let p = payload.expect("root must supply the broadcast payload");
        for d in 0..ep.size() {
            if d != root {
                ep.send(d, p.clone())?;
            }
        }
        Ok(p)
    } else {
        ep.recv(root)
    }
}

/// Every rank sends its contribution to `root`; root returns all
/// contributions ordered by rank (its own slot holds its own payload).
pub fn gather(ep: &Endpoint, root: usize, payload: Bytes) -> Result<Option<Vec<Bytes>>, RcceError> {
    if ep.rank() == root {
        let mut out = vec![Bytes::new(); ep.size()];
        out[root] = payload;
        for (s, slot) in out.iter_mut().enumerate() {
            if s != root {
                *slot = ep.recv(s)?;
            }
        }
        Ok(Some(out))
    } else {
        ep.send(root, payload)?;
        Ok(None)
    }
}

/// Root splits `parts` among ranks; rank `i` receives `parts[i]`.
pub fn scatter(ep: &Endpoint, root: usize, parts: Option<Vec<Bytes>>) -> Result<Bytes, RcceError> {
    if ep.rank() == root {
        let parts = parts.expect("root must supply the scatter parts");
        assert_eq!(parts.len(), ep.size(), "one part per rank");
        for (d, p) in parts.iter().enumerate() {
            if d != root {
                ep.send(d, p.clone())?;
            }
        }
        Ok(parts[root].clone())
    } else {
        ep.recv(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::communicator;
    use crate::mpb::MpbConfig;
    use std::thread;

    fn run_all<F>(n: usize, f: F)
    where
        F: Fn(Endpoint) + Send + Sync + Clone + 'static,
    {
        let eps = communicator(n, n, MpbConfig::default());
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let f = f.clone();
                thread::spawn(move || f(ep))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        run_all(4, |ep| {
            let payload = (ep.rank() == 1).then(|| Bytes::from_static(b"hello"));
            let got = broadcast(&ep, 1, payload).unwrap();
            assert_eq!(&got[..], b"hello");
        });
    }

    #[test]
    fn gather_collects_in_rank_order() {
        run_all(5, |ep| {
            let mine = Bytes::from(vec![ep.rank() as u8]);
            let res = gather(&ep, 0, mine).unwrap();
            if ep.rank() == 0 {
                let all = res.unwrap();
                for (i, b) in all.iter().enumerate() {
                    assert_eq!(b[0] as usize, i);
                }
            } else {
                assert!(res.is_none());
            }
        });
    }

    #[test]
    fn scatter_distributes_parts() {
        run_all(3, |ep| {
            let parts = (ep.rank() == 2).then(|| {
                (0..3u8)
                    .map(|i| Bytes::from(vec![i * 10]))
                    .collect::<Vec<_>>()
            });
            let got = scatter(&ep, 2, parts).unwrap();
            assert_eq!(got[0] as usize, ep.rank() * 10);
        });
    }

    #[test]
    fn broadcast_then_gather_roundtrip() {
        run_all(4, |ep| {
            let payload = (ep.rank() == 0).then(|| Bytes::from_static(b"work"));
            let work = broadcast(&ep, 0, payload).unwrap();
            let response = Bytes::from(format!("{}:{}", ep.rank(), work.len()));
            let all = gather(&ep, 0, response).unwrap();
            if let Some(all) = all {
                assert_eq!(all.len(), 4);
                assert_eq!(&all[3][..], b"3:4");
            }
        });
    }
}
