//! Shared run-and-compare harness for the equivalence suites.
//!
//! The four differential suites (`runner_equivalence`,
//! `taskrt_equivalence`, `autoplace_equivalence`, `recovery_equivalence`)
//! and the serving suites (`serve_cache`, `serve_conformance`) all drive
//! the same small city scene through the same 48×40 seed-23 configuration
//! space and compare films by frame checksum against the sequential
//! reference. Those helpers live here exactly once. Each suite is its own
//! crate root, so it pulls this in with `mod common;` and uses the subset
//! it needs (hence `allow(dead_code)`).
#![allow(dead_code)]

use scc_core::viz::frame_checksum;
use scc_core::{
    reference::reference_frames, Arrangement, FaultSpec, Fidelity, KillSpec, RendererMode,
    RunConfig,
};
use scc_filters::Image;
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

/// Every renderer mode (§V's three scenarios).
pub const MODES: [RendererMode; 3] = [
    RendererMode::SingleRenderer,
    RendererMode::PerPipelineRenderer,
    RendererMode::McpcRenderer,
];

/// Every fixed core arrangement (§IV-A).
pub const ARRANGEMENTS: [Arrangement; 3] = [
    Arrangement::Unordered,
    Arrangement::Ordered,
    Arrangement::Flipped,
];

/// The suites' shared city scene: small enough for per-test runs, big
/// enough that every strip sees geometry.
pub fn scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig {
        side: 8,
        spacing: 8.0,
        seed: 17,
    }))
}

/// The shared configuration space: 48×40 frames at seed 23, full
/// fidelity, parameterised over renderer mode, arrangement, pipeline
/// count and frame count. Suites wrap this with their own defaults.
pub fn cfg_with(mode: RendererMode, arr: Arrangement, pipelines: u32, frames: u64) -> RunConfig {
    RunConfig::builder()
        .renderer(mode)
        .arrangement(arr)
        .pipelines(pipelines)
        .size(48, 40)
        .frames(frames)
        .seed(23)
        .fidelity(Fidelity::Full)
        .build()
        .expect("valid config")
}

/// Per-frame FNV checksums of a film.
pub fn checksums(frames: &[Image]) -> Vec<u64> {
    frames.iter().map(frame_checksum).collect()
}

/// The reference data path for a config: MCPC mode renders full frames
/// and splits, exactly like the single-renderer reference.
pub fn oracle(c: &RunConfig) -> Vec<u64> {
    let mut rc = c.clone();
    if rc.renderer == RendererMode::McpcRenderer {
        rc.renderer = RendererMode::SingleRenderer;
    }
    checksums(&reference_frames(&rc, scene()))
}

/// A fast-detecting supervisor spec with one fail-stop kill.
pub fn kill_spec(pipeline: u32, stage: u32, at_ms: u64) -> FaultSpec {
    FaultSpec {
        kills: vec![KillSpec {
            pipeline,
            stage,
            at_ms,
        }],
        heartbeat_period_us: 2_000,
        phi_dead: 2.0,
        ..FaultSpec::default()
    }
}
