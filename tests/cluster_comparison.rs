//! Figure 13 / Table I HPC rows: the same macro pipeline on a modern
//! cluster node embarrasses the SCC — and the configurations invert
//! (what is slowest on the SCC is fastest on the cluster).

use scc_cluster::{cluster_walkthrough, ClusterMode};
use scc_core::{RendererMode, RunConfig, SimRunner};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig::default()))
}

fn cfg() -> RunConfig {
    RunConfig::builder()
        .frames(60)
        .build()
        .expect("valid config")
}

fn cluster_secs(mode: ClusterMode, p: u32, s: &Arc<Scene>) -> f64 {
    cluster_walkthrough(mode, p, &cfg(), Arc::clone(s)).total_secs
}

#[test]
fn cluster_is_several_times_faster_than_the_scc() {
    // "the rendering can be done at least three times faster than on the
    // MCPC-SCC combination (which was the fastest on the SCC system)".
    let s = scene();
    let scc_best = (1..=8u32)
        .map(|p| {
            SimRunner::new(
                RunConfig::builder()
                    .renderer(RendererMode::McpcRenderer)
                    .pipelines(p)
                    .frames(60)
                    .build()
                    .expect("valid config"),
                Arc::clone(&s),
            )
            .run()
            .total_secs
        })
        .fold(f64::INFINITY, f64::min);
    let cluster_1pl = cluster_secs(ClusterMode::SingleRenderer, 1, &s);
    assert!(
        cluster_1pl * 1.5 < scc_best,
        "even one cluster pipeline ({cluster_1pl:.1}s) should crush the \
         SCC's best ({scc_best:.1}s)"
    );
}

#[test]
fn seven_pipeline_cluster_is_an_order_of_magnitude_faster() {
    // "Using seven pipelines, the cluster is 13.5 times faster than the
    // SCC system."
    let s = scene();
    let scc7 = SimRunner::new(
        RunConfig::builder()
            .renderer(RendererMode::PerPipelineRenderer)
            .pipelines(7)
            .frames(60)
            .build()
            .expect("valid config"),
        Arc::clone(&s),
    )
    .run()
    .total_secs;
    let hpc7 = cluster_secs(ClusterMode::ParallelRenderer, 7, &s);
    let ratio = scc7 / hpc7;
    assert!(
        (8.0..20.0).contains(&ratio),
        "cluster speed-up {ratio:.1}x at 7 pipelines (paper: 13.5x)"
    );
}

#[test]
fn cluster_parallel_renderer_scales_smoothly() {
    // Table I HPC rows: 26 -> 14 -> 10 -> 7 -> 6 -> 5 -> 4 seconds.
    let s = scene();
    let times: Vec<f64> = (1..=7u32)
        .map(|p| cluster_secs(ClusterMode::ParallelRenderer, p, &s))
        .collect();
    for w in times.windows(2) {
        assert!(w[1] < w[0], "monotone scaling expected: {times:?}");
    }
    assert!(
        times[0] / times[6] > 4.0,
        "7 pipelines should be >4x one pipeline: {times:?}"
    );
}

#[test]
fn external_renderer_hits_a_network_plateau_on_the_cluster() {
    // Table I: HPC external rend. flattens around 18-20 s while the
    // on-node configurations keep scaling to ~4 s.
    let s = scene();
    let ext: Vec<f64> = (1..=7u32)
        .map(|p| cluster_secs(ClusterMode::ExternalRenderer, p, &s))
        .collect();
    let par: Vec<f64> = (1..=7u32)
        .map(|p| cluster_secs(ClusterMode::ParallelRenderer, p, &s))
        .collect();
    // Plateau: last three external values within 15% of each other.
    let p5 = ext[4];
    assert!((ext[5] - p5).abs() < p5 * 0.15 && (ext[6] - p5).abs() < p5 * 0.15);
    // And well above the on-node configurations at 7 pipelines.
    assert!(
        ext[6] > par[6] * 2.0,
        "external {} vs parallel {}",
        ext[6],
        par[6]
    );
}

#[test]
fn slowest_scc_config_is_fastest_cluster_config() {
    // "The other configurations that were the slowest on the SCC system
    // achieve the best performance on the cluster nodes."
    let s = scene();
    // On the SCC, the n-renderer configuration is slowest at 1-2
    // pipelines; on the cluster, parallel rendering ties for fastest.
    let hpc_par = cluster_secs(ClusterMode::ParallelRenderer, 7, &s);
    let hpc_ext = cluster_secs(ClusterMode::ExternalRenderer, 7, &s);
    assert!(
        hpc_par < hpc_ext,
        "parallel ({hpc_par:.1}) beats external ({hpc_ext:.1})"
    );
}

#[test]
fn cluster_and_scc_runs_are_deterministic() {
    let s = scene();
    let a = cluster_secs(ClusterMode::SingleRenderer, 4, &s);
    let b = cluster_secs(ClusterMode::SingleRenderer, 4, &s);
    assert_eq!(a, b);
}
