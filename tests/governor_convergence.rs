//! Convergence suite for the closed-loop DVFS governor.
//!
//! The governor watches per-station idle fractions each epoch and moves
//! one frequency step at a time. These tests pin *where it lands*:
//!
//! * on the film pipeline it re-discovers the paper's §VI-D split —
//!   the expensive filters raised to 800 MHz, coasting islands
//!   throttled to 400 MHz — and both virtual-time backends make the
//!   identical decision sequence;
//! * on the irregular wavefront workload it converges to a *different*
//!   split (the expand stage's island raised, the commit island
//!   throttled), because the bottleneck lives elsewhere;
//! * the frequency plan improves time *and* energy over the static
//!   default, raising the power cap never slows the run, and no tile
//!   oscillates (raise → throttle → raise) within a run.

use proptest::prelude::*;
use scc_core::{
    replay_decisions, run, Backend, BackendReport, GovernorAction, GovernorDecision,
    GovernorTuning, RunConfig, StageKind, WavefrontSpec, Workload,
};
use scc_sim::{DvfsState, FreqMHz, IslandId, TileId};

/// The paper's §VI-D DVFS setup: rendering on the MCPC, the filter
/// chain on-chip, so the expensive filters are the raisable bottleneck.
fn film_cfg(tuning: Option<GovernorTuning>) -> RunConfig {
    let mut b = RunConfig::builder()
        .renderer(scc_core::RendererMode::McpcRenderer)
        .pipelines(1)
        .size(128, 96)
        .frames(64)
        .seed(42)
        .fidelity(scc_core::Fidelity::TimingOnly)
        .verify(true);
    if let Some(t) = tuning {
        b = b.power_governed(t);
    }
    b.build().expect("valid film config")
}

/// The DES cross-validator's scope: single on-chip renderer. Here the
/// bottleneck (render) is protected, so the governor's moves are pure
/// energy savings — throttling coasting islands.
fn single_renderer_cfg(tuning: GovernorTuning) -> RunConfig {
    RunConfig::builder()
        .pipelines(1)
        .size(128, 96)
        .frames(64)
        .seed(42)
        .fidelity(scc_core::Fidelity::TimingOnly)
        .verify(true)
        .power_governed(tuning)
        .build()
        .expect("valid film config")
}

fn wavefront_cfg(tuning: Option<GovernorTuning>) -> RunConfig {
    let mut b = RunConfig::builder()
        .seed(11)
        .verify(true)
        .workload(Workload::Wavefront(WavefrontSpec::default()));
    if let Some(t) = tuning {
        b = b.power_governed(t);
    }
    b.build().expect("valid wavefront config")
}

/// Tiles a decision trace raised (ever) and throttled (ever).
fn moved_tiles(decisions: &[GovernorDecision]) -> (Vec<TileId>, Vec<IslandId>) {
    let mut raised = Vec::new();
    let mut throttled = Vec::new();
    for d in decisions {
        match d.action {
            GovernorAction::Raise { tile, .. } => {
                if !raised.contains(&tile) {
                    raised.push(tile);
                }
            }
            GovernorAction::Throttle { island, .. } => {
                if !throttled.contains(&island) {
                    throttled.push(island);
                }
            }
            _ => {}
        }
    }
    (raised, throttled)
}

/// Per-tile direction changes across a trace: raise-after-throttle or
/// throttle-after-raise on the same tile.
fn direction_changes(decisions: &[GovernorDecision]) -> usize {
    use std::collections::HashMap;
    let mut last: HashMap<u8, i8> = HashMap::new();
    let mut changes = 0;
    for d in decisions {
        let moves: Vec<(u8, i8)> = match d.action {
            GovernorAction::Raise { tile, .. } => vec![(tile.index() as u8, 1)],
            GovernorAction::Throttle { island, .. } => island
                .tiles()
                .iter()
                .map(|t| (t.index() as u8, -1))
                .collect(),
            _ => vec![],
        };
        for (tile, dir) in moves {
            if let Some(prev) = last.insert(tile, dir) {
                if prev != dir {
                    changes += 1;
                }
            }
        }
    }
    changes
}

#[test]
fn film_governor_converges_to_the_paper_split() {
    let cfg = film_cfg(Some(GovernorTuning::default()));
    let sim = run(&cfg, Backend::Sim);
    let BackendReport::Sim(sim_report) = &sim.report else {
        unreachable!()
    };

    // The converged plan is the paper's: the expensive filters (sepia
    // and blur) raised to 800 MHz, coasting islands down at 400 MHz.
    assert!(
        !sim_report.dvfs_decisions.is_empty(),
        "the governor never acted on the film"
    );
    let state = replay_decisions(&DvfsState::default(), &sim_report.dvfs_decisions);
    let blur_core = sim_report
        .stage_reports
        .iter()
        .find(|s| s.kind == StageKind::Blur)
        .expect("film runs report a blur stage")
        .core_id;
    let blur_tile = scc_sim::CoreId::new(blur_core).tile();
    assert_eq!(
        state.tile_freq(blur_tile),
        FreqMHz::F800,
        "the paper's split accelerates the blur tile"
    );
    let (raised, throttled) = moved_tiles(&sim_report.dvfs_decisions);
    assert!(raised.len() >= 2, "sepia and blur both raise: {raised:?}");
    assert!(!throttled.is_empty(), "coasting islands throttle");
    // The chain connector's island is protected: never throttled.
    let connect_core = sim_report
        .stage_reports
        .iter()
        .find(|s| s.kind == StageKind::Connect)
        .expect("connect stage")
        .core_id;
    let connect_island = IslandId::of_tile(scc_sim::CoreId::new(connect_core).tile());
    assert!(
        !throttled.contains(&connect_island),
        "the governor must not throttle the connector's island"
    );
}

#[test]
fn film_decision_trace_is_backend_independent() {
    // The DES validator's scope is the single-renderer film; there the
    // protected render core is the bottleneck, so the governed trace is
    // throttle-only — and must be identical event-for-event across the
    // two independent schedulers.
    let cfg = single_renderer_cfg(GovernorTuning::default());
    let sim = run(&cfg, Backend::Sim);
    let des = run(&cfg, Backend::Des);
    let BackendReport::Sim(sim_r) = &sim.report else {
        unreachable!()
    };
    let BackendReport::Des(des_r) = &des.report else {
        unreachable!()
    };
    assert!(!sim_r.dvfs_decisions.is_empty());
    assert_eq!(sim_r.dvfs_decisions, des_r.dvfs_decisions);
    assert!(sim_r
        .dvfs_decisions
        .iter()
        .all(|d| !matches!(d.action, GovernorAction::Raise { .. })));
}

#[test]
fn film_governed_run_beats_the_static_default_on_time_and_energy() {
    let stat = run(&film_cfg(None), Backend::Sim);
    let gov = run(&film_cfg(Some(GovernorTuning::default())), Backend::Sim);
    let BackendReport::Sim(stat_r) = &stat.report else {
        unreachable!()
    };
    let BackendReport::Sim(gov_r) = &gov.report else {
        unreachable!()
    };
    assert!(
        gov_r.total_secs < stat_r.total_secs,
        "governed {} s vs static {} s",
        gov_r.total_secs,
        stat_r.total_secs
    );
    assert!(
        gov_r.scc_energy_joules < stat_r.scc_energy_joules,
        "governed {} J vs static {} J",
        gov_r.scc_energy_joules,
        stat_r.scc_energy_joules
    );
}

#[test]
fn governor_never_touches_a_pixel() {
    // Frequency moves change *when* strips compute, never *what* they
    // compute: the delivered film is checksum-identical governor on/off.
    let mk = |tuning: Option<GovernorTuning>| {
        let mut b = RunConfig::builder()
            .renderer(scc_core::RendererMode::McpcRenderer)
            .pipelines(1)
            .size(64, 48)
            .frames(24)
            .seed(42)
            .fidelity(scc_core::Fidelity::Full);
        if let Some(t) = tuning {
            b = b.power_governed(t);
        }
        b.build().expect("valid config")
    };
    let stat = run(&mk(None), Backend::Sim);
    let gov = run(&mk(Some(GovernorTuning::default())), Backend::Sim);
    let BackendReport::Sim(stat_r) = &stat.report else {
        unreachable!()
    };
    let BackendReport::Sim(gov_r) = &gov.report else {
        unreachable!()
    };
    let sums = |r: &scc_core::WalkthroughReport| -> Vec<u64> {
        r.outputs
            .as_ref()
            .expect("full fidelity keeps frames")
            .iter()
            .map(scc_core::viz::frame_checksum)
            .collect()
    };
    assert_eq!(sums(stat_r), sums(gov_r));
}

#[test]
fn wavefront_converges_to_a_different_split_than_the_film() {
    let film = run(&film_cfg(Some(GovernorTuning::default())), Backend::Sim);
    let wave = run(&wavefront_cfg(Some(GovernorTuning::default())), Backend::Sim);
    let BackendReport::Sim(film_r) = &film.report else {
        unreachable!()
    };
    let BackendReport::Generic(wave_r) = &wave.report else {
        unreachable!()
    };
    assert!(
        !wave_r.dvfs_decisions.is_empty(),
        "the governor never acted on the wavefront"
    );
    let (film_raised, film_throttled) = moved_tiles(&film_r.dvfs_decisions);
    let (wave_raised, wave_throttled) = moved_tiles(&wave_r.dvfs_decisions);
    assert!(!wave_raised.is_empty());
    assert_ne!(
        (film_raised.clone(), film_throttled),
        (wave_raised.clone(), wave_throttled),
        "two workloads with different bottlenecks must converge differently"
    );
    // Island-major placement: the wavefront's raised tiles sit on
    // different voltage islands, so a raise never drags a neighbour
    // group's voltage up.
    let islands: std::collections::HashSet<_> = wave_raised
        .iter()
        .map(|t| IslandId::of_tile(*t))
        .collect();
    assert_eq!(islands.len(), wave_raised.len());
}

#[test]
fn wavefront_decision_trace_is_backend_independent() {
    let cfg = wavefront_cfg(Some(GovernorTuning::default()));
    let sim = run(&cfg, Backend::Sim);
    let des = run(&cfg, Backend::Des);
    let BackendReport::Generic(sim_r) = &sim.report else {
        unreachable!()
    };
    let BackendReport::Generic(des_r) = &des.report else {
        unreachable!()
    };
    assert_eq!(sim_r.dvfs_decisions, des_r.dvfs_decisions);
    assert_eq!(sim_r.output_digest, des_r.output_digest);
}

#[test]
fn zero_cap_blocks_every_raise() {
    let tuning = GovernorTuning {
        power_cap_watts: 0.0,
        ..GovernorTuning::default()
    };
    let out = run(&wavefront_cfg(Some(tuning)), Backend::Sim);
    let BackendReport::Generic(r) = &out.report else {
        unreachable!()
    };
    assert!(r
        .dvfs_decisions
        .iter()
        .all(|d| !matches!(d.action, GovernorAction::Raise { .. })));
    assert!(
        r.dvfs_decisions
            .iter()
            .any(|d| matches!(d.action, GovernorAction::CapBlocked { .. })),
        "a zero cap must be visible as cap-blocks, not silence"
    );
}

#[test]
fn no_tile_oscillates_within_a_run() {
    for cfg in [
        film_cfg(Some(GovernorTuning::default())),
        wavefront_cfg(Some(GovernorTuning::default())),
    ] {
        let out = run(&cfg, Backend::Sim);
        let decisions = match &out.report {
            BackendReport::Sim(r) => r.dvfs_decisions.clone(),
            BackendReport::Generic(r) => r.dvfs_decisions.clone(),
            _ => unreachable!(),
        };
        assert_eq!(
            direction_changes(&decisions),
            0,
            "hysteresis must prevent raise/throttle ping-pong: {decisions:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case runs four full wavefront sweeps
        ..ProptestConfig::default()
    })]

    /// Raising the power cap only ever adds raises, and the extra speed
    /// never costs wall-clock time: energy-vs-cap is monotone in the
    /// direction the control law promises.
    #[test]
    fn raising_the_cap_is_monotone(seed in 1u64..64) {
        let mut prev_raises = 0usize;
        let mut prev_total = f64::INFINITY;
        for cap in [0.0f64, 4.0, 8.0, 16.0] {
            let tuning = GovernorTuning { power_cap_watts: cap, ..GovernorTuning::default() };
            let mut cfg = wavefront_cfg(Some(tuning));
            cfg.seed = seed;
            let out = run(&cfg, Backend::Sim);
            let BackendReport::Generic(r) = &out.report else { unreachable!() };
            let raises = r
                .dvfs_decisions
                .iter()
                .filter(|d| matches!(d.action, GovernorAction::Raise { .. }))
                .count();
            prop_assert!(
                raises >= prev_raises,
                "cap {} admitted {} raises after {} at the lower cap",
                cap, raises, prev_raises
            );
            prop_assert!(
                r.total_secs <= prev_total * (1.0 + 1e-9),
                "cap {} slowed the run: {} s after {} s",
                cap, r.total_secs, prev_total
            );
            prev_raises = raises;
            prev_total = r.total_secs;
        }
    }
}
