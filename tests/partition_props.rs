//! Property tests for the stage-graph partitioner (`scc_core::partition`):
//! for arbitrary stage chains, lane counts and core budgets the emitted
//! [`scc_core::StagePlan`] is always *legal* —
//!
//! * every stage lands in exactly one group, chain order preserved;
//! * multi-stage groups contain only mergeable (stateless) stages;
//! * replication (`replicas > 1`) only for stateless singleton groups;
//! * `lanes x cores_per_lane` never exceeds the interior budget;
//! * the partitioner is a pure function: same inputs, same plan;
//! * it fails *only* when even maximal merging cannot seat the lanes.
//!
//! The case stream derives from `PROPTEST_RNG_SEED` (CI pins it), so a
//! failure reproduces exactly.

use proptest::prelude::*;
use scc_core::{
    auto_place, partition, partition_with, CostModel, FuseChoice, GroupCosting, RunConfig,
    StageClass, StageKind, StageNode,
};

/// Interior stage classes the partitioner can encounter (sources and
/// sinks are stripped before partitioning).
fn arb_class() -> impl Strategy<Value = StageClass> {
    prop_oneof![
        Just(StageClass::Pointwise),
        Just(StageClass::Pointwise),
        Just(StageClass::Stencil),
        Just(StageClass::Stateful),
    ]
}

fn arb_node() -> impl Strategy<Value = StageNode> {
    (any::<u8>(), arb_class(), 0.0f64..1e9).prop_map(|(k, class, weight)| StageNode {
        kind: StageKind::PIPELINE_FILTERS[k as usize % 5],
        class,
        weight,
    })
}

fn arb_chain() -> impl Strategy<Value = Vec<StageNode>> {
    proptest::collection::vec(arb_node(), 1..9)
}

/// Fewest groups any legal plan can have: maximal runs of mergeable
/// stages collapse to one group, everything else stands alone.
fn minimal_groups(nodes: &[StageNode]) -> u64 {
    let mut groups = 0u64;
    let mut in_run = false;
    for n in nodes {
        if n.class.mergeable() {
            if !in_run {
                groups += 1;
                in_run = true;
            }
        } else {
            groups += 1;
            in_run = false;
        }
    }
    groups
}

proptest! {
    #[test]
    fn plans_are_always_legal(
        nodes in arb_chain(),
        lanes in 1u32..7,
        budget in 1u32..49,
    ) {
        match partition(&nodes, lanes, budget) {
            Ok(plan) => {
                // Exactly-once, order-preserving coverage.
                prop_assert_eq!(plan.stage_count(), nodes.len());
                let mut next = 0usize;
                for g in &plan.groups {
                    prop_assert_eq!(g.start, next, "groups out of order");
                    prop_assert!(g.len >= 1);
                    next += g.len;
                    // Merges only between mergeable (stateless) stages.
                    if g.len > 1 {
                        for j in g.stages() {
                            prop_assert!(
                                nodes[j].class.mergeable(),
                                "stage {} ({}) merged illegally",
                                j,
                                nodes[j].class.name()
                            );
                        }
                    }
                    // Replication only for stateless singletons.
                    prop_assert!(g.replicas >= 1);
                    if g.replicas > 1 {
                        prop_assert_eq!(g.len, 1, "replicated group must be a singleton");
                        prop_assert!(
                            nodes[g.start].class.replicable(),
                            "stage {} ({}) replicated illegally",
                            g.start,
                            nodes[g.start].class.name()
                        );
                    }
                }
                prop_assert_eq!(next, nodes.len());
                // No oversubscription.
                prop_assert!(
                    u64::from(lanes) * u64::from(plan.cores_per_lane()) <= u64::from(budget),
                    "{} lanes x {} cores/lane > {} budget",
                    lanes,
                    plan.cores_per_lane(),
                    budget
                );
                // Determinism: a pure function of its inputs.
                prop_assert_eq!(plan, partition(&nodes, lanes, budget).unwrap());
            }
            Err(_) => {
                // Refusal is legal only when even maximal merging cannot
                // seat one core per group per lane.
                prop_assert!(
                    u64::from(lanes) * minimal_groups(&nodes) > u64::from(budget),
                    "partitioner gave up although {} lanes x {} minimal groups fit {}",
                    lanes,
                    minimal_groups(&nodes),
                    budget
                );
            }
        }
    }

    #[test]
    fn film_auto_placement_is_legal_for_arbitrary_weights(
        weights in proptest::collection::vec(0.1f64..1e6, 5),
        p in 1u32..7,
    ) {
        // The full scheduler path on the real film pipeline with
        // arbitrary explicit weights: the realized placement must always
        // validate (realize() asserts core uniqueness internally), keep
        // supervisor spares, and reproduce byte-identical decision
        // tables on a second run.
        let mut cfg = RunConfig::builder()
            .pipelines(p)
            .size(64, 64)
            .frames(2)
            .build()
            .expect("valid config");
        cfg.auto_place = true;
        cfg.stage_weights = Some(weights);
        let auto = auto_place(&cfg);
        prop_assert_eq!(auto.plan.stage_count(), 5);
        prop_assert!(
            auto.placement.spare_pool().len() >= scc_core::partition::SPARE_RESERVE as usize
        );
        let again = auto_place(&cfg);
        prop_assert_eq!(auto.decision_table(), again.decision_table());
        prop_assert_eq!(auto.plan, again.plan);
    }

    /// Fused costing changes *prices*, never *legality*: every plan the
    /// fusion-aware partitioner emits satisfies the exact invariants of
    /// `plans_are_always_legal`, it refuses in exactly the same cases as
    /// sum costing, and — since the fused discount can only help a merge
    /// fit under the cadence bound — it never ends up with more groups
    /// than the sum-priced plan.
    #[test]
    fn fused_plans_are_always_legal(
        nodes in arb_chain(),
        lanes in 1u32..7,
        budget in 1u32..49,
    ) {
        let cost = CostModel::default();
        match partition_with(&nodes, lanes, budget, GroupCosting::Fused(&cost)) {
            Ok(plan) => {
                prop_assert_eq!(plan.stage_count(), nodes.len());
                let mut next = 0usize;
                for g in &plan.groups {
                    prop_assert_eq!(g.start, next, "groups out of order");
                    prop_assert!(g.len >= 1);
                    next += g.len;
                    if g.len > 1 {
                        for j in g.stages() {
                            prop_assert!(
                                nodes[j].class.mergeable(),
                                "stage {} ({}) merged illegally",
                                j,
                                nodes[j].class.name()
                            );
                        }
                    }
                    prop_assert!(g.replicas >= 1);
                    if g.replicas > 1 {
                        prop_assert_eq!(g.len, 1, "replicated group must be a singleton");
                        prop_assert!(
                            nodes[g.start].class.replicable(),
                            "stage {} ({}) replicated illegally",
                            g.start,
                            nodes[g.start].class.name()
                        );
                    }
                }
                prop_assert_eq!(next, nodes.len());
                prop_assert!(
                    u64::from(lanes) * u64::from(plan.cores_per_lane()) <= u64::from(budget),
                    "{} lanes x {} cores/lane > {} budget",
                    lanes,
                    plan.cores_per_lane(),
                    budget
                );
                // Determinism under the same costing.
                prop_assert_eq!(
                    &plan,
                    &partition_with(&nodes, lanes, budget, GroupCosting::Fused(&cost)).unwrap()
                );
                // Dominance over sum costing (which must also succeed:
                // feasibility only depends on mergeability, not prices).
                let sum_plan = partition(&nodes, lanes, budget).unwrap();
                prop_assert!(
                    plan.groups.len() <= sum_plan.groups.len(),
                    "fused plan has {} groups, sum plan {}",
                    plan.groups.len(),
                    sum_plan.groups.len()
                );
            }
            Err(_) => {
                prop_assert!(
                    u64::from(lanes) * minimal_groups(&nodes) > u64::from(budget),
                    "fused partitioner gave up although {} lanes x {} minimal groups fit {}",
                    lanes,
                    minimal_groups(&nodes),
                    budget
                );
                prop_assert!(
                    partition(&nodes, lanes, budget).is_err(),
                    "refusal must be costing-independent"
                );
            }
        }
    }

    /// The fused price of a group: exactly the plain weight for a
    /// singleton, never above the plain sum (followers are discounted,
    /// not surcharged), never below its first member's full price.
    #[test]
    fn fused_group_price_brackets(
        weights in proptest::collection::vec(0.0f64..1e9, 1..9),
    ) {
        let cost = CostModel::default();
        let fused = cost.fused_group_cycles(&weights);
        let sum: f64 = weights.iter().sum();
        prop_assert!(fused <= sum, "fused {} exceeds sum {}", fused, sum);
        prop_assert!(fused >= weights[0], "fused {} below first member {}", fused, weights[0]);
        prop_assert_eq!(cost.fused_group_cycles(&weights[..1]), weights[0]);
    }

    /// The full scheduler path with fusion on vs off, arbitrary explicit
    /// weights: both schedules are legal and deterministic, the decision
    /// tables carry their costing tag, and the fused schedule never
    /// needs more groups.
    #[test]
    fn film_auto_placement_is_legal_under_fused_costing(
        weights in proptest::collection::vec(0.1f64..1e6, 5),
        p in 1u32..7,
    ) {
        let mut cfg = RunConfig::builder()
            .pipelines(p)
            .size(64, 64)
            .frames(2)
            .build()
            .expect("valid config");
        cfg.auto_place = true;
        cfg.stage_weights = Some(weights);
        cfg.tuning.fuse = FuseChoice::Off;
        let sum = auto_place(&cfg);
        cfg.tuning.fuse = FuseChoice::On;
        let fused = auto_place(&cfg);
        prop_assert_eq!(sum.costing, "sum");
        prop_assert_eq!(fused.costing, "fused");
        for auto in [&sum, &fused] {
            prop_assert_eq!(auto.plan.stage_count(), 5);
            prop_assert!(
                auto.placement.spare_pool().len() >= scc_core::partition::SPARE_RESERVE as usize
            );
        }
        prop_assert!(
            fused.plan.groups.len() <= sum.plan.groups.len(),
            "fused schedule has {} groups, sum schedule {}",
            fused.plan.groups.len(),
            sum.plan.groups.len()
        );
        let again = auto_place(&cfg);
        prop_assert_eq!(fused.decision_table(), again.decision_table());
        prop_assert!(fused.decision_table().contains("costing=fused"));
        prop_assert!(sum.decision_table().contains("costing=sum"));
    }
}
