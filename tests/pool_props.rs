//! Property tests for the buffer pool and the row-chunk decomposition —
//! the two pieces of host machinery that must be *invisible* to the
//! pipeline's output. The pool may never hand out an aliased live buffer
//! or leak a stale pixel; `chunk_rows` must tile any strip exactly.

use proptest::prelude::*;
use scc_core::pool::BufferPool;
use scc_filters::{chunk_rows, Image, BYTES_PER_PIXEL};
use std::collections::HashSet;

fn arb_geometry() -> impl Strategy<Value = (u32, u32)> {
    (1u32..20, 1u32..20)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Live buffers never alias: however acquires and releases interleave,
    /// every image currently held owns a distinct allocation.
    #[test]
    fn live_buffers_never_alias(
        geoms in prop::collection::vec(arb_geometry(), 2..10),
        release_every in 2usize..5,
        max_free in 1usize..8,
    ) {
        let pool = BufferPool::new(max_free);
        let mut live: Vec<Image> = Vec::new();
        for (i, &(w, h)) in geoms.iter().enumerate() {
            live.push(pool.acquire(w, h));
            if i % release_every == release_every - 1 {
                let img = live.remove(0);
                pool.release(img);
            }
            let ptrs: HashSet<*const u8> =
                live.iter().map(|img| img.as_bytes().as_ptr()).collect();
            prop_assert_eq!(
                ptrs.len(),
                live.len(),
                "two live images share an allocation"
            );
        }
    }

    /// A recycled buffer is fully overwritten: whatever junk the previous
    /// holder left behind, `acquire` equals a fresh `Image::new` and
    /// `acquire_filled` equals its payload — byte for byte.
    #[test]
    fn recycled_buffers_leak_no_stale_pixels(
        junk_geom in arb_geometry(),
        geom in arb_geometry(),
        junk in any::<u32>(),
        payload_seed in any::<u8>(),
    ) {
        let (jw, jh) = junk_geom;
        let (w, h) = geom;
        let pool = BufferPool::new(4);
        let mut dirty = pool.acquire(jw, jh);
        dirty.fill(junk.to_le_bytes());
        pool.release(dirty);

        let clean = pool.acquire(w, h);
        prop_assert_eq!(&clean, &Image::new(w, h), "stale pixels leaked into acquire");
        pool.release(clean);

        let len = w as usize * h as usize * BYTES_PER_PIXEL;
        let payload: Vec<u8> = (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(payload_seed))
            .collect();
        let filled = pool.acquire_filled(w, h, &payload);
        prop_assert_eq!(
            filled.as_bytes(),
            &payload[..],
            "stale pixels leaked into acquire_filled"
        );
    }

    /// Stats accounting holds for any interleaving: every acquire is
    /// recycled or fresh, every release is returned or dropped, and the
    /// free list never exceeds its bound.
    #[test]
    fn pool_accounting_is_conservative(
        geoms in prop::collection::vec(arb_geometry(), 1..16),
        max_free in 0usize..6,
    ) {
        let pool = BufferPool::new(max_free);
        let mut acquires = 0u64;
        let mut releases = 0u64;
        for &(w, h) in &geoms {
            let a = pool.acquire(w, h);
            let b = pool.acquire(w, h);
            acquires += 2;
            pool.release(a);
            releases += 1;
            prop_assert!(pool.free_len() <= max_free, "free list over bound");
            pool.release(b);
            releases += 1;
            prop_assert!(pool.free_len() <= max_free, "free list over bound");
        }
        let s = pool.stats();
        prop_assert_eq!(s.recycled + s.fresh, acquires);
        prop_assert_eq!(s.returned + s.dropped, releases);
        prop_assert_eq!(s.returned as usize - pool.free_len(), s.recycled as usize,
            "returned buffers either sit free or were recycled");
    }

    /// A disabled pool is transparent for any usage pattern.
    #[test]
    fn disabled_pool_is_always_transparent(
        geoms in prop::collection::vec(arb_geometry(), 1..8),
    ) {
        let pool = BufferPool::disabled();
        for &(w, h) in &geoms {
            let img = pool.acquire(w, h);
            prop_assert_eq!(&img, &Image::new(w, h));
            pool.release(img);
            prop_assert_eq!(pool.free_len(), 0);
        }
        prop_assert_eq!(pool.stats(), scc_core::PoolStats::default());
    }

    /// `chunk_rows` tiles `0..rows` exactly for any (rows, workers):
    /// contiguous, non-empty, near-equal chunks, never more than
    /// `workers` of them.
    #[test]
    fn chunk_rows_tiles_any_strip(rows in 0u32..500, workers in 0usize..24) {
        let chunks = chunk_rows(rows, workers);
        if rows == 0 {
            prop_assert!(chunks.is_empty());
        } else {
            prop_assert_eq!(
                chunks.len() as u32,
                (workers.max(1) as u32).min(rows),
                "chunk count"
            );
            let mut y = 0u32;
            let mut min_h = u32::MAX;
            let mut max_h = 0u32;
            for &(y0, h) in &chunks {
                prop_assert_eq!(y0, y, "chunks out of order or overlapping");
                prop_assert!(h > 0, "empty chunk");
                min_h = min_h.min(h);
                max_h = max_h.max(h);
                y += h;
            }
            prop_assert_eq!(y, rows, "chunks do not cover the strip");
            prop_assert!(max_h - min_h <= 1, "chunks not near-equal");
        }
    }
}
