//! §VI-B (power/energy) and §VI-D (DVFS) invariants.

use scc_core::runner::sim::DvfsPlan;
use scc_core::{
    place_dvfs_single_pipeline, CostModel, RendererMode, RunConfig, SimRunner, WalkthroughReport,
};
use scc_render::{CityConfig, Scene};
use scc_sim::power::McpcPower;
use scc_sim::{CoreId, FreqMHz, IslandId, SccConfig, SccPlatform};
use std::sync::Arc;

fn scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig::default()))
}

fn cfg(mode: RendererMode, pipelines: u32) -> RunConfig {
    RunConfig::builder()
        .renderer(mode)
        .pipelines(pipelines)
        .frames(60)
        .build()
        .expect("valid config")
}

fn dvfs_run(settings: Vec<(CoreId, FreqMHz)>, scene: &Arc<Scene>) -> WalkthroughReport {
    let placement = place_dvfs_single_pipeline(RendererMode::McpcRenderer);
    SimRunner::with_parts(
        cfg(RendererMode::McpcRenderer, 1),
        Arc::clone(scene),
        placement,
        SccPlatform::new(SccConfig::default()),
        CostModel::default(),
        DvfsPlan { settings },
    )
    .run()
}

fn blur_core() -> CoreId {
    place_dvfs_single_pipeline(RendererMode::McpcRenderer).pipelines[0][1]
}

fn downstream_settings() -> Vec<(CoreId, FreqMHz)> {
    let placement = place_dvfs_single_pipeline(RendererMode::McpcRenderer);
    let island = IslandId::of_tile(placement.pipelines[0][2].tile());
    let mut v = vec![(blur_core(), FreqMHz::F800)];
    for tile in island.tiles() {
        v.push((tile.cores()[0], FreqMHz::F400));
    }
    v
}

#[test]
fn accelerating_blur_speeds_up_the_walkthrough() {
    // Figure 16: 236 s -> 174 s, a ~26% improvement, from raising only
    // the blur tile to 800 MHz.
    let s = scene();
    let base = dvfs_run(vec![], &s);
    let fast = dvfs_run(vec![(blur_core(), FreqMHz::F800)], &s);
    let gain = 1.0 - fast.total_secs / base.total_secs;
    assert!(
        (0.15..0.45).contains(&gain),
        "blur@800 gain {:.0}% (paper ~26%)",
        gain * 100.0
    );
}

#[test]
fn accelerating_blur_costs_about_four_watts() {
    // §VI-D: "For improved pipelining performance 4-5 additional watts
    // are required" (the whole voltage island rises to 1.3 V).
    let s = scene();
    let base = dvfs_run(vec![], &s);
    let fast = dvfs_run(vec![(blur_core(), FreqMHz::F800)], &s);
    let delta = fast.mean_power() - base.mean_power();
    assert!(
        (2.5..7.0).contains(&delta),
        "power uplift {delta:.1} W should be in the paper's 4-5 W band"
    );
}

#[test]
fn undervolting_downstream_recovers_power_without_losing_time() {
    // Figure 16/17: the mixed 533/800/400 configuration runs as fast as
    // blur@800 (174 vs 175 s) at ~1 W *below* the all-533 baseline.
    let s = scene();
    let base = dvfs_run(vec![], &s);
    let fast = dvfs_run(vec![(blur_core(), FreqMHz::F800)], &s);
    let mixed = dvfs_run(downstream_settings(), &s);
    assert!(
        mixed.total_secs < fast.total_secs * 1.05,
        "undervolting idle-ish stages must not slow the pipeline: {:.1} vs {:.1}",
        mixed.total_secs,
        fast.total_secs
    );
    assert!(
        mixed.mean_power() < base.mean_power(),
        "mixed ({:.1} W) should undercut all-533 ({:.1} W)",
        mixed.mean_power(),
        base.mean_power()
    );
    assert!(mixed.mean_power() < fast.mean_power() - 3.0);
}

#[test]
fn power_rises_roughly_linearly_with_pipelines() {
    // Figure 14: power grows linearly with the number of pipelines.
    let s = scene();
    let powers: Vec<f64> = [1u32, 3, 5, 7]
        .iter()
        .map(|&p| {
            SimRunner::new(cfg(RendererMode::McpcRenderer, p), Arc::clone(&s))
                .run()
                .mean_power()
        })
        .collect();
    for w in powers.windows(2) {
        assert!(
            w[1] > w[0],
            "power must increase with pipelines: {powers:?}"
        );
    }
    // Rough linearity: increments within 3x of each other.
    let d1 = powers[1] - powers[0];
    let d3 = powers[3] - powers[2];
    assert!(d1 > 0.5 && d3 > 0.5 && d1 / d3 < 3.0 && d3 / d1 < 3.0);
}

#[test]
fn idle_chip_draws_about_22_watts() {
    let platform = SccPlatform::new(SccConfig::default());
    let idle = platform.idle_power();
    assert!(
        (21.0..23.0).contains(&idle),
        "idle {idle:.1} W (paper: 22 W)"
    );
}

#[test]
fn running_power_lands_in_the_papers_band() {
    // §VI-B anchors: MCPC config with 5 pipelines ≈ 50 W; n-renderer
    // with 7 pipelines ≈ 58 W.
    let s = scene();
    let hybrid = SimRunner::new(cfg(RendererMode::McpcRenderer, 5), Arc::clone(&s)).run();
    assert!(
        (45.0..56.0).contains(&hybrid.mean_power()),
        "hybrid power {:.1} W (paper ~50 W)",
        hybrid.mean_power()
    );
    let nrend = SimRunner::new(cfg(RendererMode::PerPipelineRenderer, 7), s).run();
    assert!(
        (53.0..68.0).contains(&nrend.mean_power()),
        "n-rend power {:.1} W (paper ~58 W)",
        nrend.mean_power()
    );
}

#[test]
fn hybrid_beats_nrend_on_energy() {
    // §VI-B: 2642 J (hybrid) vs 3364 J (n-renderer) — "it is reasonable
    // to use the hybrid MCPC and SCC approach in long running
    // applications for a better performance/power consumption ratio".
    let s = scene();
    let mcpc = McpcPower::default();
    let hybrid = SimRunner::new(cfg(RendererMode::McpcRenderer, 5), Arc::clone(&s)).run();
    let nrend = SimRunner::new(cfg(RendererMode::PerPipelineRenderer, 7), s).run();
    let he = hybrid.active_energy_joules(&mcpc);
    let ne = nrend.active_energy_joules(&mcpc);
    assert!(he < ne, "hybrid {he:.0} J should beat n-rend {ne:.0} J");
}

#[test]
fn mcpc_render_time_is_seconds_not_minutes() {
    // §VI-B: "The rendering of all images took only about 3.3 seconds" —
    // scaled to this test's 60-frame walkthrough, ~0.5 s.
    let s = scene();
    let hybrid = SimRunner::new(cfg(RendererMode::McpcRenderer, 5), s).run();
    let full_walkthrough_equiv = hybrid.mcpc_busy_secs * 400.0 / 60.0;
    assert!(
        (2.0..5.0).contains(&full_walkthrough_equiv),
        "MCPC render time {full_walkthrough_equiv:.1} s per 400 frames (paper 3.3 s)"
    );
}
