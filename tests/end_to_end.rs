//! End-to-end data-path correctness: the simulated pipeline, the native
//! (real threads) pipeline and the sequential reference must produce
//! bit-identical frames for every renderer configuration.

use scc_core::{
    reference::reference_frames, run_native, Arrangement, Fidelity, RendererMode, RunConfig,
    SimRunner,
};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig {
        side: 8,
        spacing: 8.0,
        seed: 11,
    }))
}

fn cfg(mode: RendererMode, pipelines: u32) -> RunConfig {
    RunConfig::builder()
        .renderer(mode)
        .pipelines(pipelines)
        .size(72, 60)
        .frames(4)
        .seed(2013)
        .fidelity(Fidelity::Full)
        .build()
        .expect("valid config")
}

#[test]
fn simulated_pipeline_matches_reference_single_renderer() {
    let c = cfg(RendererMode::SingleRenderer, 3);
    let report = SimRunner::new(c.clone(), scene()).run();
    let reference = reference_frames(&c, scene());
    assert_eq!(report.outputs.unwrap(), reference);
}

#[test]
fn simulated_pipeline_matches_reference_per_pipeline_renderer() {
    let c = cfg(RendererMode::PerPipelineRenderer, 2);
    let report = SimRunner::new(c.clone(), scene()).run();
    let reference = reference_frames(&c, scene());
    assert_eq!(report.outputs.unwrap(), reference);
}

#[test]
fn simulated_pipeline_matches_reference_mcpc_renderer() {
    let c = cfg(RendererMode::McpcRenderer, 4);
    let report = SimRunner::new(c.clone(), scene()).run();
    // The MCPC data path renders full frames and splits, like the
    // single-renderer reference.
    let mut rc = c.clone();
    rc.renderer = RendererMode::SingleRenderer;
    let reference = reference_frames(&rc, scene());
    assert_eq!(report.outputs.unwrap(), reference);
}

#[test]
fn native_and_simulated_pipelines_agree() {
    let c = cfg(RendererMode::SingleRenderer, 2);
    let sim = SimRunner::new(c.clone(), scene()).run().outputs.unwrap();
    let native = run_native(&c, scene()).frames;
    assert_eq!(sim, native, "the two execution back-ends diverged");
}

#[test]
fn every_arrangement_produces_the_same_images() {
    // Physical placement must never change the data path.
    let mut images = Vec::new();
    for arr in Arrangement::all() {
        let mut c = cfg(RendererMode::SingleRenderer, 3);
        c.arrangement = arr;
        images.push(SimRunner::new(c, scene()).run().outputs.unwrap());
    }
    assert_eq!(images[0], images[1]);
    assert_eq!(images[1], images[2]);
}

#[test]
fn run_seed_changes_scratches_but_not_geometry() {
    let mut a = cfg(RendererMode::SingleRenderer, 2);
    let mut b = a.clone();
    b.seed = a.seed + 1;
    a.frames = 8;
    b.frames = 8;
    let fa = SimRunner::new(a, scene()).run().outputs.unwrap();
    let fb = SimRunner::new(b, scene()).run().outputs.unwrap();
    // Same walkthrough, different film damage: the randomised filters
    // (scratch columns / flicker offsets) must differ somewhere.
    assert_ne!(fa, fb, "seeds should change the randomised filters");
    assert_eq!(fa.len(), fb.len());
    assert_eq!(fa[0].width(), fb[0].width());
}

#[test]
fn walkthrough_time_is_identical_between_fidelities() {
    let mut timing = cfg(RendererMode::McpcRenderer, 3);
    timing.fidelity = Fidelity::TimingOnly;
    let full = cfg(RendererMode::McpcRenderer, 3);
    let t1 = SimRunner::new(timing, scene()).run().total_secs;
    let t2 = SimRunner::new(full, scene()).run().total_secs;
    assert_eq!(t1, t2);
}
