//! Differential suite for the dependency-driven task runtime
//! ([`Runtime::Tasks`]): work stealing may move a strip's filter chain
//! anywhere, but it must never move a pixel. Every renderer mode is run
//! under the static pipeline and under the task runtime on *both*
//! virtual-time backends (the frame-major simulator and the DES-flavored
//! schedule) and the films must match bit for bit — clean, under a
//! fail-stop kill, and over a lossy message plane where the steal
//! handshake itself loses legs. A property test then pins the robustness
//! claim: fence + re-queue recovery, which provisions no spare cores,
//! must resume no later than the supervisor's spare-migration path for
//! the same kill.

mod common;

use common::{cfg_with, checksums, scene, MODES};
use proptest::prelude::*;
use scc_core::{
    run_des, Arrangement, FaultSpec, KillSpec, RendererMode, RunConfig, Runtime, SimRunner,
};

fn cfg(mode: RendererMode, pipelines: u32, frames: u64) -> RunConfig {
    cfg_with(mode, Arrangement::Unordered, pipelines, frames)
}

/// Clean runs: static sim film == tasks sim film == tasks DES film, in
/// every renderer mode, with balanced exactly-once ledgers.
#[test]
fn tasks_film_is_bit_identical_in_every_mode_on_both_backends() {
    for mode in MODES {
        let st = cfg(mode, 2, 4);
        let want = checksums(
            &SimRunner::new(st.clone(), scene())
                .run()
                .outputs
                .expect("static film"),
        );

        let mut tk = st.clone();
        tk.runtime = Runtime::Tasks;
        let sim = SimRunner::new(tk.clone(), scene()).run();
        assert_eq!(
            checksums(&sim.outputs.expect("tasks sim film")),
            want,
            "tasks/sim film diverged in {mode:?}"
        );
        let stats = sim.task_stats.expect("task ledger");
        assert_eq!(
            stats.completed + stats.degraded,
            stats.spawned,
            "ledger unbalanced in {mode:?}: {stats:?}"
        );

        let des = run_des(&tk, scene());
        assert_eq!(
            checksums(des.frames.as_ref().expect("tasks DES film")),
            want,
            "tasks/DES film diverged in {mode:?}"
        );
    }
}

/// A fail-stop kill *and* a lossy message plane at once: dropped and
/// corrupted legs hit both the data path and the steal handshake, the
/// kill forces a fence — the film must still match the fault-free static
/// run in every mode on both backends, with no task lost or duplicated.
#[test]
fn kills_and_lossy_transport_leave_the_film_identical() {
    for mode in MODES {
        let clean = cfg(mode, 2, 4);
        let want = checksums(
            &SimRunner::new(clean.clone(), scene())
                .run()
                .outputs
                .expect("static film"),
        );

        let mut tk = clean.clone();
        tk.runtime = Runtime::Tasks;
        tk.fault = Some(FaultSpec {
            drop_rate: 0.05,
            corrupt_rate: 0.05,
            delay_rate: 0.1,
            kills: vec![KillSpec {
                pipeline: 0,
                stage: 1,
                at_ms: 8,
            }],
            heartbeat_period_us: 2_000,
            phi_dead: 2.0,
            ..FaultSpec::default()
        });
        let sim = SimRunner::new(tk.clone(), scene()).run();
        let stats = sim.task_stats.expect("task ledger");
        assert_eq!(
            stats.completed + stats.degraded,
            stats.spawned,
            "a task was lost or duplicated in {mode:?}: {stats:?}"
        );
        assert_eq!(
            checksums(&sim.outputs.expect("tasks sim film")),
            want,
            "chaos moved a pixel in {mode:?} (sim)"
        );

        let des = run_des(&tk, scene());
        assert_eq!(
            checksums(des.frames.as_ref().expect("tasks DES film")),
            want,
            "chaos moved a pixel in {mode:?} (DES)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// The robustness claim of the runtime: re-queue recovery provisions
    /// no spare core, yet for the same kill it must resume no later than
    /// the static pipeline's supervised spare migration.
    #[test]
    fn requeue_mttr_not_worse_than_spare_migration(
        at_ms in 4u64..24,
        stage in 0u32..5,
        seed in 1u64..5,
    ) {
        let mut base = cfg(RendererMode::SingleRenderer, 2, 4);
        base.seed = seed;
        let fault = FaultSpec {
            kills: vec![KillSpec { pipeline: 0, stage, at_ms }],
            heartbeat_period_us: 2_000,
            phi_dead: 2.0,
            ..FaultSpec::default()
        };

        let mut st = base.clone();
        st.fault = Some(fault.clone());
        let static_report = SimRunner::new(st, scene()).run();

        let mut tk = base;
        tk.runtime = Runtime::Tasks;
        tk.fault = Some(FaultSpec { max_spares: 0, ..fault });
        let tasks_report = SimRunner::new(tk, scene()).run();
        let stats = tasks_report.task_stats.expect("task ledger");
        prop_assert_eq!(stats.completed + stats.degraded, stats.spawned);

        // A kill can land after the stage's last strip left (or before
        // any arrived); one path may then see nothing to recover. The
        // MTTR comparison only makes sense when both paths recovered.
        if static_report.recoveries.is_empty() || tasks_report.recoveries.is_empty() {
            return;
        }
        let migration = static_report.recoveries[0].mttr_secs;
        let requeue = tasks_report.recoveries[0].mttr_secs;
        prop_assert!(
            requeue <= migration + 1e-9,
            "re-queue MTTR {requeue:.6}s worse than spare migration {migration:.6}s \
             (kill stage {stage} at {at_ms}ms, seed {seed})"
        );
    }
}
