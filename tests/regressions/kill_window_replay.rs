//! Regression repro for the pre-existing sim↔DES `differential-replay`
//! divergence (ROADMAP, surfaced by the PR-6 fuzzer): a kill scheduled
//! inside the executors' end-of-run timing skew can be observed by one
//! executor (a strip still reaches the killed core) while landing past
//! the other's last strip — one records a recovery, the other does not.
//! The differential oracle now compares recovery counts modulo such
//! *boundary kills*, where the boundary window covers the end-to-end
//! timing skew plus one frame period of per-stage drain skew. This file
//! pins the two repro mechanisms (end-of-run skew and stage-drain skew:
//! raw counts still diverge, but no more `differential-replay` failure)
//! and the guard rail (an early kill is still compared strictly).

use scc_verify::fuzz::{run_oracle, FuzzCase, DES_TIMING_TOLERANCE};

/// A minimal divergent schedule, found by replaying fuzzer mutants
/// against the raw recovery counts: fixed single-renderer run, p=1,
/// f=3 (~35 ms end to end), an early kill at 23 ms and a second kill
/// of the (by then migrated) stage at 34 ms — inside the 5 % tail
/// window. The frame-major simulator still routes a strip through the
/// re-killed core and records a second recovery; the DES executor's
/// last strip has already left it, so it records none.
const TAIL_KILL_REPRO: &str = "\
run mode=single arr=flipped p=1 w=48 h=32 f=3 seed=0x13 fid=full threads=1 pool=1
fault seed=0xfa017 drop=0 corrupt=0 delay=0 max_delay_us=200 links=0 factor=1 timeout_us=1000 retries=0
sup hb_us=1000 phi=3 spares=2 depth=4
kill p=0 s=1 at_ms=34
kill p=0 s=1 at_ms=23
";

/// Run both executors directly (the raw comparison the old oracle made).
fn raw_runs(case: &FuzzCase) -> (scc_core::WalkthroughReport, scc_core::DesReport) {
    let sim =
        scc_core::runner::sim::SimRunner::new(case.cfg.clone(), scc_verify::verify_scene()).run();
    let des = scc_core::run_des(&case.cfg, scc_verify::verify_scene());
    (sim, des)
}

/// The oracle's boundary-window start: end-to-end timing skew plus one
/// *lane* frame period of per-stage drain skew (mirrors `run_oracle`).
fn window_start(
    case: &FuzzCase,
    sim: &scc_core::WalkthroughReport,
    des: &scc_core::DesReport,
) -> f64 {
    let min_total = sim.total_secs.min(des.total_secs);
    let lane_frames = case
        .cfg
        .frames
        .div_ceil(u64::from(case.cfg.pipelines.max(1)));
    min_total * (1.0 - DES_TIMING_TOLERANCE) - min_total / lane_frames.max(1) as f64
}

#[test]
fn tail_window_kills_no_longer_trip_the_replay_differential() {
    let case = FuzzCase::from_text(TAIL_KILL_REPRO).expect("repro parses");

    // The repro must still exercise the real divergence: the executors'
    // raw recovery counts disagree (this is exactly what the oracle
    // reported as `differential-replay` before the boundary tolerance),
    // and the disagreeing kill sits in the tail window. If cost-model
    // drift ever ends the run elsewhere, fail loudly so the repro gets
    // retuned instead of silently testing nothing.
    let (sim, des) = raw_runs(&case);
    assert_ne!(
        sim.recoveries.len(),
        des.recoveries.len(),
        "repro no longer diverges (sim {:.1} ms, DES {:.1} ms) — retune its kill times \
         to the executors' current run end",
        sim.total_secs * 1e3,
        des.total_secs * 1e3,
    );
    let window_start = window_start(&case, &sim, &des);
    let kills = &case.cfg.fault.as_ref().expect("repro has faults").kills;
    assert!(
        kills.iter().any(|k| k.at_ms as f64 / 1e3 >= window_start),
        "repro kills ({:?} ms) miss the tail window starting at {:.1} ms",
        kills.iter().map(|k| k.at_ms).collect::<Vec<_>>(),
        window_start * 1e3,
    );

    // The old behavior: `differential-replay` fired on any recovery-count
    // mismatch, boundary kill or not. The oracle must now absorb the
    // mismatch (while still running every other check — film vs
    // reference, invariants, timing) and surface the boundary as
    // coverage so the fuzzer keeps breeding cases that reach it.
    let outcome = run_oracle(&case);
    assert!(
        outcome.failures.is_empty(),
        "boundary kill still reported as a failure: {:?}",
        outcome.failures
    );
    assert!(
        outcome.coverage.contains("replay:boundary-kill"),
        "tolerated boundary kill must surface as coverage, got {:?}",
        outcome.coverage
    );
}

#[test]
fn drain_skew_kills_are_tolerated_inside_one_frame_period() {
    // Fuzzer-shrunk repro (seed 20260806): three kills on distinct
    // stages; the 35 ms kill on flicker lands *before* the end-of-run
    // skew window (the DES run ends ~43 ms) yet after the DES's last
    // flicker strip — the frame-major sim still routes the final frame
    // through the killed core, the pipelined DES drained that stage a
    // frame period earlier. This is why the boundary window spans the
    // timing tolerance PLUS one frame period.
    let repro = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/regressions/drain-window-replay.txt"
    ))
    .expect("committed repro readable");
    let case = FuzzCase::from_text(&repro).expect("repro parses");
    let (sim, des) = raw_runs(&case);
    assert_ne!(
        sim.recoveries.len(),
        des.recoveries.len(),
        "repro no longer diverges (sim {:.1} ms, DES {:.1} ms) — retune its kill times",
        sim.total_secs * 1e3,
        des.total_secs * 1e3,
    );
    // The divergent kill sits below the pure end-of-run window — only
    // the drain term classifies it — but inside the drain-aware one.
    let end_window = sim.total_secs.min(des.total_secs) * (1.0 - DES_TIMING_TOLERANCE);
    let kills = &case.cfg.fault.as_ref().expect("repro has faults").kills;
    assert!(
        kills.iter().all(|k| (k.at_ms as f64) / 1e3 < end_window),
        "repro kills reached the end-of-run skew window — no longer pins the drain term"
    );
    let start = window_start(&case, &sim, &des);
    assert!(
        kills.iter().any(|k| (k.at_ms as f64) / 1e3 >= start),
        "no kill inside the drain-aware window starting at {:.1} ms",
        start * 1e3,
    );
    let outcome = run_oracle(&case);
    assert!(
        outcome.failures.is_empty(),
        "drain-skew kill still reported as a failure: {:?}",
        outcome.failures
    );
    assert!(
        outcome.coverage.contains("replay:boundary-kill"),
        "tolerated drain-skew kill must surface as coverage, got {:?}",
        outcome.coverage
    );
}

#[test]
fn early_kills_are_still_compared_strictly() {
    // Guard rail: the tolerance must not swallow genuine divergence. An
    // early-run kill sits far from the boundary window, so the oracle
    // compares its recovery strictly — and both executors observe it.
    let repro = "\
run mode=single arr=unordered p=1 w=48 h=32 f=3 seed=0x1 fid=full threads=1 pool=1
fault seed=0x1 drop=0 corrupt=0 delay=0 max_delay_us=200 links=0 factor=1 timeout_us=1000 retries=3
sup hb_us=5000 phi=3 spares=2 depth=3
kill p=0 s=1 at_ms=2
";
    let case = FuzzCase::from_text(repro).expect("repro parses");
    let (sim, des) = raw_runs(&case);
    assert!(
        2.0 / 1e3 < window_start(&case, &sim, &des),
        "early kill unexpectedly inside the boundary window"
    );
    assert_eq!(
        sim.recoveries.len(),
        des.recoveries.len(),
        "early kill must be observed by both executors"
    );
    assert!(!sim.recoveries.is_empty(), "the kill must actually fire");
    let outcome = run_oracle(&case);
    assert!(
        !outcome.coverage.contains("replay:boundary-kill"),
        "early kill wrongly classified as a boundary kill"
    );
    assert!(
        outcome.failures.is_empty(),
        "early-kill repro must pass every oracle strictly: {:?}",
        outcome.failures
    );
    assert!(
        outcome.coverage.contains("event:recovery"),
        "recovery coverage missing: {:?}",
        outcome.coverage
    );
}
