//! Differential suite for the native runner's host tuning knobs: for
//! every renderer mode, `kernel_threads = 1` vs `N` and pooled vs
//! unpooled buffers must deliver byte-identical final frames, identical
//! frame counts, and still match the sequential reference. A tuning knob
//! that changes a pixel is a correctness bug dressed up as a speedup.

use scc_core::{
    reference::reference_frames, run_native, Fidelity, FuseChoice, KernelChoice, NativeTuning,
    RendererMode, RunConfig,
};
use scc_filters::Image;
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig {
        side: 7,
        spacing: 8.0,
        seed: 29,
    }))
}

fn cfg(mode: RendererMode, tuning: NativeTuning) -> RunConfig {
    RunConfig::builder()
        .renderer(mode)
        .pipelines(2)
        .size(52, 44)
        .frames(4)
        .seed(0xCAFE_D00D)
        .fidelity(Fidelity::Full)
        .tuning(tuning)
        .build()
        .expect("valid config")
}

const MODES: [RendererMode; 3] = [
    RendererMode::SingleRenderer,
    RendererMode::PerPipelineRenderer,
    RendererMode::McpcRenderer,
];

const fn tune(kernel_threads: u32, buffer_pool: bool) -> NativeTuning {
    NativeTuning {
        kernel_threads,
        buffer_pool,
        kernel: KernelChoice::Auto,
        fuse: FuseChoice::Auto,
    }
}

const fn tune_kernel(kernel_threads: u32, kernel: KernelChoice, fuse: FuseChoice) -> NativeTuning {
    NativeTuning {
        kernel_threads,
        buffer_pool: true,
        kernel,
        fuse,
    }
}

/// Every (kernel_threads, buffer_pool, kernel backend, fusion) point we
/// sweep against baseline — the backend and fusion knobs must be just
/// as invisible in the pixels as the thread count.
const TUNINGS: [NativeTuning; 9] = [
    tune(1, false),
    tune(2, true),
    tune(4, true),
    tune(4, false),
    tune(7, true),
    tune_kernel(1, KernelChoice::Simd, FuseChoice::Off),
    tune_kernel(1, KernelChoice::Scalar, FuseChoice::On),
    tune_kernel(4, KernelChoice::Simd, FuseChoice::On),
    tune_kernel(4, KernelChoice::Scalar, FuseChoice::Off),
];

fn baseline() -> NativeTuning {
    tune(1, true)
}

fn raw_frames(frames: &[Image]) -> Vec<&[u8]> {
    frames.iter().map(|f| f.as_bytes()).collect()
}

#[test]
fn tuning_is_invisible_in_every_renderer_mode() {
    for mode in MODES {
        let base = run_native(&cfg(mode, baseline()), scene());
        assert_eq!(base.frames.len(), 4, "{mode:?}: baseline frame count");
        for tuning in TUNINGS {
            let variant = run_native(&cfg(mode, tuning), scene());
            assert_eq!(
                variant.frames.len(),
                base.frames.len(),
                "{mode:?}/{tuning:?}: frame count changed"
            );
            assert_eq!(
                raw_frames(&variant.frames),
                raw_frames(&base.frames),
                "{mode:?}/{tuning:?}: pixels diverged from 1-thread pooled baseline"
            );
        }
    }
}

#[test]
fn threaded_pooled_native_matches_sequential_reference() {
    // Not just self-consistent: the most aggressive tuning still equals
    // the single-threaded sequential oracle, byte for byte.
    for mode in MODES {
        let c = cfg(mode, tune(4, true));
        let mut ref_cfg = c.clone();
        if mode == RendererMode::McpcRenderer {
            ref_cfg.renderer = RendererMode::SingleRenderer;
        }
        let want = reference_frames(&ref_cfg, scene());
        let native = run_native(&c, scene());
        assert_eq!(
            raw_frames(&native.frames),
            raw_frames(&want),
            "{mode:?}: threaded+pooled native diverged from reference"
        );
    }
}

#[test]
fn pool_stats_reflect_the_knob() {
    let pooled = run_native(&cfg(RendererMode::SingleRenderer, baseline()), scene());
    assert!(
        pooled.pool_stats.recycled + pooled.pool_stats.fresh > 0,
        "pooled run recorded no acquisitions"
    );
    assert!(
        pooled.pool_stats.recycled > 0,
        "pooled run never recycled a buffer"
    );

    let unpooled = run_native(&cfg(RendererMode::SingleRenderer, tune(1, false)), scene());
    assert_eq!(
        unpooled.pool_stats.recycled, 0,
        "disabled pool must not recycle"
    );
    assert_eq!(
        unpooled.pool_stats.returned, 0,
        "disabled pool must not retain buffers"
    );
}
