//! Golden-image regression tests: pixel-exact FNV-1a hashes of every
//! filter's output on a fixed, seeded frame — asserted for the sequential
//! kernel path AND the chunked-parallel one at several worker counts.
//!
//! These constants pin the filters' numerics. If a hash changes, either a
//! kernel's arithmetic changed (a correctness regression — fix the code)
//! or the filter's definition deliberately changed (re-derive the
//! constants with `UPDATE_GOLDEN=1 cargo test -p scc-bench --test
//! filter_golden -- --nocapture` and paste the printed table).

use scc_filters::{standard_chain, FrameCtx, FusedPass, Image, KernelBackend, StripInfo};

const W: u32 = 64;
const H: u32 = 48;
const FRAME_ID: u64 = 7;
const RUN_SEED: u64 = 0xD00D_FEED;

/// FNV-1a 64 over raw RGBA bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        acc ^= b as u64;
        acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
    }
    acc
}

/// The fixed input frame: a deterministic integer pattern (no renderer
/// involvement, so these hashes only depend on scc-filters).
fn test_frame() -> Image {
    let mut img = Image::new(W, H);
    for y in 0..H {
        for x in 0..W {
            let v = (x as u64)
                .wrapping_mul(31)
                .wrapping_add((y as u64).wrapping_mul(97));
            img.set(
                x,
                y,
                [
                    (v % 251) as u8,
                    ((v >> 3) % 241) as u8,
                    ((v >> 5) % 239) as u8,
                    255,
                ],
            );
        }
    }
    img
}

fn ctx() -> FrameCtx {
    FrameCtx::whole_frame(FRAME_ID, RUN_SEED, W, H)
}

/// A strip context mid-frame, exercising the y0 ≠ 0 path of every filter.
fn strip_ctx(strip_h: u32) -> FrameCtx {
    FrameCtx {
        frame_id: FRAME_ID,
        run_seed: RUN_SEED,
        strip: StripInfo {
            index: 1,
            count: 3,
            y0: strip_h,
            height: strip_h,
            full_height: H,
        },
        full_width: W,
    }
}

/// Expected (input hash, per-filter whole-frame hash, per-filter
/// mid-strip hash) — derived once at development time.
const GOLDEN_INPUT: u64 = 0x43d4f411e7f8d080;
const GOLDEN: &[(&str, u64, u64)] = &[
    ("sepia", 0x0fe38cdcd0977f21, 0xa2ce33851347b0b2),
    ("blur", 0x0e40509a44d82f51, 0x9495fd524e280629),
    ("scratch", 0xad98b6512c691945, 0x9b83e0806e6f91b2),
    ("flicker", 0x1da42e708cc6184a, 0xb3f354b1dde3d9e3),
    ("swap", 0xf5a02019de719b6c, 0x899bc70806841b77),
];

fn compute_table() -> Vec<(&'static str, u64, u64)> {
    let strip_h = H / 3;
    let strip_input = {
        let full = test_frame();
        let strips = full.split_strips(3);
        strips[1].1.clone()
    };
    standard_chain()
        .iter()
        .map(|f| {
            let mut whole = test_frame();
            f.apply(&mut whole, &ctx());
            let mut strip = strip_input.clone();
            f.apply(&mut strip, &strip_ctx(strip_h));
            (f.name(), fnv1a(whole.as_bytes()), fnv1a(strip.as_bytes()))
        })
        .collect()
}

#[test]
fn golden_hashes_sequential() {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        println!(
            "const GOLDEN_INPUT: u64 = {:#018x};",
            fnv1a(test_frame().as_bytes())
        );
        println!("const GOLDEN: &[(&str, u64, u64)] = &[");
        for (name, whole, strip) in compute_table() {
            println!("    (\"{name}\", {whole:#018x}, {strip:#018x}),");
        }
        println!("];");
        return;
    }
    assert_eq!(
        fnv1a(test_frame().as_bytes()),
        GOLDEN_INPUT,
        "the fixed input frame itself drifted"
    );
    let actual = compute_table();
    assert_eq!(actual.len(), GOLDEN.len());
    for ((name, whole, strip), &(gname, gwhole, gstrip)) in actual.iter().zip(GOLDEN) {
        assert_eq!(*name, gname, "filter order changed");
        assert_eq!(
            *whole, gwhole,
            "{name} whole-frame output drifted: got {whole:#018x}"
        );
        assert_eq!(
            *strip, gstrip,
            "{name} mid-strip output drifted: got {strip:#018x}"
        );
    }
}

#[test]
fn golden_hashes_chunked() {
    // The chunked-parallel path must land on the exact same golden
    // hashes as the sequential one, at every worker count.
    let strip_h = H / 3;
    let strip_input = {
        let full = test_frame();
        full.split_strips(3)[1].1.clone()
    };
    for workers in [2usize, 3, 5, 8] {
        for (f, &(gname, gwhole, gstrip)) in standard_chain().iter().zip(GOLDEN) {
            assert_eq!(f.name(), gname);
            let mut whole = test_frame();
            f.apply_chunked(&mut whole, &ctx(), workers);
            assert_eq!(
                fnv1a(whole.as_bytes()),
                gwhole,
                "{gname} chunked (workers={workers}) != golden whole-frame hash"
            );
            let mut strip = strip_input.clone();
            f.apply_chunked(&mut strip, &strip_ctx(strip_h), workers);
            assert_eq!(
                fnv1a(strip.as_bytes()),
                gstrip,
                "{gname} chunked (workers={workers}) != golden mid-strip hash"
            );
        }
    }
}

/// Pinned hashes for the vectorized/fused kernel paths at the widths
/// that exercise every lane-handling branch of the SIMD backend:
/// 64 px = 8 full 8-lane blocks, 37 px = 4 blocks + a 5-px scalar
/// remainder, 1 px = pure-remainder rows. Height 11 keeps an odd,
/// self-pairing middle row in the fused traversal. Each row is
/// (width, [per-filter hash; 5], fused-[0,2,3,4] hash); every hash must
/// come out of BOTH backends and (per filter) the unfused vectored
/// path — bit-identity across kernels is the acceptance bar, so one
/// constant per cell pins all paths at once.
const LANE_H: u32 = 11;
const GOLDEN_LANES: &[(u32, [u64; 5], u64)] = &[
    (
        64,
        [
            0x1ff14d1f6e7411c8,
            0x8c9220b72c21ab71,
            0xc41eb2065e42a002,
            0xe612eddbd6bacace,
            0xad8509df7b3191ba,
        ],
        0xc2298e6b9d7a8926,
    ),
    (
        37,
        [
            0xba61e72bbc1a2a03,
            0x3f9a73d2f79bfeb1,
            0x7b8af74eb0b6be5a,
            0xa3ef4f3ad66a2a99,
            0xf9660124d50bfd9d,
        ],
        0xfadc67c6d44c95bb,
    ),
    (
        1,
        [
            0xafbbd686d134d1ba,
            0xeed0de1471632322,
            0x8d84855ef557660c,
            0x66880e8bc8a31b63,
            0x4076d87a93096243,
        ],
        0xc6a02c36098ef98e,
    ),
];

fn lane_frame(w: u32) -> Image {
    let mut img = Image::new(w, LANE_H);
    for y in 0..LANE_H {
        for x in 0..w {
            let v = (x as u64)
                .wrapping_mul(53)
                .wrapping_add((y as u64).wrapping_mul(131));
            img.set(
                x,
                y,
                [
                    (v % 251) as u8,
                    ((v >> 2) % 247) as u8,
                    ((v >> 4) % 239) as u8,
                    255,
                ],
            );
        }
    }
    img
}

fn lane_table() -> Vec<(u32, [u64; 5], u64)> {
    GOLDEN_LANES
        .iter()
        .map(|&(w, _, _)| {
            let ctx = FrameCtx::whole_frame(FRAME_ID, RUN_SEED, w, LANE_H);
            let per_filter: Vec<u64> = standard_chain()
                .iter()
                .map(|f| {
                    let mut img = lane_frame(w);
                    f.apply_vectored(&mut img, &ctx, KernelBackend::Scalar, 1);
                    fnv1a(img.as_bytes())
                })
                .collect();
            let mut fused = lane_frame(w);
            FusedPass::from_standard_indices(&[0, 2, 3, 4], KernelBackend::Scalar)
                .unwrap()
                .apply(&mut fused, &ctx);
            (
                w,
                per_filter.try_into().expect("5 filters"),
                fnv1a(fused.as_bytes()),
            )
        })
        .collect()
}

#[test]
fn golden_hashes_lane_widths() {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        println!("const GOLDEN_LANES: &[(u32, [u64; 5], u64)] = &[");
        for (w, filters, fused) in lane_table() {
            println!("    (");
            println!("        {w},");
            println!("        [");
            for h in filters {
                println!("            {h:#018x},");
            }
            println!("        ],");
            println!("        {fused:#018x},");
            println!("    ),");
        }
        println!("];");
        return;
    }
    // The pinned table itself comes from the scalar path; both backends
    // and every worker fan-out must land on the same bytes.
    for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
        for workers in [1usize, 3] {
            for &(w, ref filters, fused) in GOLDEN_LANES {
                let ctx = FrameCtx::whole_frame(FRAME_ID, RUN_SEED, w, LANE_H);
                for (f, &want) in standard_chain().iter().zip(filters.iter()) {
                    let mut img = lane_frame(w);
                    f.apply_vectored(&mut img, &ctx, backend, workers);
                    assert_eq!(
                        fnv1a(img.as_bytes()),
                        want,
                        "{} w={w} {backend:?} workers={workers} drifted",
                        f.name()
                    );
                }
                let mut img = lane_frame(w);
                FusedPass::from_standard_indices(&[0, 2, 3, 4], backend)
                    .unwrap()
                    .apply_chunked(&mut img, &ctx, workers);
                assert_eq!(
                    fnv1a(img.as_bytes()),
                    fused,
                    "fused run w={w} {backend:?} workers={workers} drifted"
                );
            }
        }
    }
}

#[test]
fn golden_hashes_are_distinct() {
    // Sanity on the harness itself: each filter does something, and does
    // something different from the others (hash collisions aside).
    let mut all: Vec<u64> = GOLDEN.iter().map(|&(_, w, _)| w).collect();
    all.push(GOLDEN_INPUT);
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), GOLDEN.len() + 1, "two stages hash identically");
}
