//! Cache-correctness suite: the serving layer's content-addressed strip
//! cache must be *semantically transparent*. Every session's film is
//! byte-identical with the cache enabled, disabled, collision-thrashed
//! (one hash bucket) or eviction-thrashed (capacity 2) — across all
//! three renderer modes — and every served frame equals the sequential
//! reference at its pose. A property sweep then holds the line over
//! randomized workload/cache geometry (seeds pinned in CI).

mod common;

use common::scene;
use proptest::prelude::*;
use scc_core::reference::reference_frames;
use scc_core::{Fidelity, RendererMode, RunConfig};
use scc_serve::{serve, ServeConfig, ServeOutcome, TenantSpec};

const MODES: [RendererMode; 3] = [
    RendererMode::SingleRenderer,
    RendererMode::PerPipelineRenderer,
    RendererMode::McpcRenderer,
];

fn serve_cfg(mode: RendererMode) -> ServeConfig {
    ServeConfig {
        run: RunConfig::builder()
            .renderer(mode)
            .pipelines(2)
            .size(40, 32)
            .seed(23)
            .fidelity(Fidelity::Full)
            .verify(true)
            .build()
            .expect("valid run config"),
        tenants: vec![TenantSpec::new("a", 2, 4, 4), TenantSpec::new("b", 1, 2, 4)],
        shards: 2,
        pool: 2,
        cache_capacity: 64,
        cache_buckets: 32,
        queue_depth: 8,
        max_sessions: 16,
        batch_frames: 3,
        pose_span: 3,
        arrival_burst: 3,
        seed: 0xCAFE,
        keep_films: true,
    }
}

fn run(cfg: &ServeConfig) -> ServeOutcome {
    serve(cfg, &scene())
}

/// Films as raw bytes per session, for byte-exact comparison.
fn films_bytes(out: &ServeOutcome) -> Vec<(u32, Vec<Vec<u8>>)> {
    out.films
        .iter()
        .map(|f| {
            (
                f.id,
                f.film.iter().map(|img| img.as_bytes().to_vec()).collect(),
            )
        })
        .collect()
}

#[test]
fn cache_is_transparent_in_every_renderer_mode() {
    for mode in MODES {
        let on_cfg = serve_cfg(mode);
        let mut off_cfg = serve_cfg(mode);
        off_cfg.cache_capacity = 0;
        let on = run(&on_cfg);
        let off = run(&off_cfg);
        assert!(on.report.cache.hits > 0, "{mode:?}: overlap must hit");
        assert_eq!(off.report.cache.hits, 0, "{mode:?}: disabled cache hit");
        assert_eq!(
            films_bytes(&on),
            films_bytes(&off),
            "{mode:?}: cache changed film bytes"
        );
        assert_eq!(on.report.film_hash, off.report.film_hash);
    }
}

#[test]
fn served_frames_equal_the_sequential_reference_at_their_pose() {
    // A session's f-th frame displays pose `start_pose + f`; it must be
    // byte-identical to the reference frame at that pose (MCPC renders
    // full frames and splits, exactly like the single-renderer path).
    for mode in MODES {
        let cfg = serve_cfg(mode);
        let out = run(&cfg);
        let max_pose = out
            .films
            .iter()
            .map(|f| f.start_pose + f.film.len() as u64)
            .max()
            .expect("sessions completed");
        let mut rc = cfg.run.clone();
        rc.frames = max_pose;
        if rc.renderer == RendererMode::McpcRenderer {
            rc.renderer = RendererMode::SingleRenderer;
        }
        let reference = reference_frames(&rc, scene());
        for f in &out.films {
            for (i, frame) in f.film.iter().enumerate() {
                let pose = f.start_pose + i as u64;
                assert_eq!(
                    frame.as_bytes(),
                    reference[pose as usize].as_bytes(),
                    "{mode:?}: session {} frame {i} (pose {pose}) diverged from reference",
                    f.id
                );
            }
        }
    }
}

#[test]
fn forced_hash_collisions_never_alias_pixels() {
    // One hash bucket: every strip key collides, so each lookup must be
    // resolved by full-key comparison. The films stay byte-identical to
    // the cache-off run even though every bucket probe collides.
    for mode in MODES {
        let mut coll_cfg = serve_cfg(mode);
        coll_cfg.cache_buckets = 1;
        let mut off_cfg = serve_cfg(mode);
        off_cfg.cache_capacity = 0;
        let coll = run(&coll_cfg);
        let off = run(&off_cfg);
        assert!(
            coll.report.cache.collisions > 0,
            "{mode:?}: a single bucket must collide"
        );
        assert!(coll.report.cache.hits > 0, "{mode:?}: overlap must hit");
        assert_eq!(
            films_bytes(&coll),
            films_bytes(&off),
            "{mode:?}: a hash collision aliased pixels"
        );
    }
}

#[test]
fn eviction_under_tiny_capacity_still_completes_every_session() {
    // Capacity 2 with 2-strip frames: the cache thrashes constantly, yet
    // every admitted session completes and the film stays byte-identical.
    for mode in MODES {
        let mut tiny_cfg = serve_cfg(mode);
        tiny_cfg.cache_capacity = 2;
        tiny_cfg.cache_buckets = 2;
        let mut off_cfg = serve_cfg(mode);
        off_cfg.cache_capacity = 0;
        let tiny = run(&tiny_cfg);
        let off = run(&off_cfg);
        assert!(
            tiny.report.cache.evictions > 0,
            "{mode:?}: capacity 2 must evict"
        );
        assert_eq!(
            tiny.report.completed, tiny.report.admitted,
            "{mode:?}: a session failed to complete under eviction pressure"
        );
        assert_eq!(tiny.report.shed, 0);
        assert_eq!(
            films_bytes(&tiny),
            films_bytes(&off),
            "{mode:?}: eviction pressure changed film bytes"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case serves two full (small) workloads
        ..ProptestConfig::default()
    })]

    /// Transparency is not a property of friendly geometry: any session
    /// mix, pose span, capacity and bucket count must keep the film
    /// fingerprint identical cache on/off with a balanced ledger.
    #[test]
    fn cache_transparency_holds_over_random_geometry(
        sessions in 1u32..8,
        frames in 1u32..5,
        pose_span in 1u64..6,
        capacity in 1u32..16,
        buckets in 1u32..8,
        wseed in 0u64..1000,
        mode_ix in 0usize..3,
    ) {
        let mut on_cfg = serve_cfg(MODES[mode_ix]);
        on_cfg.tenants = vec![TenantSpec::new("t", 1, sessions, frames)];
        on_cfg.pose_span = pose_span;
        on_cfg.cache_capacity = capacity;
        on_cfg.cache_buckets = buckets;
        on_cfg.seed = wseed;
        on_cfg.keep_films = false;
        let mut off_cfg = on_cfg.clone();
        off_cfg.cache_capacity = 0;
        let on = run(&on_cfg);
        let off = run(&off_cfg);
        prop_assert_eq!(on.report.film_hash, off.report.film_hash);
        prop_assert_eq!(on.report.frames_served, off.report.frames_served);
        prop_assert_eq!(on.report.completed + on.report.shed, on.report.admitted);
        prop_assert_eq!(off.report.completed + off.report.shed, off.report.admitted);
    }
}
