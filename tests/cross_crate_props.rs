//! Property-based tests spanning crates: for arbitrary small
//! configurations, the simulated pipeline's output equals the sequential
//! reference, virtual time is fidelity-independent, and the sort-first
//! decomposition invariants hold through the whole stack.

use proptest::prelude::*;
use scc_core::{
    reference::reference_frames, Arrangement, Fidelity, RendererMode, RunConfig, SimRunner,
};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn scene(seed: u64) -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig {
        side: 6,
        spacing: 8.0,
        seed,
    }))
}

fn arb_mode() -> impl Strategy<Value = RendererMode> {
    prop_oneof![
        Just(RendererMode::SingleRenderer),
        Just(RendererMode::PerPipelineRenderer),
        Just(RendererMode::McpcRenderer),
    ]
}

fn arb_arrangement() -> impl Strategy<Value = Arrangement> {
    prop_oneof![
        Just(Arrangement::Unordered),
        Just(Arrangement::Ordered),
        Just(Arrangement::Flipped),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs two full (small) pipelines
        ..ProptestConfig::default()
    })]

    #[test]
    fn sim_output_equals_reference_for_arbitrary_configs(
        mode in arb_mode(),
        arr in arb_arrangement(),
        pipelines in 1u32..5,
        frames in 1u64..4,
        seed in any::<u64>(),
        scene_seed in 0u64..4,
    ) {
        let cfg = RunConfig::builder()
            .renderer(mode)
            .arrangement(arr)
            .pipelines(pipelines)
            .size(48, 40)
            .frames(frames)
            .seed(seed)
            .fidelity(Fidelity::Full)
            .build()
            .expect("every swept configuration fits the machine");
        let report = SimRunner::new(cfg.clone(), scene(scene_seed)).run();
        // The per-pipeline-renderer reference renders strips with band
        // frusta; the others split a full-frame render.
        let mut ref_cfg = cfg.clone();
        if mode == RendererMode::McpcRenderer {
            ref_cfg.renderer = RendererMode::SingleRenderer;
        }
        let reference = reference_frames(&ref_cfg, scene(scene_seed));
        prop_assert_eq!(report.outputs.unwrap(), reference);
    }

    #[test]
    fn virtual_time_is_host_and_fidelity_independent(
        mode in arb_mode(),
        pipelines in 1u32..4,
        frames in 1u64..4,
    ) {
        let mut cfg = RunConfig::builder()
            .renderer(mode)
            .pipelines(pipelines)
            .size(40, 40)
            .frames(frames)
            .seed(9)
            .fidelity(Fidelity::TimingOnly)
            .build()
            .expect("valid config");
        let t1 = SimRunner::new(cfg.clone(), scene(1)).run().total_secs;
        cfg.fidelity = Fidelity::Full;
        let t2 = SimRunner::new(cfg.clone(), scene(1)).run().total_secs;
        let t3 = SimRunner::new(cfg, scene(1)).run().total_secs;
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(t2, t3);
    }

    #[test]
    fn more_pipelines_never_increase_total_stage_work(
        pipelines in 1u32..5,
        frames in 1u64..3,
    ) {
        // Busy time per stage must scale down with strip size: the sum of
        // filter busy time across pipelines stays within a constant factor
        // of the one-pipeline total (no superlinear blow-up).
        let mk = |p: u32| {
            RunConfig::builder()
                .pipelines(p)
                .size(48, 48)
                .frames(frames)
                .seed(3)
                .fidelity(Fidelity::TimingOnly)
                .build()
                .expect("valid config")
        };
        let one = SimRunner::new(mk(1), scene(2)).run();
        let many = SimRunner::new(mk(pipelines), scene(2)).run();
        let total = |r: &scc_core::WalkthroughReport| -> f64 {
            r.stage_reports
                .iter()
                .filter(|s| s.pipeline.is_some())
                .map(|s| s.busy_secs)
                .sum()
        };
        let t1 = total(&one);
        let tp = total(&many);
        prop_assert!(
            tp < t1 * 2.0 + 1.0,
            "filter work exploded: {} -> {} with {} pipelines",
            t1, tp, pipelines
        );
    }

    #[test]
    fn walkthrough_time_decreases_or_holds_with_mcpc_pipelines(
        frames in 10u64..14,
    ) {
        // Once past the pipeline-fill transient, more pipelines never
        // hurt by more than a small tolerance (the paper's dip is a few
        // percent). Very short walkthroughs are excluded: with only a
        // couple of frames the longer fill of a wider pipeline dominates.
        let mk = |p: u32| {
            RunConfig::builder()
                .renderer(RendererMode::McpcRenderer)
                .pipelines(p)
                .size(96, 96)
                .frames(frames)
                .seed(3)
                .fidelity(Fidelity::TimingOnly)
                .build()
                .expect("valid config")
        };
        let t2 = SimRunner::new(mk(2), scene(0)).run().total_secs;
        let t4 = SimRunner::new(mk(4), scene(0)).run().total_secs;
        prop_assert!(t4 <= t2 * 1.15, "t2={t2} t4={t4}");
    }
}
