//! Property tests for stage fusion: a [`FusedPass`] over any in-order
//! subset of the pointwise stages must equal the sequential stage-by-
//! stage application bit for bit — for arbitrary geometries, strip
//! positions, worker fan-outs, RNG draws (frame id × run seed feed the
//! scratch plan and flicker offset) and both kernel backends.

use proptest::prelude::*;
use scc_filters::{standard_chain, FrameCtx, FusedPass, Image, KernelBackend};

/// Deterministic pseudo-random frame content from a seed.
fn seeded_frame(w: u32, h: u32, seed: u64) -> Image {
    let mut img = Image::new(w, h);
    let mut state = seed | 1;
    for y in 0..h {
        for x in 0..w {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            img.set(
                x,
                y,
                [
                    state as u8,
                    (state >> 8) as u8,
                    (state >> 16) as u8,
                    (state >> 24) as u8,
                ],
            );
        }
    }
    img
}

/// Apply `indices` of the standard chain one stage at a time (the
/// reference the fused traversal must reproduce exactly).
fn sequential(img: &Image, ctx: &FrameCtx, indices: &[usize]) -> Image {
    let chain = standard_chain();
    let mut out = img.clone();
    for &j in indices {
        chain[j].apply(&mut out, ctx);
    }
    out
}

/// Strategy: a non-empty, strictly increasing subset of the pointwise
/// stage indices (sepia=0, scratch=2, flicker=3, vswap=4), drawn as a
/// 4-bit inclusion mask.
fn pointwise_subset() -> impl Strategy<Value = Vec<usize>> {
    (1u8..16).prop_map(|mask| {
        [0usize, 2, 3, 4]
            .iter()
            .enumerate()
            .filter(|&(bit, _)| mask >> bit & 1 == 1)
            .map(|(_, &stage)| stage)
            .collect()
    })
}

proptest! {
    /// Whole-frame fusion at arbitrary geometry, subset, seed, worker
    /// count and backend is bit-identical to the sequential passes.
    #[test]
    fn fused_equals_sequential_whole_frame(
        indices in pointwise_subset(),
        w in 1u32..48,
        h in 1u32..24,
        frame_id in 0u64..1000,
        run_seed in any::<u64>(),
        content_seed in any::<u64>(),
        workers in 1usize..9,
        simd in any::<bool>(),
    ) {
        let backend = if simd { KernelBackend::Simd } else { KernelBackend::Scalar };
        let img = seeded_frame(w, h, content_seed);
        let ctx = FrameCtx::whole_frame(frame_id, run_seed, w, h);
        let want = sequential(&img, &ctx, &indices);
        let pass = FusedPass::from_standard_indices(&indices, backend)
            .expect("pointwise subsets are fusable");
        let mut got = img.clone();
        pass.apply_chunked(&mut got, &ctx, workers);
        prop_assert_eq!(
            got, want,
            "{}x{} {:?} {:?} workers={}", w, h, indices, backend, workers
        );
    }

    /// Mid-strip fusion (y0 ≠ 0, strip height ≠ full height) matches the
    /// sequential strip application: frame randomness must resolve from
    /// the frame context, never from strip-local state.
    #[test]
    fn fused_equals_sequential_mid_strip(
        indices in pointwise_subset(),
        w in 1u32..40,
        strips in 2u32..5,
        strip_index in 0u32..4,
        frame_id in 0u64..1000,
        run_seed in any::<u64>(),
        content_seed in any::<u64>(),
        workers in 1usize..9,
        simd in any::<bool>(),
    ) {
        let backend = if simd { KernelBackend::Simd } else { KernelBackend::Scalar };
        let full_h = strips * 6 + 1; // not divisible: uneven strip split
        let full = seeded_frame(w, full_h, content_seed);
        let mut parts = full.split_strips(strips);
        let (info, strip) = parts.remove((strip_index % strips) as usize);
        let ctx = FrameCtx {
            frame_id,
            run_seed,
            strip: info,
            full_width: w,
        };
        let want = sequential(&strip, &ctx, &indices);
        let pass = FusedPass::from_standard_indices(&indices, backend)
            .expect("pointwise subsets are fusable");
        let mut got = strip;
        pass.apply_chunked(&mut got, &ctx, workers);
        prop_assert_eq!(
            got, want,
            "strip {}/{} {:?} {:?} workers={}",
            ctx.strip.index, strips, indices, backend, workers
        );
    }

    /// The two backends agree with each other on the fused output (the
    /// SIMD lane math and the flicker LUT are exact reformulations).
    #[test]
    fn fused_backends_agree(
        indices in pointwise_subset(),
        w in 1u32..48,
        h in 1u32..24,
        frame_id in 0u64..1000,
        run_seed in any::<u64>(),
        content_seed in any::<u64>(),
    ) {
        let img = seeded_frame(w, h, content_seed);
        let ctx = FrameCtx::whole_frame(frame_id, run_seed, w, h);
        let mut scalar = img.clone();
        FusedPass::from_standard_indices(&indices, KernelBackend::Scalar)
            .unwrap()
            .apply(&mut scalar, &ctx);
        let mut simd = img.clone();
        FusedPass::from_standard_indices(&indices, KernelBackend::Simd)
            .unwrap()
            .apply(&mut simd, &ctx);
        prop_assert_eq!(scalar, simd, "{}x{} {:?}", w, h, indices);
    }

    /// Unfused vectored kernels ≡ the plain chunked kernels, per stage,
    /// for every stage of the chain (blur's stencil included): the
    /// backend choice never changes a byte, only the traversal.
    #[test]
    fn vectored_equals_chunked_per_stage(
        stage in 0usize..5,
        w in 1u32..48,
        h in 1u32..24,
        frame_id in 0u64..1000,
        run_seed in any::<u64>(),
        content_seed in any::<u64>(),
        workers in 1usize..9,
        simd in any::<bool>(),
    ) {
        let backend = if simd { KernelBackend::Simd } else { KernelBackend::Scalar };
        let img = seeded_frame(w, h, content_seed);
        let ctx = FrameCtx::whole_frame(frame_id, run_seed, w, h);
        let chain = standard_chain();
        let mut want = img.clone();
        chain[stage].apply_chunked(&mut want, &ctx, workers);
        let mut got = img.clone();
        chain[stage].apply_vectored(&mut got, &ctx, backend, workers);
        prop_assert_eq!(
            got, want,
            "{} {}x{} {:?} workers={}", chain[stage].name(), w, h, backend, workers
        );
    }
}

/// Non-proptest spot check: `StripInfo` middle-strip geometry with an
/// odd height self-pairs the middle row, where vswap is the identity.
#[test]
fn odd_height_middle_row_is_identity_under_swap_only() {
    let img = seeded_frame(12, 7, 0xABCD);
    let ctx = FrameCtx::whole_frame(1, 2, 12, 7);
    let pass = FusedPass::from_standard_indices(&[4], KernelBackend::Scalar).unwrap();
    let mut out = img.clone();
    pass.apply(&mut out, &ctx);
    for x in 0..12 {
        assert_eq!(out.get(x, 3), img.get(x, 3), "middle row must not move");
        assert_eq!(out.get(x, 0), img.get(x, 6), "outer rows must swap");
    }
}
