//! Differential suite for the self-healing control plane: a supervised
//! fail-stop kill with a spare available must be *invisible in the
//! pixels* — the film is bit-identical to the fault-free run — in every
//! renderer mode and arrangement; with the spare pool exhausted the run
//! must degrade *exactly* like the PR-1 permanent-stall fallback; the
//! frame-major and event-driven executors must agree on the recovery
//! timeline; and MTTR must be finite and monotone in the heartbeat
//! period.

mod common;

use common::{cfg_with, checksums, kill_spec, oracle, scene, ARRANGEMENTS, MODES};
use proptest::prelude::*;
use scc_core::{
    place, run_des, Arrangement, FaultSpec, Fidelity, RendererMode, RunConfig, SimRunner,
    StageKind, StallSpec,
};

fn cfg(mode: RendererMode, arr: Arrangement, pipelines: u32) -> RunConfig {
    cfg_with(mode, arr, pipelines, 4)
}

/// The tentpole guarantee, swept across every renderer mode and core
/// arrangement: one mid-pipeline fail-stop, detected over the heartbeat
/// path, migrated to the first spare, replayed — zero degradations and a
/// bit-identical film.
#[test]
fn kill_with_spare_is_bit_identical_in_every_mode_and_arrangement() {
    for mode in MODES {
        for arr in ARRANGEMENTS {
            let mut c = cfg(mode, arr, 2);
            let want = oracle(&c);
            c.fault = Some(kill_spec(0, 2, 1));
            let report = SimRunner::new(c.clone(), scene()).run();
            assert!(
                !report.recoveries.is_empty(),
                "no recovery in {mode:?}/{arr:?}"
            );
            assert!(
                report.degradations.is_empty(),
                "fallback fired despite a spare in {mode:?}/{arr:?}"
            );
            let placement = place(mode, arr, c.pipelines);
            let ev = &report.recoveries[0];
            assert_eq!(ev.failed_core, placement.pipelines[0][2].raw());
            assert_eq!(
                ev.migration_target,
                placement.spare_pool()[0].raw(),
                "first spare in id order: {mode:?}/{arr:?}"
            );
            let kind = StageKind::PIPELINE_FILTERS[2];
            let stage = report.stage(kind, Some(0)).expect("stage report");
            assert_eq!(
                stage.core_id, ev.migration_target,
                "stage must finish on the spare: {mode:?}/{arr:?}"
            );
            assert_eq!(
                checksums(&report.outputs.expect("full fidelity")),
                want,
                "recovery damaged the film: {mode:?}/{arr:?}"
            );
        }
    }
}

/// With `max_spares: 0` the supervisor has nothing to migrate to, and the
/// kill must fall back to PR-1 graceful degradation with *exactly* the
/// timing and pixels of a permanent stall at the same instant.
#[test]
fn spare_exhausted_kill_degrades_exactly_like_pr1() {
    let base = cfg(RendererMode::SingleRenderer, Arrangement::Flipped, 3);
    let want = oracle(&base);

    let mut killed = base.clone();
    killed.fault = Some(FaultSpec {
        max_spares: 0,
        ..kill_spec(2, 3, 0)
    });
    let mut stalled = base;
    stalled.fault = Some(FaultSpec {
        stall: Some(StallSpec {
            pipeline: 2,
            stage: 3,
            at_ms: 0,
            for_ms: u64::MAX,
        }),
        ..FaultSpec::default()
    });
    let k = SimRunner::new(killed, scene()).run();
    let s = SimRunner::new(stalled, scene()).run();
    assert!(k.recoveries.is_empty(), "no spare, no migration");
    assert!(!k.degradations.is_empty(), "the kill must fail over");
    assert_eq!(
        k.degradations, s.degradations,
        "fallback diverged from PR-1"
    );
    assert_eq!(k.total_secs, s.total_secs, "fallback timing diverged");
    assert_eq!(checksums(&k.outputs.expect("frames")), want);
    assert_eq!(checksums(&s.outputs.expect("frames")), want);
}

/// The frame-major and event-driven executors observe the same kill and
/// must agree on the recovery: same failed core, same spare, the same
/// closed-form detection instant, and end-to-end times within the usual
/// cross-executor tolerance.
#[test]
fn des_and_sim_agree_on_the_recovery_timeline() {
    let mut c = cfg(RendererMode::SingleRenderer, Arrangement::Ordered, 3);
    c.fidelity = Fidelity::TimingOnly;
    c.frames = 10;
    c.fault = Some(kill_spec(0, 2, 1));
    let sim = SimRunner::new(c.clone(), scene()).run();
    let des = run_des(&c, scene());
    assert_eq!(sim.recoveries.len(), 1, "sim recovers once");
    assert_eq!(des.recoveries.len(), 1, "DES recovers once");
    let (a, b) = (&sim.recoveries[0], &des.recoveries[0]);
    assert_eq!(a.failed_core, b.failed_core);
    assert_eq!(a.migration_target, b.migration_target);
    assert_eq!(a.killed_at_secs, b.killed_at_secs);
    assert_eq!(
        a.detected_at_secs, b.detected_at_secs,
        "detection is a closed form of the kill instant and must match exactly"
    );
    let mttr_dev = (a.mttr_secs - b.mttr_secs).abs() / a.mttr_secs;
    assert!(
        mttr_dev < 0.10,
        "MTTR diverged: sim {:.6}s vs DES {:.6}s",
        a.mttr_secs,
        b.mttr_secs
    );
    let dev = (des.total_secs - sim.total_secs).abs() / sim.total_secs;
    assert!(
        dev < 0.03,
        "DES {:.3}s vs frame-major {:.3}s ({:.1}% apart)",
        des.total_secs,
        sim.total_secs,
        dev * 100.0
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs two full (small) pipelines
        ..ProptestConfig::default()
    })]

    /// Doubling the heartbeat period can only detect (and thus repair)
    /// later, never earlier — and MTTR stays finite either way.
    #[test]
    fn mttr_is_finite_and_monotone_in_heartbeat_period(
        pipelines in 2u32..4,
        stage in 0u32..5,
        at_ms in 0u64..2,
        period_us in 500u64..20_000,
        phi in 2u32..6,
    ) {
        let run = |period_us: u64| {
            let mut c = cfg(RendererMode::SingleRenderer, Arrangement::Ordered, pipelines);
            c.width = 40;
            c.height = 40;
            c.frames = 2;
            c.fidelity = Fidelity::TimingOnly;
            c.fault = Some(FaultSpec {
                heartbeat_period_us: period_us,
                phi_dead: phi as f64,
                ..kill_spec(0, stage, at_ms)
            });
            SimRunner::new(c, scene()).run()
        };
        let fast = run(period_us);
        let slow = run(period_us * 2);
        // The pre-observation timeline is identical, so the kill is either
        // observed in both runs or in neither.
        prop_assert_eq!(fast.recoveries.len(), slow.recoveries.len());
        if let (Some(f), Some(s)) = (fast.recoveries.first(), slow.recoveries.first()) {
            prop_assert!(f.mttr_secs.is_finite() && f.mttr_secs > 0.0);
            prop_assert!(s.mttr_secs.is_finite() && s.mttr_secs > 0.0);
            prop_assert!(
                f.detected_at_secs <= s.detected_at_secs,
                "halving the heartbeat rate detected earlier: {} vs {}",
                f.detected_at_secs, s.detected_at_secs
            );
            prop_assert!(
                f.mttr_secs <= s.mttr_secs + 1e-12,
                "MTTR regressed with a faster heartbeat: {} vs {}",
                f.mttr_secs, s.mttr_secs
            );
        }
    }
}
