//! Facade equivalence: `scc_core::run` must be a pure repackaging of the
//! direct entry points — identical report fingerprint for the sim
//! backend, identical timeline for the DES validator, identical film for
//! the native runner — across every renderer mode the backend covers.

use scc_core::viz::frame_checksum;
use scc_core::{
    run_des, run_native, run_with_scene, Backend, BackendReport, Fidelity, RendererMode, RunConfig,
    SimRunner,
};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

const MODES: [RendererMode; 3] = [
    RendererMode::SingleRenderer,
    RendererMode::PerPipelineRenderer,
    RendererMode::McpcRenderer,
];

fn scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig {
        side: 4,
        spacing: 8.0,
        seed: 1,
    }))
}

fn cfg(mode: RendererMode) -> RunConfig {
    RunConfig::builder()
        .renderer(mode)
        .pipelines(2)
        .size(48, 48)
        .frames(3)
        .seed(9)
        .fidelity(Fidelity::Full)
        .build()
        .expect("valid config")
}

fn film(frames: &[scc_filters::Image]) -> Vec<u64> {
    frames.iter().map(frame_checksum).collect()
}

#[test]
fn sim_facade_matches_the_direct_runner_in_every_mode() {
    for mode in MODES {
        let c = cfg(mode);
        let direct = SimRunner::new(c.clone(), scene()).run();
        let outcome = run_with_scene(&c, Backend::Sim, scene());
        assert_eq!(outcome.backend, Backend::Sim);
        assert_eq!(outcome.total_secs, direct.total_secs, "{mode:?}");
        assert_eq!(outcome.frames, c.frames, "{mode:?}");
        let BackendReport::Sim(report) = &outcome.report else {
            panic!("{mode:?}: sim backend must return a sim report");
        };
        assert_eq!(report.fingerprint(), direct.fingerprint(), "{mode:?}");
        assert_eq!(
            film(report.outputs.as_ref().expect("full fidelity")),
            film(direct.outputs.as_ref().expect("full fidelity")),
            "{mode:?}: facade changed the film"
        );
    }
}

#[test]
fn des_facade_matches_the_direct_validator() {
    let c = cfg(RendererMode::SingleRenderer);
    let direct = run_des(&c, scene());
    let outcome = run_with_scene(&c, Backend::Des, scene());
    assert_eq!(outcome.backend, Backend::Des);
    assert_eq!(outcome.total_secs, direct.total_secs);
    assert_eq!(outcome.frames, c.frames);
    let BackendReport::Des(report) = &outcome.report else {
        panic!("des backend must return a DES report");
    };
    assert_eq!(report.total_secs, direct.total_secs);
    assert_eq!(
        film(report.frames.as_ref().expect("full fidelity")),
        film(direct.frames.as_ref().expect("full fidelity")),
        "facade changed the DES film"
    );
}

#[test]
fn native_facade_matches_the_direct_runner_in_every_mode() {
    for mode in MODES {
        let c = cfg(mode);
        let direct = run_native(&c, scene());
        let outcome = run_with_scene(&c, Backend::Native, scene());
        assert_eq!(outcome.backend, Backend::Native);
        let BackendReport::Native(report) = &outcome.report else {
            panic!("{mode:?}: native backend must return a native report");
        };
        // Wall-clock differs run to run; the data path must not.
        assert_eq!(
            film(&report.frames),
            film(&direct.frames),
            "{mode:?}: facade changed the native film"
        );
        assert_eq!(outcome.frames as usize, direct.frames.len(), "{mode:?}");
        assert!(outcome.total_secs > 0.0, "{mode:?}");
        assert!(outcome.host.is_some(), "{mode:?}: host timing missing");
    }
}
