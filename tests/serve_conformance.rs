//! Serving-conformance suite: the frontend's scheduling contract.
//!
//! Three guarantees under test: (1) *fairness* — under a 10:1 offered-load
//! skew no tenant starves, and on contended rounds completed frames stay
//! inside the weighted-fair envelope; (2) *exactly-once accounting* — every
//! admitted session reaches exactly one terminal state, checked through the
//! shared invariant checker (`completed + shed == admitted`); (3)
//! *deterministic shedding* — under a pinned seed the shed decisions are a
//! pure function of the config, never silent, and reported per event.

mod common;

use common::scene;
use proptest::prelude::*;
use scc_core::check_session_ledger;
use scc_core::{Fidelity, RendererMode, RunConfig};
use scc_serve::{serve, ServeConfig, ServeOutcome, ShedReason, TenantSpec};

fn base_run() -> RunConfig {
    RunConfig::builder()
        .renderer(RendererMode::SingleRenderer)
        .pipelines(2)
        .size(40, 32)
        .seed(23)
        .fidelity(Fidelity::Full)
        .verify(true)
        .build()
        .expect("valid run config")
}

fn serve_cfg(tenants: Vec<TenantSpec>) -> ServeConfig {
    ServeConfig {
        run: base_run(),
        tenants,
        shards: 1, // one shard => contended counters cover the whole frontend
        pool: 2,
        cache_capacity: 64,
        cache_buckets: 64,
        queue_depth: 64,
        max_sessions: 128,
        batch_frames: 4,
        pose_span: 4,
        arrival_burst: 64,
        seed: 0x5EC5_E55,
        keep_films: false,
    }
}

fn run(cfg: &ServeConfig) -> ServeOutcome {
    serve(cfg, &scene())
}

/// 10:1 offered-load skew, equal weights: the flood tenant may not starve
/// the small one. Both must complete everything they offered, and on
/// contended rounds the small tenant must still receive its fair share.
#[test]
fn no_tenant_starves_under_ten_to_one_skew() {
    let cfg = serve_cfg(vec![
        TenantSpec::new("flood", 1, 40, 6),
        TenantSpec::new("drip", 1, 4, 6),
    ]);
    let out = run(&cfg);
    let r = &out.report;
    assert_eq!(r.shed, 0, "capacity fits the whole offered load");
    for t in &r.per_tenant {
        assert_eq!(
            t.completed_sessions, t.offered as u64,
            "tenant {} starved: {}/{} sessions",
            t.name, t.completed_sessions, t.offered
        );
        assert!(t.frames_completed > 0, "tenant {} served no frames", t.name);
    }
    // While both tenants had backlog, equal weights mean the drip tenant
    // got frames alongside the flood — not after it drained.
    let drip = &r.per_tenant[1];
    assert!(
        drip.contended_frames > 0,
        "drip tenant was frozen out of every contended round"
    );
}

/// Weighted-fair envelope: with one shard and every tenant backlogged, a
/// tenant's completed frames on contended rounds must sit within one
/// round's worth of slots of its weight share `w_t/W · total`.
#[test]
fn contended_frames_stay_within_the_weighted_fair_envelope() {
    let cfg = serve_cfg(vec![
        TenantSpec::new("gold", 3, 12, 8),
        TenantSpec::new("bronze", 1, 12, 8),
    ]);
    let out = run(&cfg);
    let r = &out.report;
    assert!(
        r.contended_rounds > 4,
        "workload too small to contend ({} rounds)",
        r.contended_rounds
    );
    let total: u64 = r.contended_frames_total;
    let weight_sum: f64 = r.per_tenant.iter().map(|t| f64::from(t.weight)).sum();
    for t in &r.per_tenant {
        let share = f64::from(t.weight) / weight_sum * total as f64;
        let dev = (t.contended_frames as f64 - share).abs();
        assert!(
            dev <= r.contended_rounds as f64,
            "tenant {} outside the weighted-fair envelope: got {} of {} \
             contended frames, fair share {:.1}, slack {} rounds",
            t.name,
            t.contended_frames,
            total,
            share,
            r.contended_rounds
        );
    }
    // The 3:1 weighting must actually bite, not just stay inside the band.
    assert!(
        r.per_tenant[0].contended_frames > 2 * r.per_tenant[1].contended_frames,
        "3:1 weights produced {}:{} contended frames",
        r.per_tenant[0].contended_frames,
        r.per_tenant[1].contended_frames
    );
}

/// Exactly-once ledger through the shared invariant checker: the engine's
/// reported counters satisfy `completed + shed == admitted`, and the
/// checker itself flags an imbalance.
#[test]
fn session_ledger_balances_through_the_invariant_checker() {
    let mut cfg = serve_cfg(vec![
        TenantSpec::new("a", 2, 16, 4),
        TenantSpec::new("b", 1, 16, 4),
    ]);
    // Force real shedding so the ledger covers both terminal states.
    cfg.queue_depth = 2;
    cfg.max_sessions = 8;
    cfg.arrival_burst = 8;
    let out = run(&cfg);
    let r = &out.report;
    assert!(r.shed > 0, "overload config must shed");
    assert!(r.completed > 0, "overload config must also complete work");
    assert!(
        check_session_ledger(r.admitted, r.completed, r.shed).is_empty(),
        "ledger out of balance: admitted {} completed {} shed {}",
        r.admitted,
        r.completed,
        r.shed
    );
    // Shedding is never silent: the counter and the event log agree.
    assert_eq!(r.shed, r.shed_events.len() as u64);
    // And the checker really does catch an imbalance.
    let v = check_session_ledger(5, 2, 2);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].check, "session-ledger");
}

/// Shed decisions under a pinned seed are a pure function of the config:
/// two runs produce the same events (round, session, tenant, reason), and
/// every reason is one of the two documented policies.
#[test]
fn shed_decisions_are_deterministic_under_a_pinned_seed() {
    let mut cfg = serve_cfg(vec![
        TenantSpec::new("a", 1, 24, 4),
        TenantSpec::new("b", 1, 24, 4),
    ]);
    cfg.queue_depth = 3;
    cfg.max_sessions = 10;
    cfg.arrival_burst = 12;
    let first = run(&cfg);
    let second = run(&cfg);
    assert!(
        first.report.shed > 0,
        "overload config must shed to exercise determinism"
    );
    assert_eq!(
        first.report.shed_events, second.report.shed_events,
        "shed decisions drifted between identical runs"
    );
    assert_eq!(first.report.film_hash, second.report.film_hash);
    for ev in &first.report.shed_events {
        assert!(
            matches!(ev.reason, ShedReason::TenantQueueFull | ShedReason::SessionCap),
            "undocumented shed reason {:?}",
            ev.reason
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case serves a full (small) workload
        ..ProptestConfig::default()
    })]

    /// The ledger balances and shedding stays non-silent for arbitrary
    /// tenant mixes and admission knobs, including heavy overload.
    #[test]
    fn ledger_balances_over_random_admission_pressure(
        sessions_a in 1u32..20,
        sessions_b in 1u32..20,
        weight_a in 1u32..4,
        queue_depth in 1u32..6,
        max_sessions in 1u32..12,
        burst in 1u32..16,
        wseed in 0u64..1000,
    ) {
        let mut cfg = serve_cfg(vec![
            TenantSpec::new("a", weight_a, sessions_a, 3),
            TenantSpec::new("b", 1, sessions_b, 3),
        ]);
        cfg.queue_depth = queue_depth;
        cfg.max_sessions = max_sessions;
        cfg.arrival_burst = burst;
        cfg.seed = wseed;
        let out = run(&cfg);
        let r = &out.report;
        prop_assert_eq!(r.admitted, u64::from(sessions_a + sessions_b));
        prop_assert!(check_session_ledger(r.admitted, r.completed, r.shed).is_empty());
        prop_assert_eq!(r.shed, r.shed_events.len() as u64);
        let by_tenant: u64 = r.per_tenant.iter().map(|t| t.completed_sessions).sum();
        prop_assert_eq!(by_tenant, r.completed);
    }
}
