//! The qualitative results of §VI-A, asserted as invariants: who wins,
//! where the curves plateau, where the crossovers fall. Runs at the
//! paper's frame geometry but with a shortened walkthrough — the pipeline
//! reaches steady state within a few frames, so the shapes are identical.

use scc_core::{Arrangement, RendererMode, RunConfig, SimRunner, StageKind};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig::default()))
}

fn secs(mode: RendererMode, arr: Arrangement, pipelines: u32, scene: &Arc<Scene>) -> f64 {
    let cfg = RunConfig {
        renderer: mode,
        arrangement: arr,
        pipelines,
        frames: 60,
        ..RunConfig::default()
    };
    SimRunner::new(cfg, Arc::clone(scene)).run().total_secs
}

#[test]
fn single_renderer_plateaus_after_two_pipelines() {
    // Figure 9: "this configuration does not scale well due to the
    // rendering bottleneck".
    let s = scene();
    let t1 = secs(RendererMode::SingleRenderer, Arrangement::Ordered, 1, &s);
    let t2 = secs(RendererMode::SingleRenderer, Arrangement::Ordered, 2, &s);
    let t4 = secs(RendererMode::SingleRenderer, Arrangement::Ordered, 4, &s);
    let t7 = secs(RendererMode::SingleRenderer, Arrangement::Ordered, 7, &s);
    assert!(t2 < t1 * 0.6, "2 pipelines should nearly halve the time");
    // Beyond the render-bound plateau, extra pipelines buy almost nothing.
    assert!(
        (t7 - t4).abs() < t4 * 0.1,
        "plateau expected: t4={t4:.1}, t7={t7:.1}"
    );
    assert!(t7 > t2 * 0.75, "cannot beat the render bottleneck");
}

#[test]
fn per_pipeline_renderers_keep_scaling() {
    // Figure 10: "the system scales better using this configuration".
    let s = scene();
    let t1 = secs(
        RendererMode::PerPipelineRenderer,
        Arrangement::Ordered,
        1,
        &s,
    );
    let t3 = secs(
        RendererMode::PerPipelineRenderer,
        Arrangement::Ordered,
        3,
        &s,
    );
    let t7 = secs(
        RendererMode::PerPipelineRenderer,
        Arrangement::Ordered,
        7,
        &s,
    );
    assert!(t3 < t1 * 0.45, "3 pipelines ~3x faster: {t1:.1} -> {t3:.1}");
    assert!(
        t7 < t3 * 0.75,
        "still gaining at 7 pipelines: {t3:.1} -> {t7:.1}"
    );
    // And it beats the single-renderer plateau.
    let single7 = secs(RendererMode::SingleRenderer, Arrangement::Ordered, 7, &s);
    assert!(
        t7 < single7,
        "n renderers must beat the render-bound plateau"
    );
}

#[test]
fn nrend_one_pipeline_pays_the_frustum_adjustment() {
    // §VI-A: the one-pipeline n-renderer run is *slower* than the
    // single-renderer one because the strip-projection computations are
    // not omitted.
    let s = scene();
    let single = secs(RendererMode::SingleRenderer, Arrangement::Ordered, 1, &s);
    let nrend = secs(
        RendererMode::PerPipelineRenderer,
        Arrangement::Ordered,
        1,
        &s,
    );
    assert!(
        nrend > single * 1.05,
        "n-rend 1pl ({nrend:.1}s) should exceed single 1pl ({single:.1}s)"
    );
}

#[test]
fn mcpc_renderer_is_the_fastest_configuration() {
    // Figure 11 + Table I: the heterogeneous setup achieves the best
    // walkthrough time on the SCC system.
    let s = scene();
    let best = |mode: RendererMode| -> f64 {
        (1..=mode.max_pipelines().min(8))
            .map(|p| secs(mode, Arrangement::Ordered, p, &s))
            .fold(f64::INFINITY, f64::min)
    };
    let single = best(RendererMode::SingleRenderer);
    let nrend = best(RendererMode::PerPipelineRenderer);
    let mcpc = best(RendererMode::McpcRenderer);
    assert!(mcpc < single, "MCPC {mcpc:.1} vs single {single:.1}");
    assert!(
        mcpc < nrend * 1.35,
        "MCPC ({mcpc:.1}) must be at least competitive with n-rend ({nrend:.1})"
    );
}

#[test]
fn mcpc_scaling_dips_past_its_optimum() {
    // Figure 11: "if we increase the number of pipelines further, we
    // start to see a dip in performance" — the connector saturates.
    let s = scene();
    let times: Vec<f64> = (1..=8)
        .map(|p| secs(RendererMode::McpcRenderer, Arrangement::Ordered, p, &s))
        .collect();
    let (best_p, best) = times
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, t)| (i + 1, *t))
        .unwrap();
    assert!(
        (3..=7).contains(&best_p),
        "optimum at {best_p} pipelines; paper finds ~5"
    );
    // Past the optimum the curve is flat-to-worse, never improving much.
    let last = times[7];
    assert!(last >= best * 0.98, "no significant gain past the optimum");
}

#[test]
fn arrangements_have_no_significant_influence() {
    // "Quite surprisingly, the arrangements of the stages on the SCC had
    // no performance impact in all of our configurations" (§VI-A).
    let s = scene();
    for mode in [
        RendererMode::SingleRenderer,
        RendererMode::PerPipelineRenderer,
        RendererMode::McpcRenderer,
    ] {
        for p in [2u32, 5] {
            if p > mode.max_pipelines() {
                continue;
            }
            let t: Vec<f64> = Arrangement::all()
                .into_iter()
                .map(|a| secs(mode, a, p, &s))
                .collect();
            let min = t.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = t.iter().cloned().fold(0.0, f64::max);
            assert!(
                (max - min) / min < 0.08,
                "{mode:?} p={p}: arrangement spread {:.1}% too large ({t:?})",
                100.0 * (max - min) / min
            );
        }
    }
}

#[test]
fn blur_is_the_bottleneck_of_a_single_pipeline() {
    let cfg = RunConfig {
        renderer: RendererMode::McpcRenderer,
        pipelines: 1,
        frames: 60,
        ..RunConfig::default()
    };
    let r = SimRunner::new(cfg, scene()).run();
    let blur = r.utilisation(StageKind::Blur, Some(0)).unwrap();
    assert!(blur > 0.85, "blur utilisation {blur:.2} should be ~1");
    for kind in [
        StageKind::Sepia,
        StageKind::Scratch,
        StageKind::Flicker,
        StageKind::Swap,
    ] {
        let u = r.utilisation(kind, Some(0)).unwrap();
        assert!(
            u < blur,
            "{kind:?} ({u:.2}) must not exceed blur ({blur:.2})"
        );
    }
}

#[test]
fn idle_time_ordering_matches_figure_15() {
    // With seven MCPC-fed pipelines, the blur stage waits least and the
    // scratch stage most (Figure 15: ~58 ms vs ~133 ms medians).
    let cfg = RunConfig {
        renderer: RendererMode::McpcRenderer,
        pipelines: 7,
        frames: 80,
        ..RunConfig::default()
    };
    let r = SimRunner::new(cfg, scene()).run();
    let median = |k: StageKind| r.stage(k, Some(0)).unwrap().idle_ms.unwrap().median;
    let blur = median(StageKind::Blur);
    let scratch = median(StageKind::Scratch);
    let sepia = median(StageKind::Sepia);
    assert!(
        blur < scratch,
        "blur idle {blur:.1}ms !< scratch {scratch:.1}ms"
    );
    assert!(blur < sepia, "blur idle {blur:.1}ms !< sepia {sepia:.1}ms");
    // Quartiles are tight ("the variances of the task times are small").
    let q = r
        .stage(StageKind::Scratch, Some(0))
        .unwrap()
        .idle_ms
        .unwrap();
    assert!(
        q.iqr() < q.median * 0.25,
        "idle-time spread too large: {q:?}"
    );
}

#[test]
fn shapes_are_robust_to_the_scene_choice() {
    // The reproduction's claims must not hinge on the default procedural
    // city: the Manhattan-style variant (closer to the paper's NYC model)
    // must show the same qualitative structure.
    // Note: shapes tied to the *calibrated ratio* of render-to-filter
    // cost (e.g. exactly where the single-renderer plateau starts) are
    // scene-dependent by nature; what must survive a scene change is the
    // structure — pipelining helps, arrangements don't matter, MCPC
    // offload scales.
    let s: Arc<Scene> = Arc::new(Scene::manhattan(scc_render::ManhattanConfig::default()));
    let t1 = secs(RendererMode::SingleRenderer, Arrangement::Ordered, 1, &s);
    let t2 = secs(RendererMode::SingleRenderer, Arrangement::Ordered, 2, &s);
    assert!(
        t2 < t1 * 0.65,
        "still halves at 2 pipelines: {t1:.1} -> {t2:.1}"
    );
    let m1 = secs(RendererMode::McpcRenderer, Arrangement::Ordered, 1, &s);
    let m5 = secs(RendererMode::McpcRenderer, Arrangement::Ordered, 5, &s);
    assert!(m5 < m1 * 0.45, "MCPC still scales: {m1:.1} -> {m5:.1}");
    // Arrangement insensitivity is scene-independent.
    let a = secs(RendererMode::McpcRenderer, Arrangement::Unordered, 4, &s);
    let b = secs(RendererMode::McpcRenderer, Arrangement::Flipped, 4, &s);
    assert!(
        (a - b).abs() / a < 0.08,
        "arrangements diverge: {a:.1} vs {b:.1}"
    );
}
