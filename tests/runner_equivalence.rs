//! Cross-runner differential suite: the frame-major simulator, the
//! event-driven (DES) validator and the native thread runner must all
//! produce bit-identical frame checksums against the sequential
//! reference, for every renderer mode and every pipeline arrangement —
//! and the guarantee must survive injected message faults.

mod common;

use common::{cfg_with, checksums, oracle, scene, ARRANGEMENTS, MODES};
use scc_core::{
    run_des, run_native, Arrangement, FaultSpec, RendererMode, RunConfig, SimRunner, StallSpec,
};

fn cfg(mode: RendererMode, arr: Arrangement, pipelines: u32) -> RunConfig {
    cfg_with(mode, arr, pipelines, 3)
}

#[test]
fn sim_matches_reference_in_every_mode_and_arrangement() {
    for mode in MODES {
        for arr in ARRANGEMENTS {
            let c = cfg(mode, arr, 2);
            let want = oracle(&c);
            let report = SimRunner::new(c, scene()).run();
            assert_eq!(
                checksums(&report.outputs.expect("full fidelity")),
                want,
                "sim diverged: {mode:?}/{arr:?}"
            );
        }
    }
}

#[test]
fn native_matches_reference_in_every_mode_and_arrangement() {
    for mode in MODES {
        for arr in ARRANGEMENTS {
            let c = cfg(mode, arr, 2);
            let want = oracle(&c);
            let native = run_native(&c, scene());
            assert_eq!(
                checksums(&native.frames),
                want,
                "native diverged: {mode:?}/{arr:?}"
            );
        }
    }
}

#[test]
fn des_matches_reference_in_every_arrangement() {
    // The DES validator covers the single-renderer configuration; the
    // arrangement only moves stages between cores, so the data path must
    // be byte-stable across all three.
    for arr in ARRANGEMENTS {
        let c = cfg(RendererMode::SingleRenderer, arr, 3);
        let want = oracle(&c);
        let des = run_des(&c, scene());
        assert_eq!(
            checksums(&des.frames.expect("full fidelity")),
            want,
            "DES diverged: {arr:?}"
        );
    }
}

#[test]
fn all_three_runners_agree_with_each_other() {
    let c = cfg(RendererMode::SingleRenderer, Arrangement::Ordered, 2);
    let sim = SimRunner::new(c.clone(), scene()).run();
    let des = run_des(&c, scene());
    let native = run_native(&c, scene());
    let a = checksums(&sim.outputs.expect("frames"));
    let b = checksums(&des.frames.expect("frames"));
    let n = checksums(&native.frames);
    assert_eq!(a, b, "sim vs DES");
    assert_eq!(a, n, "sim vs native");

    // The native runner's host tuning (chunked kernels + buffer pool) is
    // a pure perf knob; the agreement must hold at any setting.
    let mut tuned = c.clone();
    tuned.tuning = scc_core::NativeTuning {
        kernel_threads: 3,
        buffer_pool: true,
        ..scc_core::NativeTuning::default()
    };
    let native_tuned = run_native(&tuned, scene());
    assert_eq!(a, checksums(&native_tuned.frames), "sim vs tuned native");
}

#[test]
fn chaos_walkthrough_delivers_every_frame() {
    // The headline robustness scenario across both executable runners:
    // 1% flit loss plus one permanently stalled filter core (sim), and
    // message drop/corruption (native) — zero lost frames everywhere.
    let mut c = cfg(RendererMode::SingleRenderer, Arrangement::Ordered, 3);
    let want = oracle(&c);
    c.fault = Some(FaultSpec {
        drop_rate: 0.01,
        stall: Some(StallSpec {
            pipeline: 0,
            stage: 1,
            at_ms: 0,
            for_ms: u64::MAX,
        }),
        ..FaultSpec::default()
    });
    let report = SimRunner::new(c.clone(), scene()).run();
    assert!(
        !report.degradations.is_empty(),
        "the stalled blur core must be failed over"
    );
    assert_eq!(
        checksums(&report.outputs.expect("frames")),
        want,
        "sim lost or damaged a frame under faults"
    );

    // Native: no core stalls (threads are real), message faults only,
    // with host-friendly timeouts — and the most aggressive host tuning,
    // so retransmission, chunked kernels and buffer recycling all overlap.
    let mut nc = c.clone();
    nc.fault = Some(FaultSpec {
        drop_rate: 0.02,
        corrupt_rate: 0.02,
        timeout_us: 100_000,
        retry_budget: 5,
        ..FaultSpec::default()
    });
    nc.tuning = scc_core::NativeTuning {
        kernel_threads: 4,
        buffer_pool: true,
        ..scc_core::NativeTuning::default()
    };
    let native = run_native(&nc, scene());
    assert_eq!(
        checksums(&native.frames),
        want,
        "native lost or damaged a frame under faults"
    );
}

#[test]
fn same_fault_seed_reports_are_byte_identical() {
    let mut c = cfg(RendererMode::SingleRenderer, Arrangement::Ordered, 3);
    c.fault = Some(FaultSpec {
        drop_rate: 0.02,
        corrupt_rate: 0.01,
        delay_rate: 0.05,
        degraded_links: 2,
        degrade_factor: 0.6,
        stall: Some(StallSpec {
            pipeline: 2,
            stage: 3,
            at_ms: 5,
            for_ms: u64::MAX,
        }),
        ..FaultSpec::default()
    });
    let a = SimRunner::new(c.clone(), scene()).run();
    let b = SimRunner::new(c, scene()).run();
    assert_eq!(a.fingerprint(), b.fingerprint());
}
