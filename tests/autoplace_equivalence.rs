//! Differential suite for the stage-graph scheduler: an auto-placed run
//! must deliver the *same film, bit for bit* as the paper's fixed
//! 7-stage arrangement — across all three renderer modes, all three
//! backends (frame-major sim, event-driven DES, native threads), and
//! under injected faults (message-level drops/corruption on the native
//! transport, supervised fail-stop kills on the simulated backends).
//! It also pins the scheduler's reason to exist: the auto placement's
//! simulated frame rate beats (or ties within 1%) every fixed
//! arrangement on the film workload.

mod common;

use common::{cfg_with, checksums, scene, MODES};
use scc_core::{
    reference::reference_frames, run_des, run_native, Arrangement, FaultSpec, Fidelity,
    RendererMode, RunConfig, SimRunner,
};

fn cfg(mode: RendererMode, pipelines: u32) -> RunConfig {
    cfg_with(mode, Arrangement::Ordered, pipelines, 4)
}

#[test]
fn sim_auto_equals_fixed_in_every_renderer_mode() {
    for mode in MODES {
        let fixed = cfg(mode, 2);
        let mut auto = fixed.clone();
        auto.auto_place = true;
        auto.verify = true; // every invariant checked on the auto run
        let a = SimRunner::new(fixed, scene()).run();
        let b = SimRunner::new(auto, scene()).run();
        assert_eq!(
            checksums(&a.outputs.expect("fixed film")),
            checksums(&b.outputs.expect("auto film")),
            "{mode:?}: auto placement changed the film"
        );
    }
}

#[test]
fn native_auto_equals_fixed_in_every_renderer_mode() {
    for mode in MODES {
        let fixed = cfg(mode, 2);
        let mut auto = fixed.clone();
        auto.auto_place = true;
        let a = run_native(&fixed, scene());
        let b = run_native(&auto, scene());
        assert_eq!(
            checksums(&a.frames),
            checksums(&b.frames),
            "{mode:?}: native auto placement changed the film"
        );
        // And both equal the sequential oracle.
        let mut ref_cfg = fixed.clone();
        if mode == RendererMode::McpcRenderer {
            ref_cfg.renderer = RendererMode::SingleRenderer;
        }
        assert_eq!(b.frames, reference_frames(&ref_cfg, scene()));
    }
}

#[test]
fn des_auto_equals_fixed_single_renderer() {
    // The DES validator covers the single-renderer configuration.
    let fixed = cfg(RendererMode::SingleRenderer, 2);
    let mut auto = fixed.clone();
    auto.auto_place = true;
    auto.verify = true;
    let a = run_des(&fixed, scene());
    let b = run_des(&auto, scene());
    assert_eq!(
        checksums(&a.frames.expect("fixed film")),
        checksums(&b.frames.expect("auto film")),
        "DES: auto placement changed the film"
    );
}

fn kill_spec(stage: u32) -> FaultSpec {
    common::kill_spec(0, stage, 1)
}

#[test]
fn sim_auto_survives_kills_bit_identical() {
    // Kill the replicated bottleneck's primary (stage 1, blur) and a
    // merged-tail stage (stage 3, flicker): the supervisor must migrate
    // the scheduler placement — group siblings included — and still
    // deliver the reference film.
    for stage in [1u32, 3] {
        let mut auto = cfg(RendererMode::SingleRenderer, 2);
        auto.auto_place = true;
        auto.fault = Some(kill_spec(stage));
        let report = SimRunner::new(auto.clone(), scene()).run();
        assert!(
            !report.recoveries.is_empty(),
            "stage {stage}: the kill must be detected and migrated"
        );
        let mut clean = auto.clone();
        clean.fault = None;
        assert_eq!(
            report.outputs.expect("killed run film"),
            reference_frames(&clean, scene()),
            "stage {stage}: recovery lost film fidelity under auto placement"
        );
    }
}

#[test]
fn des_auto_survives_kills_bit_identical() {
    let mut auto = cfg(RendererMode::SingleRenderer, 2);
    auto.auto_place = true;
    auto.verify = true;
    auto.fault = Some(kill_spec(3));
    let report = run_des(&auto, scene());
    assert_eq!(report.recoveries.len(), 1);
    let mut clean = auto.clone();
    clean.fault = None;
    assert_eq!(
        report.frames.expect("killed run film"),
        reference_frames(&clean, scene())
    );
}

#[test]
fn native_auto_survives_message_faults_bit_identical() {
    let mut auto = cfg(RendererMode::SingleRenderer, 2);
    auto.auto_place = true;
    auto.verify = true; // ARQ ledgers audited at thread exit
    auto.fault = Some(FaultSpec {
        seed: 0xC1A05,
        drop_rate: 0.05,
        corrupt_rate: 0.05,
        timeout_us: 100_000,
        retry_budget: 5,
        ..FaultSpec::default()
    });
    let report = run_native(&auto, scene());
    let mut clean = auto.clone();
    clean.fault = None;
    assert_eq!(report.frames, reference_frames(&clean, scene()));
}

#[test]
fn auto_throughput_dominates_every_fixed_arrangement() {
    // The scheduler's reason to exist: replicating blur and merging the
    // idle tail must beat (or tie within 1%) each fixed arrangement's
    // simulated frame rate on the film workload.
    let base = RunConfig::builder()
        .renderer(RendererMode::SingleRenderer)
        .arrangement(Arrangement::Ordered)
        .pipelines(2)
        .size(100, 100)
        .frames(16)
        .seed(23)
        .fidelity(Fidelity::TimingOnly)
        .build()
        .expect("valid config");
    let mut auto = base.clone();
    auto.auto_place = true;
    let auto_secs = SimRunner::new(auto, scene()).run().total_secs;
    for arr in [
        Arrangement::Unordered,
        Arrangement::Ordered,
        Arrangement::Flipped,
    ] {
        let mut fixed = base.clone();
        fixed.arrangement = arr;
        let fixed_secs = SimRunner::new(fixed, scene()).run().total_secs;
        assert!(
            auto_secs <= fixed_secs * 1.01,
            "{arr:?}: auto {auto_secs:.3}s must not lose to fixed {fixed_secs:.3}s"
        );
    }
}
