//! Validation of the simulation machinery itself (as opposed to the
//! paper-shape tests): the contention model must be insensitive to its
//! ledger granularity, and every simulated walkthrough must respect the
//! analytic bounds that hold for any pipeline schedule.

use scc_core::cost::{CostModel, RenderWork};
use scc_core::runner::sim::DvfsPlan;
use scc_core::{place, RendererMode, RunConfig, SimRunner, StageKind};
use scc_render::{CityConfig, Renderer, Scene, Walkthrough};
use scc_sim::{SccConfig, SccPlatform, SimTime};
use std::sync::Arc;

fn scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig::default()))
}

fn cfg(mode: RendererMode, pipelines: u32) -> RunConfig {
    RunConfig::builder()
        .renderer(mode)
        .pipelines(pipelines)
        .frames(50)
        .build()
        .expect("valid config")
}

fn run_with_bucket(config: RunConfig, bucket: SimTime, scene: &Arc<Scene>) -> f64 {
    let mut scc = SccConfig::default();
    scc.mem.bucket = bucket;
    scc.noc.bucket = bucket;
    scc.host_link.bucket = bucket;
    let placement = place(config.renderer, config.arrangement, config.pipelines);
    SimRunner::with_parts(
        config,
        Arc::clone(scene),
        placement,
        SccPlatform::new(scc),
        CostModel::default(),
        DvfsPlan::default(),
    )
    .run()
    .total_secs
}

#[test]
fn results_are_insensitive_to_ledger_granularity() {
    // The time-bucketed contention model is an approximation; its bucket
    // width must not be a hidden tuning parameter. Halving / quartering
    // the 1 ms default should move headline results by well under 5%.
    let s = scene();
    for (mode, p) in [
        (RendererMode::PerPipelineRenderer, 7u32),
        (RendererMode::McpcRenderer, 5),
    ] {
        let t_default = run_with_bucket(cfg(mode, p), SimTime::from_ms(1), &s);
        let t_fine = run_with_bucket(cfg(mode, p), SimTime::from_us(250), &s);
        let t_coarse = run_with_bucket(cfg(mode, p), SimTime::from_ms(4), &s);
        let dev_fine = (t_fine - t_default).abs() / t_default;
        let dev_coarse = (t_coarse - t_default).abs() / t_default;
        assert!(
            dev_fine < 0.05,
            "{mode:?}/{p}: 250us bucket deviates {:.1}% ({t_fine:.1} vs {t_default:.1})",
            dev_fine * 100.0
        );
        assert!(
            dev_coarse < 0.05,
            "{mode:?}/{p}: 4ms bucket deviates {:.1}% ({t_coarse:.1} vs {t_default:.1})",
            dev_coarse * 100.0
        );
    }
}

/// Lower bound: no schedule can finish before the bottleneck stage has
/// serviced every frame, computed from pure (uncontended) stage costs.
fn bottleneck_lower_bound(config: &RunConfig, scene: &Arc<Scene>) -> f64 {
    use scc_filters::{Blur, Flicker, Image, ImageFilter, Scratch, Sepia, VSwap};
    let cost = CostModel::default();
    let renderer = Renderer::new(Arc::clone(scene));
    let walkthrough = Walkthrough::standard(config.width as f32 / config.height as f32);
    let filters: [Box<dyn ImageFilter>; 5] = [
        Box::new(Sepia),
        Box::new(Blur::default()),
        Box::new(Scratch::default()),
        Box::new(Flicker::default()),
        Box::new(VSwap),
    ];
    let bounds = Image::strip_bounds(config.height, config.pipelines);
    let (y0, h) = bounds[0];
    let mut per_stage = vec![0.0f64; 5];
    let mut render = 0.0f64;
    for f in 0..config.frames {
        let cam = walkthrough.camera(f);
        let proxy = Image::new(config.width, h);
        let ctx = scc_filters::FrameCtx {
            frame_id: f,
            run_seed: config.seed,
            strip: scc_filters::StripInfo {
                index: 0,
                count: config.pipelines,
                y0,
                height: h,
                full_height: config.height,
            },
            full_width: config.width,
        };
        for (j, filter) in filters.iter().enumerate() {
            per_stage[j] += cost.filter_cycles(filter.as_ref(), &proxy, &ctx) / 533.0e6;
        }
        if config.renderer == RendererMode::SingleRenderer {
            let (_, cull, cov) =
                renderer.cull_strip(&cam, config.width, config.height, 0, config.height);
            let work = RenderWork {
                nodes_visited: cull.nodes_visited,
                triangles_out: cull.triangles_out,
                est_coverage: cov,
            };
            render += cost.render_cycles(&work, false) / 533.0e6;
        }
    }
    per_stage
        .into_iter()
        .chain(std::iter::once(render))
        .fold(0.0, f64::max)
}

#[test]
fn walkthrough_respects_analytic_bounds() {
    let s = scene();
    for (mode, p) in [
        (RendererMode::SingleRenderer, 1u32),
        (RendererMode::SingleRenderer, 4),
        (RendererMode::McpcRenderer, 3),
    ] {
        let config = cfg(mode, p);
        let t = SimRunner::new(config.clone(), Arc::clone(&s))
            .run()
            .total_secs;
        let lower = bottleneck_lower_bound(&config, &s);
        assert!(
            t >= lower * 0.999,
            "{mode:?}/{p}: simulated {t:.2}s beats the bottleneck bound {lower:.2}s"
        );
        // Upper sanity: pipelining never loses to fully serial execution
        // by more than the pipeline-fill transient.
        let serial: f64 = {
            let base = scc_core::run_baseline(&config, Arc::clone(&s));
            base.total_secs
        };
        assert!(
            t <= serial * 1.2,
            "{mode:?}/{p}: pipelined {t:.2}s worse than serial {serial:.2}s"
        );
    }
}

#[test]
fn busy_time_never_exceeds_wall_time_per_stage() {
    let s = scene();
    let r = SimRunner::new(cfg(RendererMode::PerPipelineRenderer, 5), s).run();
    for st in &r.stage_reports {
        assert!(
            st.busy_secs <= r.total_secs * 1.001,
            "{:?} busy {:.2}s > total {:.2}s",
            st.kind,
            st.busy_secs,
            r.total_secs
        );
        assert!(st.busy_secs >= 0.0);
    }
    // The bottleneck stage must exist: someone is >80% utilised.
    let max_util = r
        .stage_reports
        .iter()
        .map(|st| st.busy_secs / r.total_secs)
        .fold(0.0, f64::max);
    assert!(
        max_util > 0.8,
        "no bottleneck stage? max util {max_util:.2}"
    );
}

#[test]
fn energy_is_at_least_idle_energy() {
    let s = scene();
    let r = SimRunner::new(cfg(RendererMode::McpcRenderer, 4), s).run();
    let idle_floor = r.scc_idle_power * r.total_secs;
    assert!(
        r.scc_energy_joules >= idle_floor,
        "energy {:.0} J below idle floor {:.0} J",
        r.scc_energy_joules,
        idle_floor
    );
    // And mean power stays below the all-cores-at-full ceiling (~70 W).
    assert!(r.mean_power() < 70.0);
}

#[test]
fn stage_kind_order_matches_figure_1() {
    // The pipeline order of Figure 1: render -> sepia -> blur -> scratch
    // -> flicker -> swap -> transfer. Encoded in PIPELINE_FILTERS; guard
    // against accidental re-ordering.
    let names: Vec<&str> = StageKind::PIPELINE_FILTERS
        .iter()
        .map(|k| k.name())
        .collect();
    assert_eq!(names, ["sepia", "blur", "scratch", "flicker", "swap"]);
}
