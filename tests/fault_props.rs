//! Property-based tests for the fault-injection subsystem:
//!
//! * the fault schedule is a pure function of the seed — same seed, same
//!   schedule, same end-to-end report;
//! * the native frame codec's CRC catches every single-byte mutation;
//! * any single stalled stage, given a retry budget and a surviving
//!   pipeline, never costs a frame.

use proptest::prelude::*;
use scc_core::runner::native::{decode_frame_checked, encode_frame};
use scc_core::viz::frame_checksum;
use scc_core::Frame;
use scc_core::{
    reference::reference_frames, run_native, FaultSpec, Fidelity, NativeTuning, RunConfig,
    SimRunner, StallSpec,
};
use scc_filters::{Image, StripInfo};
use scc_render::{CityConfig, Scene};
use scc_sim::fault::{CoreStall, FaultConfig, FaultPlan};
use scc_sim::SimTime;
use std::sync::Arc;

fn scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig {
        side: 6,
        spacing: 8.0,
        seed: 29,
    }))
}

fn arb_fault_config() -> impl Strategy<Value = FaultConfig> {
    (
        any::<u64>(),
        0.0..0.3f64,
        0.0..0.3f64,
        0.0..0.3f64,
        1u64..500,
        0u32..6,
        0.1..1.0f64,
        proptest::collection::vec((0u8..48, 0u64..50, 1u64..50), 0..3),
    )
        .prop_map(
            |(seed, drop, corrupt, delay, max_delay_us, links, factor, stalls)| FaultConfig {
                seed,
                drop_rate: drop,
                corrupt_rate: corrupt,
                delay_rate: delay,
                max_delay: SimTime::from_us(max_delay_us),
                degraded_links: links,
                degrade_factor: factor,
                stalls: stalls
                    .into_iter()
                    .map(|(core, at_ms, dur_ms)| CoreStall {
                        core,
                        at: SimTime::from_ms(at_ms),
                        duration: SimTime::from_ms(dur_ms),
                    })
                    .collect(),
                kills: Vec::new(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn same_seed_means_same_schedule(
        cfg in arb_fault_config(),
        probes in proptest::collection::vec((0u64..48, 0u64..48, 0u64..1000, 0u32..4), 1..20),
    ) {
        let a = FaultPlan::new(cfg.clone());
        let b = FaultPlan::new(cfg);
        prop_assert_eq!(a.schedule_digest(512), b.schedule_digest(512));
        for (from, to, seq, attempt) in probes {
            prop_assert_eq!(
                a.message_outcome(from, to, seq, attempt),
                b.message_outcome(from, to, seq, attempt)
            );
        }
    }

    #[test]
    fn codec_catches_every_single_byte_mutation(
        w in 1u32..8,
        h in 1u32..6,
        fill in proptest::collection::vec(any::<u8>(), 1..64),
        victim in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let mut raw = vec![0u8; (w * h * 4) as usize];
        for (i, b) in raw.iter_mut().enumerate() {
            *b = fill[i % fill.len()];
        }
        let frame = Frame {
            id: 3,
            strip: StripInfo { index: 0, count: 1, y0: 0, height: h, full_height: h },
            full_width: w,
            image: Some(Image::from_raw(w, h, raw)),
        };
        let wire = encode_frame(&frame);
        // Clean round-trip.
        let back = decode_frame_checked(wire.clone(), 0).expect("clean decode");
        prop_assert_eq!(back.image.unwrap(), frame.image.clone().unwrap());
        // Any single flipped byte — header, payload or the CRC field
        // itself — must be rejected.
        let mut mutated = wire.to_vec();
        let at = (victim % mutated.len() as u64) as usize;
        mutated[at] ^= xor;
        prop_assert!(
            decode_frame_checked(bytes::Bytes::from(mutated), 0).is_err(),
            "mutation at byte {} (of {}) slipped through", at, wire.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case runs two full (small) pipelines
        ..ProptestConfig::default()
    })]

    #[test]
    fn single_stage_failure_never_loses_a_frame(
        pipelines in 2u32..5,
        victim_stage in 0u32..5,
        victim_pipeline_pick in 0u32..64,
        at_ms in 0u64..3,
        retry_budget in 1u32..4,
        frames in 1u64..4,
    ) {
        let victim_pipeline = victim_pipeline_pick % pipelines;
        let cfg = RunConfig::builder()
            .pipelines(pipelines)
            .size(40, 40)
            .frames(frames)
            .seed(31)
            .fidelity(Fidelity::Full)
            .fault(FaultSpec {
                retry_budget,
                stall: Some(StallSpec {
                    pipeline: victim_pipeline,
                    stage: victim_stage,
                    at_ms,
                    for_ms: u64::MAX,
                }),
                ..FaultSpec::default()
            })
            .build()
            .expect("valid config");
        let mut clean = cfg.clone();
        clean.fault = None;
        let want: Vec<u64> = reference_frames(&clean, scene())
            .iter()
            .map(frame_checksum)
            .collect();
        let report = SimRunner::new(cfg, scene()).run();
        let got: Vec<u64> = report
            .outputs
            .expect("full fidelity")
            .iter()
            .map(frame_checksum)
            .collect();
        prop_assert_eq!(got, want, "a frame was lost or damaged");
        // With a late-starting stall and a very short walkthrough the run
        // can finish before the core ever dies; a stall from t=0 is always
        // hit.
        if at_ms == 0 {
            prop_assert!(
                !report.degradations.is_empty(),
                "a permanently stalled stage must be failed over"
            );
            prop_assert_eq!(report.degradations[0].pipeline, victim_pipeline);
        }
    }

    /// The native runner under message faults, with arbitrary host tuning
    /// (chunked kernels, buffer pool on/off): retransmission recovers
    /// every frame and the tuning stays invisible in the pixels. No
    /// wall-clock assumptions — only delivered bytes are asserted.
    #[test]
    fn native_faults_with_any_tuning_never_lose_a_frame(
        kernel_threads in 1u32..5,
        buffer_pool in any::<bool>(),
        drop_pct in 0u32..4,
        frames in 1u64..3,
        seed in 0u64..1000,
    ) {
        let cfg = RunConfig::builder()
            .pipelines(2)
            .size(40, 40)
            .frames(frames)
            .seed(seed)
            .fidelity(Fidelity::Full)
            .fault(FaultSpec {
                drop_rate: drop_pct as f64 / 100.0,
                corrupt_rate: 0.01,
                timeout_us: 100_000,
                retry_budget: 5,
                ..FaultSpec::default()
            })
            .tuning(NativeTuning { kernel_threads, buffer_pool, ..NativeTuning::default() })
            .build()
            .expect("valid config");
        let mut clean = cfg.clone();
        clean.fault = None;
        let want: Vec<u64> = reference_frames(&clean, scene())
            .iter()
            .map(frame_checksum)
            .collect();
        let report = run_native(&cfg, scene());
        let got: Vec<u64> = report.frames.iter().map(frame_checksum).collect();
        prop_assert_eq!(got, want, "native lost or damaged a frame");
    }
}
