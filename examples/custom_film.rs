//! Using the crates as a library, outside the fixed paper pipeline:
//! load a scene from Wavefront OBJ text, render a short walkthrough and
//! grade it with a *custom* filter chain — including the paper's proposed
//! extension, scratches of arbitrary orientation and length (§IV: "the
//! system can be easily extended to allow scratches of arbitrary
//! orientation and length").
//!
//! ```sh
//! cargo run --release -p scc-core --example custom_film [out_dir]
//! ```

use scc_filters::{Blur, Flicker, FrameCtx, Image, ImageFilter, OrientedScratch, Sepia};
use scc_render::{Renderer, Scene, Walkthrough};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Generate OBJ text for a small "monument valley": a ground plane and a
/// ring of simple ziggurats. (Stands in for a user-supplied model.)
fn monument_obj() -> String {
    let mut obj =
        String::from("o ground\nv -60 0 -60\nv 60 0 -60\nv 60 0 60\nv -60 0 60\nf 1 2 3 4\n");
    let mut v = 4; // vertices emitted so far
    for k in 0..8 {
        let ang = k as f32 * std::f32::consts::TAU / 8.0;
        let (cx, cz) = (28.0 * ang.cos(), 28.0 * ang.sin());
        let _ = writeln!(obj, "o ziggurat{k}");
        // Three stacked, shrinking boxes.
        let mut y = 0.0f32;
        for (half, h) in [(5.0, 6.0), (3.5, 5.0), (2.0, 7.0)] {
            let (x0, x1) = (cx - half, cx + half);
            let (z0, z1) = (cz - half, cz + half);
            let (y0, y1) = (y, y + h);
            for (x, yy, z) in [
                (x0, y0, z0),
                (x1, y0, z0),
                (x1, y1, z0),
                (x0, y1, z0),
                (x0, y0, z1),
                (x1, y0, z1),
                (x1, y1, z1),
                (x0, y1, z1),
            ] {
                let _ = writeln!(obj, "v {x} {yy} {z}");
            }
            // Quads referencing the 8 vertices just pushed.
            for q in [
                [1, 2, 3, 4],
                [5, 8, 7, 6],
                [1, 5, 6, 2],
                [4, 3, 7, 8],
                [1, 4, 8, 5],
                [2, 6, 7, 3],
            ] {
                let _ = writeln!(obj, "f {} {} {} {}", v + q[0], v + q[1], v + q[2], v + q[3]);
            }
            v += 8;
            y = y1;
        }
    }
    obj
}

fn write_ppm(img: &Image, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "P6\n{} {}\n255", img.width(), img.height())?;
    let mut buf = Vec::with_capacity(img.pixel_count() as usize * 3);
    for px in img.as_bytes().chunks_exact(4) {
        buf.extend_from_slice(&px[..3]);
    }
    f.write_all(&buf)
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/custom_film".into());
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let scene = Scene::from_obj(&monument_obj()).expect("valid OBJ");
    println!("loaded {} triangles from OBJ", scene.triangle_count());
    let renderer = Renderer::new(Arc::new(scene));
    let walkthrough = Walkthrough::standard(320.0 / 240.0);

    // A custom grade: sepia, heavier blur, tilted scratches, flicker.
    let chain: Vec<Box<dyn ImageFilter>> = vec![
        Box::new(Sepia),
        Box::new(Blur::new(2)),
        Box::new(OrientedScratch {
            max_scratches: 5,
            max_tilt: 0.5,
            length_range: (0.3, 0.9),
        }),
        Box::new(Flicker { amplitude: 0.08 }),
    ];

    for frame in (0..32u64).step_by(8) {
        let cam = walkthrough.camera(frame * 12);
        let (mut img, stats) = renderer.render_full(&cam, 320, 240);
        let ctx = FrameCtx::whole_frame(frame, 1925, 320, 240);
        for f in &chain {
            f.apply(&mut img, &ctx);
        }
        let path = Path::new(&out_dir).join(format!("frame_{frame:02}.ppm"));
        write_ppm(&img, &path).expect("write frame");
        println!(
            "frame {frame}: {} triangles drawn, {} pixels -> {}",
            stats.raster.triangles_filled,
            stats.raster.pixels_written,
            path.display()
        );
    }
    println!(
        "\ncustom chain: {}",
        chain
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(" -> ")
    );
}
