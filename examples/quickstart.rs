//! Quickstart: simulate a parallel macro pipeline on the SCC and print the
//! walkthrough report.
//!
//! ```sh
//! cargo run --release -p scc-core --example quickstart
//! ```

use scc_core::{run, Backend, BackendReport, RunConfig};
use scc_telemetry::names;

fn main() {
    // The paper's standard workload: a 400-frame walkthrough of a city
    // scene, 400x400 pixels per frame, three parallel pipelines fed by a
    // single render core on the chip.
    let config = RunConfig::builder()
        .pipelines(3)
        .seed(7)
        .telemetry(true)
        .build()
        .expect("valid config");
    println!(
        "running {} frames through {} pipelines...",
        config.frames, config.pipelines
    );

    let outcome = run(&config, Backend::Sim);
    let BackendReport::Sim(report) = &outcome.report else {
        unreachable!("sim backend returns a sim report");
    };

    println!(
        "\nwalkthrough time : {:8.1} virtual seconds",
        outcome.total_secs
    );
    println!(
        "speed-up vs core : {:8.2}x  (382 s single-core baseline)",
        report.speedup_vs(382.0)
    );
    println!("mean SCC power   : {:8.1} W", report.mean_power());
    println!("SCC energy       : {:8.0} J", report.scc_energy_joules);
    println!("\nper-stage busy time / utilisation:");
    for s in &outcome.stage_reports {
        println!(
            "  {:<9} pipeline {:<4} core {:>2}   busy {:>7.1}s  ({:4.0}%)",
            s.kind.name(),
            s.pipeline
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            s.core_id,
            s.busy_secs,
            100.0 * s.busy_secs / outcome.total_secs
        );
    }
    println!(
        "\nmesh traffic {:.1} MB, DRAM traffic {:.1} MB, controller imbalance {:.2}",
        report.platform.noc_bytes as f64 / 1e6,
        report.platform.mem_bytes as f64 / 1e6,
        report.platform.mem_imbalance
    );

    // The same numbers are live metrics: the run carried a telemetry
    // snapshot (scrapeable as Prometheus text or JSON).
    let snap = outcome.telemetry.as_ref().expect("telemetry was enabled");
    println!(
        "\ntelemetry: {} metric families, {} events recorded",
        snap.metric_count(),
        snap.events.len()
    );
    if let Some(frames) = snap.counter(names::FRAMES_TOTAL, &[]) {
        println!("  {} = {}", names::FRAMES_TOTAL, frames.value);
    }
}
