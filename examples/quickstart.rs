//! Quickstart: simulate a parallel macro pipeline on the SCC and print the
//! walkthrough report.
//!
//! ```sh
//! cargo run --release -p scc-core --example quickstart
//! ```

use scc_core::{Arrangement, Fidelity, RendererMode, RunConfig, SimRunner};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn main() {
    // The paper's standard workload: a 400-frame walkthrough of a city
    // scene, 400x400 pixels per frame, three parallel pipelines fed by a
    // single render core on the chip.
    let config = RunConfig {
        renderer: RendererMode::SingleRenderer,
        arrangement: Arrangement::Ordered,
        pipelines: 3,
        width: 400,
        height: 400,
        frames: 400,
        seed: 7,
        fidelity: Fidelity::TimingOnly,
        trace: false,
        verify: false,
        fault: None,
        tuning: scc_core::NativeTuning::default(),
    };
    let scene = Arc::new(Scene::city(CityConfig::default()));
    println!(
        "scene: {} triangles; running {} frames through {} pipelines...",
        scene.triangle_count(),
        config.frames,
        config.pipelines
    );

    let report = SimRunner::new(config, scene).run();

    println!(
        "\nwalkthrough time : {:8.1} virtual seconds",
        report.total_secs
    );
    println!(
        "speed-up vs core : {:8.2}x  (382 s single-core baseline)",
        report.speedup_vs(382.0)
    );
    println!("mean SCC power   : {:8.1} W", report.mean_power());
    println!("SCC energy       : {:8.0} J", report.scc_energy_joules);
    println!("\nper-stage busy time / utilisation:");
    for s in &report.stage_reports {
        println!(
            "  {:<9} pipeline {:<4} core {:>2}   busy {:>7.1}s  ({:4.0}%)",
            s.kind.name(),
            s.pipeline
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            s.core_id,
            s.busy_secs,
            100.0 * s.busy_secs / report.total_secs
        );
    }
    println!(
        "\nmesh traffic {:.1} MB, DRAM traffic {:.1} MB, controller imbalance {:.2}",
        report.platform.noc_bytes as f64 / 1e6,
        report.platform.mem_bytes as f64 / 1e6,
        report.platform.mem_imbalance
    );
}
