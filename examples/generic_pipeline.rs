//! Macro pipelining beyond rendering: the paper's §I claim ("the ideas
//! ... should easily translate to other problem domains") exercised on a
//! stream-processing workload — parse → compress → encrypt → checksum —
//! using the generic pipeline API on the simulated SCC.
//!
//! ```sh
//! cargo run --release -p scc-core --example generic_pipeline
//! ```

use scc_core::generic::{run_generic_chain, FnStage, MacroStage, StageWork};
use scc_core::Arrangement;
use scc_sim::{SccConfig, SccPlatform};

fn chain() -> Vec<Box<dyn MacroStage>> {
    // Per-item costs in P54C cycles per input byte, loosely modelled on
    // real software: parsing ~12 c/B, LZ-style compression ~90 c/B (the
    // bottleneck, like blur in the paper), a 3x reduction in payload,
    // encryption ~25 c/B, checksum ~4 c/B.
    vec![
        Box::new(FnStage {
            label: "parse".into(),
            f: |_, inb| StageWork {
                cycles: 12.0 * inb as f64,
                read_bytes: 0,
                write_bytes: 0,
                out_bytes: inb,
            },
        }),
        Box::new(FnStage {
            label: "compress".into(),
            f: |_, inb| StageWork {
                cycles: 90.0 * inb as f64,
                read_bytes: inb, // dictionary lookbacks
                write_bytes: 0,
                out_bytes: inb / 3,
            },
        }),
        Box::new(FnStage {
            label: "encrypt".into(),
            f: |_, inb| StageWork {
                cycles: 25.0 * inb as f64,
                read_bytes: 0,
                write_bytes: 0,
                out_bytes: inb,
            },
        }),
        Box::new(FnStage {
            label: "checksum".into(),
            f: |_, inb| StageWork {
                cycles: 4.0 * inb as f64,
                read_bytes: 0,
                write_bytes: 0,
                out_bytes: inb + 8,
            },
        }),
    ]
}

fn main() {
    let items = 400u64;
    let block = 256 * 1024u64;
    println!(
        "stream pipeline: 400 blocks of 256 KiB through parse -> compress -> encrypt -> checksum\n"
    );

    let mut stages = chain();
    let report = run_generic_chain(
        SccPlatform::new(SccConfig::default()),
        &mut stages,
        Arrangement::Ordered,
        items,
        block,
    );

    println!(
        "total {:.1} virtual seconds, throughput {:.1} blocks/s ({:.1} MB/s in), {:.1} W mean",
        report.total_secs,
        report.throughput(),
        report.throughput() * block as f64 / 1e6,
        report.mean_power
    );
    println!("\nper-stage (same structure as the paper's Figure 15):");
    for s in &report.stages {
        let idle = s.idle_ms.map(|q| q.median).unwrap_or(0.0);
        println!(
            "  {:<9} core {:>2}  utilisation {:>4.0}%  median wait {:>7.2} ms",
            s.name,
            s.core_id,
            s.utilisation * 100.0,
            idle
        );
    }
    println!("\nAs in the rendering case study, throughput locks to the most");
    println!("expensive stage (compress), every other stage spends its time");
    println!("waiting, and the shape is independent of core placement.");
}
