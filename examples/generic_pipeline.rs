//! Macro pipelining beyond rendering: the paper's §I claim ("the ideas
//! ... should easily translate to other problem domains") exercised on a
//! stream-processing workload — parse → compress → encrypt → checksum —
//! declared as a [`scc_core::GenericChainSpec`] and run through the
//! unified workload plane ([`scc_core::run`]), so the same spec gets the
//! power plane, telemetry, invariant checking, and both virtual-time
//! backends for free.
//!
//! ```sh
//! cargo run --release -p scc-core --example generic_pipeline
//! ```

use scc_core::{run, Backend, BackendReport, GenericChainSpec, GenericStageSpec, RunConfig,
    Workload};

fn spec() -> GenericChainSpec {
    // Per-item costs in P54C cycles per input byte, loosely modelled on
    // real software: parsing ~12 c/B, LZ-style compression ~90 c/B (the
    // bottleneck, like blur in the paper) with a 3x payload reduction,
    // encryption ~25 c/B, checksum ~4 c/B.
    GenericChainSpec {
        stages: vec![
            GenericStageSpec::compute("parse", 12.0),
            GenericStageSpec {
                read_factor: 1.0, // dictionary lookbacks
                out_factor: 1.0 / 3.0,
                ..GenericStageSpec::compute("compress", 90.0)
            },
            GenericStageSpec::compute("encrypt", 25.0),
            GenericStageSpec::compute("checksum", 4.0),
        ],
        items: 400,
        source_bytes: 256 * 1024,
    }
}

fn main() {
    let block = 256 * 1024u64;
    println!(
        "stream pipeline: 400 blocks of 256 KiB through parse -> compress -> encrypt -> checksum\n"
    );

    let cfg = RunConfig::builder()
        .workload(Workload::Generic(spec()))
        .verify(true)
        .build()
        .expect("valid config");
    let outcome = run(&cfg, Backend::Sim);
    let BackendReport::Generic(report) = &outcome.report else {
        unreachable!("workload runs return the generic report");
    };

    println!(
        "total {:.1} virtual seconds, throughput {:.1} blocks/s ({:.1} MB/s in), {:.1} W mean",
        report.total_secs,
        report.throughput(),
        report.throughput() * block as f64 / 1e6,
        report.mean_power
    );
    println!("\nper-stage (same structure as the paper's Figure 15):");
    for s in &report.stages {
        let idle = s.idle_ms.map(|q| q.median).unwrap_or(0.0);
        println!(
            "  {:<9} core {:>2}  utilisation {:>4.0}%  median wait {:>7.2} ms",
            s.name,
            s.core_id,
            s.utilisation * 100.0,
            idle
        );
    }

    // The same spec on the event-driven cross-validator: independent
    // scheduler, same chain, same output fingerprint.
    let des = run(&cfg, Backend::Des);
    let BackendReport::Generic(des_report) = &des.report else {
        unreachable!()
    };
    assert_eq!(des_report.output_digest, report.output_digest);
    println!(
        "\ncross-check: DES backend finishes in {:.1}s ({:+.2}% vs sim), identical output digest",
        des_report.total_secs,
        (des_report.total_secs / report.total_secs - 1.0) * 100.0
    );

    println!("\nAs in the rendering case study, throughput locks to the most");
    println!("expensive stage (compress), every other stage spends its time");
    println!("waiting, and the shape is independent of core placement.");
}
