//! Produce actual silent-film frames with the *native* (real threads +
//! RCCE-style channels) pipeline and write a few of them as PPM files.
//!
//! ```sh
//! cargo run --release -p scc-core --example silent_film [out_dir]
//! ```

use scc_core::{run, Backend, BackendReport, Fidelity, RunConfig};
use scc_filters::Image;
use std::io::Write;
use std::path::Path;

fn write_ppm(img: &Image, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "P6\n{} {}\n255", img.width(), img.height())?;
    let mut buf = Vec::with_capacity(img.pixel_count() as usize * 3);
    for px in img.as_bytes().chunks_exact(4) {
        buf.extend_from_slice(&px[..3]);
    }
    f.write_all(&buf)
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/silent_film".into());
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let config = RunConfig::builder()
        .pipelines(4)
        .size(320, 240)
        .frames(48)
        .seed(1913) // a properly vintage year
        .fidelity(Fidelity::Full)
        .build()
        .expect("valid config");
    println!(
        "rendering {} frames at {}x{} through 4 parallel pipelines (native threads)...",
        config.frames, config.width, config.height
    );
    let outcome = run(&config, Backend::Native);
    let BackendReport::Native(report) = &outcome.report else {
        unreachable!("native backend returns a native report");
    };
    println!(
        "done in {:.2?} wall time ({:.1} frames/s)",
        report.wall,
        config.frames as f64 / report.wall.as_secs_f64()
    );

    for (i, frame) in report.frames.iter().enumerate().step_by(8) {
        let path = Path::new(&out_dir).join(format!("frame_{i:03}.ppm"));
        write_ppm(frame, &path).expect("write frame");
        println!("wrote {}", path.display());
    }
    println!("\nper-stage median wait for input (the Figure 15 quantity):");
    for (kind, pl, q) in &report.idle_ms {
        if let Some(q) = q {
            println!(
                "  {:<9} pipeline {}  median {:>7.2} ms",
                kind.name(),
                pl,
                q.median
            );
        }
    }
}
