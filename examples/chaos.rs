//! Chaos run: the silent-film pipeline under deterministic fault
//! injection — dropped and corrupted messages, a degraded mesh link, and
//! one filter core stalled forever — demonstrating that the retry
//! protocol and graceful pipeline degradation still deliver every frame.
//! A second act fail-stops a core outright and lets the self-healing
//! supervisor detect it over the heartbeat stream, migrate the stage to a
//! spare core, and replay the checkpointed strip.
//!
//! ```sh
//! cargo run --release -p scc-core --example chaos
//! ```

use scc_core::{
    default_scene, run_with_scene, Backend, BackendReport, FaultSpec, Fidelity, KillSpec,
    RunConfig, StallSpec, WalkthroughReport,
};
use std::sync::Arc;

/// Run `cfg` on the sim backend and unwrap the full walkthrough report.
fn simulate(cfg: &RunConfig, scene: Arc<scc_render::Scene>) -> WalkthroughReport {
    match run_with_scene(cfg, Backend::Sim, scene).report {
        BackendReport::Sim(report) => report,
        _ => unreachable!("sim backend returns a sim report"),
    }
}

/// Count the chaotic run's frames that are bit-identical to the clean
/// run's, and insist all of them are.
fn assert_film_intact(clean: &WalkthroughReport, chaotic: &WalkthroughReport) {
    let clean_frames = clean.outputs.as_ref().expect("full fidelity");
    let chaos_frames = chaotic.outputs.as_ref().expect("full fidelity");
    let intact = clean_frames
        .iter()
        .zip(chaos_frames)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "frames delivered  : {}/{} ({} bit-identical to the clean run)",
        chaos_frames.len(),
        clean_frames.len(),
        intact
    );
    assert_eq!(intact, clean_frames.len(), "a frame was damaged or lost");
}

fn main() {
    let clean = RunConfig::builder()
        .pipelines(3)
        .size(200, 200)
        .frames(48)
        .seed(7)
        .fidelity(Fidelity::Full)
        .build()
        .expect("valid config");
    let chaotic = RunConfig::builder()
        .pipelines(3)
        .size(200, 200)
        .frames(48)
        .seed(7)
        .fidelity(Fidelity::Full)
        .fault(FaultSpec {
            seed: 0xC1A05,
            drop_rate: 0.01,
            corrupt_rate: 0.005,
            delay_rate: 0.05,
            degraded_links: 2,
            degrade_factor: 0.5,
            // Pipeline 1's scratch core dies 100 virtual ms into the run.
            stall: Some(StallSpec {
                pipeline: 1,
                stage: 2,
                at_ms: 100,
                for_ms: u64::MAX,
            }),
            ..FaultSpec::default()
        })
        .build()
        .expect("valid config");

    let scene = default_scene();
    println!(
        "running {} frames twice: clean, then with injected faults...",
        clean.frames
    );
    let baseline = simulate(&clean, Arc::clone(&scene));
    let report = simulate(&chaotic, Arc::clone(&scene));

    println!(
        "\nclean walkthrough : {:8.2} virtual seconds",
        baseline.total_secs
    );
    println!(
        "chaos walkthrough : {:8.2} virtual seconds",
        report.total_secs
    );

    println!("\ndegradation events:");
    for d in &report.degradations {
        println!(
            "  frame {:>3}  t={:8.3}s  pipeline {} -> {}  ({})",
            d.frame, d.at_secs, d.pipeline, d.reassigned_to, d.reason
        );
    }
    if report.degradations.is_empty() {
        println!("  (none — faults were absorbed by retries alone)");
    }
    assert_film_intact(&baseline, &report);
    println!("every frame survived the chaos.");

    // ---- Act two: fail-stop + self-healing recovery ------------------
    // Pipeline 1's blur core is killed outright mid-run. The supervisor
    // on the MCPC notices the heartbeat silence, provisions a spare core
    // over the host link, and the upstream stage replays its
    // checkpointed strip — no graceful degradation, no pixel lost.
    let mut supervised = clean;
    supervised.fault = Some(FaultSpec {
        kills: vec![KillSpec {
            pipeline: 1,
            stage: 1,
            at_ms: 50,
        }],
        heartbeat_period_us: 10_000,
        phi_dead: 3.0,
        ..FaultSpec::default()
    });
    println!("\nkilling pipeline 1's blur core 50 ms in, supervisor armed...");
    let healed = simulate(&supervised, scene);
    println!(
        "healed walkthrough: {:8.2} virtual seconds",
        healed.total_secs
    );

    println!("\nrecovery timeline:");
    for r in &healed.recoveries {
        println!(
            "  frame {:>3}  {:?} core {:>2} killed   t={:8.3}s",
            r.frame, r.stage, r.failed_core, r.killed_at_secs
        );
        println!(
            "             heartbeat silence detected  t={:8.3}s",
            r.detected_at_secs
        );
        println!(
            "             migrated to spare core {:>2}, {} strip(s) replayed",
            r.migration_target, r.frames_replayed
        );
        println!(
            "             pipeline resumed           t={:8.3}s  (MTTR {:.1} ms)",
            r.resumed_at_secs,
            r.mttr_secs * 1e3
        );
    }
    assert!(
        !healed.recoveries.is_empty(),
        "the supervisor must observe the kill"
    );
    assert!(
        healed.degradations.is_empty(),
        "a spare was available: no degradation fallback expected"
    );
    assert_film_intact(&baseline, &healed);
    println!("the kill was healed in place — the film never noticed.");
}
