//! Chaos run: the silent-film pipeline under deterministic fault
//! injection — dropped and corrupted messages, a degraded mesh link, and
//! one filter core stalled forever — demonstrating that the retry
//! protocol and graceful pipeline degradation still deliver every frame.
//!
//! ```sh
//! cargo run --release -p scc-core --example chaos
//! ```

use scc_core::{Arrangement, FaultSpec, Fidelity, RendererMode, RunConfig, SimRunner, StallSpec};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn main() {
    let clean = RunConfig {
        renderer: RendererMode::SingleRenderer,
        arrangement: Arrangement::Ordered,
        pipelines: 3,
        width: 200,
        height: 200,
        frames: 48,
        seed: 7,
        fidelity: Fidelity::Full,
        trace: false,
        fault: None,
        tuning: scc_core::NativeTuning::default(),
    };
    let mut chaotic = clean.clone();
    chaotic.fault = Some(FaultSpec {
        seed: 0xC1A05,
        drop_rate: 0.01,
        corrupt_rate: 0.005,
        delay_rate: 0.05,
        degraded_links: 2,
        degrade_factor: 0.5,
        // Pipeline 1's scratch core dies 100 virtual ms into the run.
        stall: Some(StallSpec {
            pipeline: 1,
            stage: 2,
            at_ms: 100,
            for_ms: u64::MAX,
        }),
        ..FaultSpec::default()
    });

    let scene = Arc::new(Scene::city(CityConfig::default()));
    println!(
        "running {} frames twice: clean, then with injected faults...",
        clean.frames
    );
    let baseline = SimRunner::new(clean, Arc::clone(&scene)).run();
    let report = SimRunner::new(chaotic, scene).run();

    println!(
        "\nclean walkthrough : {:8.2} virtual seconds",
        baseline.total_secs
    );
    println!(
        "chaos walkthrough : {:8.2} virtual seconds",
        report.total_secs
    );

    println!("\ndegradation events:");
    for d in &report.degradations {
        println!(
            "  frame {:>3}  t={:8.3}s  pipeline {} -> {}  ({})",
            d.frame, d.at_secs, d.pipeline, d.reassigned_to, d.reason
        );
    }
    if report.degradations.is_empty() {
        println!("  (none — faults were absorbed by retries alone)");
    }

    let clean_frames = baseline.outputs.expect("full fidelity");
    let chaos_frames = report.outputs.expect("full fidelity");
    let intact = clean_frames
        .iter()
        .zip(&chaos_frames)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "\nframes delivered  : {}/{} ({} bit-identical to the clean run)",
        chaos_frames.len(),
        clean_frames.len(),
        intact
    );
    assert_eq!(intact, clean_frames.len(), "a frame was damaged or lost");
    println!("every frame survived the chaos.");
}
