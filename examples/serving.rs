//! Serving many viewers from one pipeline pool.
//!
//! Two tenants — a heavy "kiosk" fleet and a light "vip" tier — stream
//! overlapping walkthrough windows. The strip cache renders each pose
//! once no matter how many viewers request it; admission control keeps
//! the kiosk fleet from starving the vip tier; and every refused session
//! is a recorded shed, never a silent drop.
//!
//! Run with: `cargo run --release --example serving`

use scc_core::RunConfig;
use scc_serve::{serve_default, ServeConfig, TenantSpec};

fn main() {
    let cfg = ServeConfig {
        run: RunConfig::builder()
            .size(96, 64)
            .pipelines(2)
            .seed(11)
            .verify(true)
            .telemetry(true)
            .build()
            .expect("valid run config"),
        tenants: vec![
            TenantSpec::new("kiosk", 1, 24, 6),
            TenantSpec::new("vip", 3, 4, 6),
        ],
        shards: 2,
        pool: 4,
        cache_capacity: 128,
        cache_buckets: 64,
        queue_depth: 6,
        max_sessions: 16,
        batch_frames: 6,
        pose_span: 8,
        arrival_burst: 6,
        seed: 0xC0FFEE,
        keep_films: false,
    };

    let out = serve_default(&cfg);
    let r = &out.report;
    println!("sessions: admitted={} completed={} shed={}", r.admitted, r.completed, r.shed);
    println!(
        "frames: {} served, {} unique renders, cache hit ratio {:.1}%",
        r.frames_served,
        r.unique_renders,
        100.0 * r.cache.hit_ratio()
    );
    println!(
        "throughput: {:.1} sessions/s, frame latency p50={:.1}ms p99={:.1}ms",
        r.sessions_per_sec,
        r.latency.p50 * 1e3,
        r.latency.p99 * 1e3
    );
    for t in &r.per_tenant {
        println!(
            "tenant {:<6} weight={} offered={} shed={} frames={} max-queue={}",
            t.name, t.weight, t.offered, t.shed, t.frames_completed, t.max_queue_depth
        );
    }
    for e in r.shed_events.iter().take(3) {
        println!("shed example: session {} of tenant {} ({})", e.session, e.tenant, e.reason.name());
    }
    assert_eq!(r.completed + r.shed, r.admitted, "ledger balances");
}
