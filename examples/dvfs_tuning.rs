//! The §VI-D experiment: accelerate the blur stage to 800 MHz, then claw
//! the power back by undervolting the downstream island to 400 MHz/0.7 V
//! (Figures 16–18).
//!
//! ```sh
//! cargo run --release -p scc-core --example dvfs_tuning
//! ```

use scc_core::runner::sim::DvfsPlan;
use scc_core::{
    default_scene, place_dvfs_single_pipeline, CostModel, RendererMode, RunConfig, SimRunner,
};
use scc_sim::{FreqMHz, IslandId, SccConfig, SccPlatform};
use std::sync::Arc;

fn main() {
    // DVFS plans are a sim-backend-specific knob, so this example stays
    // on `SimRunner::with_parts` rather than the `scc_core::run` facade.
    let scene = default_scene();
    let config = RunConfig::builder()
        .renderer(RendererMode::McpcRenderer)
        .pipelines(1)
        .build()
        .expect("valid config");
    // Island-aware placement (Figure 18): blur alone in its voltage
    // island, the post-blur stages together in another.
    let placement = place_dvfs_single_pipeline(RendererMode::McpcRenderer);
    let blur = placement.pipelines[0][1];
    let downstream_island = IslandId::of_tile(placement.pipelines[0][2].tile());

    let variants: Vec<(&str, Vec<(scc_sim::CoreId, FreqMHz)>)> = vec![
        ("all stages at 533 MHz", vec![]),
        ("blur tile at 800 MHz", vec![(blur, FreqMHz::F800)]),
        ("blur 800 MHz + downstream island 400 MHz", {
            let mut v = vec![(blur, FreqMHz::F800)];
            for tile in downstream_island.tiles() {
                v.push((tile.cores()[0], FreqMHz::F400));
            }
            v
        }),
    ];

    println!(
        "{:<44} {:>10} {:>10} {:>10}",
        "variant", "time", "power", "energy"
    );
    for (label, settings) in variants {
        let r = SimRunner::with_parts(
            config.clone(),
            Arc::clone(&scene),
            placement.clone(),
            SccPlatform::new(SccConfig::default()),
            CostModel::default(),
            DvfsPlan { settings },
        )
        .run();
        println!(
            "{:<44} {:>9.1}s {:>8.1} W {:>8.0} J",
            label,
            r.total_secs,
            r.mean_power(),
            r.scc_energy_joules
        );
    }
    println!("\nAccelerating only the bottleneck stage buys ~30% runtime for ~4.5 W;");
    println!("undervolting the downstream island recovers the power at no time cost.");
}
