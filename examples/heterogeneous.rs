//! Compare the paper's three renderer configurations (§V): one SCC
//! renderer, one renderer per pipeline, and the heterogeneous MCPC-fed
//! setup — over a sweep of pipeline counts.
//!
//! ```sh
//! cargo run --release -p scc-core --example heterogeneous
//! ```

use scc_core::{Arrangement, RendererMode, RunConfig, SimRunner};
use scc_render::{CityConfig, Scene};
use scc_sim::power::McpcPower;
use std::sync::Arc;

fn main() {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let mcpc = McpcPower::default();
    println!(
        "{:<16} {:>4} {:>10} {:>10} {:>12}",
        "configuration", "pl.", "time", "power", "energy"
    );
    for mode in [
        RendererMode::SingleRenderer,
        RendererMode::PerPipelineRenderer,
        RendererMode::McpcRenderer,
    ] {
        for p in [1u32, 3, 5, 7] {
            if p > mode.max_pipelines() {
                continue;
            }
            let config = RunConfig {
                renderer: mode,
                arrangement: Arrangement::Ordered,
                pipelines: p,
                ..RunConfig::default()
            };
            let r = SimRunner::new(config, Arc::clone(&scene)).run();
            println!(
                "{:<16} {:>4} {:>9.1}s {:>8.1} W {:>10.0} J",
                mode.name(),
                p,
                r.total_secs,
                r.mean_power(),
                r.active_energy_joules(&mcpc)
            );
        }
        println!();
    }
    println!("The hybrid MCPC+SCC setup wins on energy for long-running jobs (§VI-B).");
}
