//! Compare the paper's three renderer configurations (§V): one SCC
//! renderer, one renderer per pipeline, and the heterogeneous MCPC-fed
//! setup — over a sweep of pipeline counts.
//!
//! ```sh
//! cargo run --release -p scc-core --example heterogeneous
//! ```

use scc_core::{default_scene, run_with_scene, Backend, BackendReport, RendererMode, RunConfig};
use scc_sim::power::McpcPower;
use std::sync::Arc;

fn main() {
    let scene = default_scene();
    let mcpc = McpcPower::default();
    println!(
        "{:<16} {:>4} {:>10} {:>10} {:>12}",
        "configuration", "pl.", "time", "power", "energy"
    );
    for mode in [
        RendererMode::SingleRenderer,
        RendererMode::PerPipelineRenderer,
        RendererMode::McpcRenderer,
    ] {
        for p in [1u32, 3, 5, 7] {
            if p > mode.max_pipelines() {
                continue;
            }
            let config = RunConfig::builder()
                .renderer(mode)
                .pipelines(p)
                .build()
                .expect("valid config");
            let outcome = run_with_scene(&config, Backend::Sim, Arc::clone(&scene));
            let BackendReport::Sim(r) = &outcome.report else {
                unreachable!("sim backend returns a sim report");
            };
            println!(
                "{:<16} {:>4} {:>9.1}s {:>8.1} W {:>10.0} J",
                mode.name(),
                p,
                r.total_secs,
                r.mean_power(),
                r.active_energy_joules(&mcpc)
            );
        }
        println!();
    }
    println!("The hybrid MCPC+SCC setup wins on energy for long-running jobs (§VI-B).");
}
