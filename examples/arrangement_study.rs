//! Do the physical pipeline arrangements (unordered / ordered / flipped,
//! §IV-A) matter? The paper found they do not — the lack of core-local
//! memory makes every data handover a DRAM round-trip, so mesh adjacency
//! is irrelevant. Reproduce that finding.
//!
//! ```sh
//! cargo run --release -p scc-core --example arrangement_study
//! ```

use scc_core::{
    default_scene, place, run_with_scene, Arrangement, Backend, RendererMode, RunConfig,
};
use std::sync::Arc;

fn main() {
    let scene = default_scene();
    // Show where the stages land on the die for each arrangement
    // (R render, C connector, s/b/c/f/w the filter chain, T transfer).
    for arr in Arrangement::all() {
        println!("--- {} (3 pipelines, MCPC mode) ---", arr.name());
        println!("{}", place(RendererMode::McpcRenderer, arr, 3).ascii_map());
    }
    println!(
        "{:<14} {:>12} {:>12} {:>12}   (walkthrough seconds)",
        "pipelines", "unordered", "ordered", "flipped"
    );
    for p in [2u32, 4, 6] {
        let mut row = Vec::new();
        for arr in Arrangement::all() {
            let config = RunConfig::builder()
                .renderer(RendererMode::McpcRenderer)
                .arrangement(arr)
                .pipelines(p)
                .build()
                .expect("valid config");
            let r = run_with_scene(&config, Backend::Sim, Arc::clone(&scene));
            row.push(r.total_secs);
        }
        let spread = 100.0
            * (row.iter().cloned().fold(f64::MIN, f64::max)
                - row.iter().cloned().fold(f64::MAX, f64::min))
            / row[0];
        println!(
            "{:<14} {:>11.1}s {:>11.1}s {:>11.1}s   spread {:.1}%",
            p, row[0], row[1], row[2], spread
        );
    }
    println!("\nAs in the paper, the arrangement has no significant influence:");
    println!("every stage handover travels through a DRAM partition anyway.");
}
