//! Offline stand-in for the `proptest` property-testing harness.
//!
//! Reproduces the API surface this workspace uses — the `proptest!` macro
//! with optional `#![proptest_config(..)]`, range/tuple/`Just`/`any`
//! strategies, `prop::collection::vec`, `prop_map`/`prop_flat_map`,
//! `prop_oneof!` and the `prop_assert*` macros — on a deterministic runner:
//!
//! * The case stream derives from `PROPTEST_RNG_SEED` (env, default fixed)
//!   XOR a hash of the test's full path, so every test draws an independent
//!   but fully reproducible sequence and CI runs are byte-stable.
//! * `PROPTEST_CASES` (env) overrides the per-test case count.
//! * Before generating novel cases the runner replays seeds recorded in the
//!   sibling `<test-file>.proptest-regressions` file (`cc <hex>` lines, the
//!   real crate's on-disk convention); a failing case prints the `cc` line
//!   to append there.
//!
//! Shrinking is intentionally not implemented: a failure reports its seed
//! and the raw panic, which is sufficient for a deterministic suite.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there is no `ValueTree`/shrinking layer: a
    /// strategy maps an RNG state straight to a value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-typed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Types with a canonical "anything goes" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    // Blanket over `SampleUniform` (rather than one impl per numeric type)
    // so type inference can unify a range's element type with the generated
    // value's type, exactly as in the `rand` shim.
    impl<T: rand::SampleUniform + Clone> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform + Clone> Strategy for RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(S0.0);
    tuple_strategy!(S0.0, S1.1);
    tuple_strategy!(S0.0, S1.1, S2.2);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty collection size range");
            SizeRange { lo, hi }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len)` — a vector whose length is
    /// drawn from `len` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::path::{Path, PathBuf};

    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Base seed when `PROPTEST_RNG_SEED` is unset. CI pins the env var;
    /// local runs get the same stream by default anyway.
    const DEFAULT_BASE_SEED: u64 = 0x5CC0_DE5E_ED15_BA5E;

    /// Per-test case count when neither the config nor `PROPTEST_CASES`
    /// says otherwise. Deliberately below the real crate's 256: the suite
    /// runs unoptimised on small CI machines.
    const DEFAULT_CASES: u32 = 32;

    /// Mirror of `proptest::test_runner::Config` (the fields used here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of novel cases to run (regression seeds run in addition).
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_CASES);
            ProptestConfig {
                cases,
                max_shrink_iters: 0,
            }
        }
    }

    fn base_seed() -> u64 {
        match std::env::var("PROPTEST_RNG_SEED") {
            Ok(v) => parse_seed(&v).unwrap_or(DEFAULT_BASE_SEED),
            Err(_) => DEFAULT_BASE_SEED,
        }
    }

    fn parse_seed(v: &str) -> Option<u64> {
        let v = v.trim();
        if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            v.parse().ok()
        }
    }

    /// FNV-1a over the test path: stable across runs and platforms.
    fn hash_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn mix(a: u64, b: u64) -> u64 {
        let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Where the regression seeds for `source_file` live: a sibling file
    /// with the `.proptest-regressions` extension (real-crate convention).
    fn regressions_path(source_file: &str) -> PathBuf {
        Path::new(source_file).with_extension("proptest-regressions")
    }

    /// `file!()` paths are relative to wherever the crate was compiled
    /// from; try the likely roots (cwd of a test binary is the package
    /// manifest dir, which may sit below the workspace root).
    fn locate(rel: &Path) -> Option<PathBuf> {
        if rel.is_absolute() {
            return rel.exists().then(|| rel.to_path_buf());
        }
        let mut candidates = vec![rel.to_path_buf()];
        if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
            let base = PathBuf::from(dir);
            candidates.push(base.join(rel));
            candidates.push(base.join("..").join(rel));
            candidates.push(base.join("..").join("..").join(rel));
        }
        candidates.into_iter().find(|c| c.exists())
    }

    /// Fold a `cc` entry's hex blob (any length) into one u64 seed.
    fn fold_hex(hex: &str) -> Option<u64> {
        let digits: String = hex.chars().filter(|c| c.is_ascii_hexdigit()).collect();
        if digits.is_empty() {
            return None;
        }
        let mut acc = 0u64;
        let bytes = digits.as_bytes();
        for chunk in bytes.chunks(16) {
            let s = std::str::from_utf8(chunk).ok()?;
            acc ^= u64::from_str_radix(s, 16).ok()?;
        }
        Some(acc)
    }

    fn regression_seeds(source_file: &str) -> Vec<u64> {
        let rel = regressions_path(source_file);
        let Some(path) = locate(&rel) else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        let mut seeds = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("cc ") {
                let token = rest.split_whitespace().next().unwrap_or("");
                if let Some(seed) = fold_hex(token) {
                    seeds.push(seed);
                }
            }
        }
        seeds
    }

    /// Execute one property: replay recorded regression seeds, then run
    /// `config.cases` novel cases off the deterministic stream.
    pub fn run<F>(config: &ProptestConfig, name: &str, source_file: &str, body: F)
    where
        F: Fn(&mut TestRng),
    {
        use rand::SeedableRng;

        let base = mix(base_seed(), hash_name(name));
        let regressions = regression_seeds(source_file);
        let novel = (0..config.cases as u64).map(|i| mix(base, i));
        for (replayed, seed) in regressions
            .into_iter()
            .map(|s| (true, s))
            .chain(novel.map(|s| (false, s)))
        {
            let mut rng = TestRng::seed_from_u64(seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
            if let Err(payload) = outcome {
                let kind = if replayed { "regression" } else { "novel" };
                eprintln!("proptest: {name} failed on {kind} case with seed 0x{seed:016x}");
                if !replayed {
                    eprintln!(
                        "proptest: to replay first, append `cc {seed:016x}` to {}",
                        regressions_path(source_file).display()
                    );
                }
                resume_unwind(payload);
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strat,)+);
            $crate::test_runner::run(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                file!(),
                |__rng: &mut $crate::test_runner::TestRng| {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, __rng);
                    $body
                },
            );
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Mode {
        A,
        B,
        C,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -1.0f32..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(any::<u8>(), 2..9),
            fixed in prop::collection::vec(any::<bool>(), 5),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert_eq!(fixed.len(), 5);
        }

        #[test]
        fn oneof_maps_and_flat_maps_compose(
            m in prop_oneof![Just(Mode::A), Just(Mode::B), Just(Mode::C)],
            pair in (1u32..5, 1u32..5).prop_map(|(a, b)| (a, a + b)),
            sized in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u8..10, n)),
        ) {
            prop_assert!(matches!(m, Mode::A | Mode::B | Mode::C));
            prop_assert!(pair.1 > pair.0);
            prop_assert!(!sized.is_empty() && sized.len() < 4);
        }
    }

    #[test]
    fn same_name_same_stream() {
        use crate::strategy::Strategy;
        use crate::test_runner::{run, ProptestConfig};
        let cfg = ProptestConfig {
            cases: 8,
            ..ProptestConfig::default()
        };
        let collect = |out: &std::sync::Mutex<Vec<u64>>| {
            run(&cfg, "stream_test", file!(), |rng| {
                out.lock().unwrap().push((0u64..1_000_000).generate(rng));
            });
        };
        let a = std::sync::Mutex::new(Vec::new());
        let b = std::sync::Mutex::new(Vec::new());
        collect(&a);
        collect(&b);
        assert_eq!(*a.lock().unwrap(), *b.lock().unwrap());
    }
}
