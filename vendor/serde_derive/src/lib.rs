//! Offline stand-in for `serde_derive`.
//!
//! The repository never serialises through serde at runtime — the derives
//! are annotations only (report structs documenting their schema). This
//! proc-macro crate accepts the same derive syntax, including `#[serde]`
//! helper attributes, and emits an empty (no-op) trait-impl token stream so
//! the workspace builds in a registry-less environment.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; emits
/// nothing (the [`serde::Serialize`] marker trait has a blanket impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; emits
/// nothing (the [`serde::Deserialize`] marker trait has a blanket impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
