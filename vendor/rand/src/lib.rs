//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, sample_iter}` and
//! `distributions::Standard` — backed by a SplitMix64 stream. The workspace
//! only requires *internal* reproducibility (reference and runners must draw
//! identical values from identical seeds), never bit-compatibility with the
//! real crate, so a small high-quality mixer is sufficient.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator standing in for `rand::rngs::StdRng`.
    ///
    /// SplitMix64: the counter advances by the 64-bit golden ratio and each
    /// output is a finalising mix of the counter — full period, passes
    /// BigCrush, and two different seeds give uncorrelated streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// The `Standard` distribution: "any value of T, uniformly".
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 fraction bits -> uniform in [0, 1).
            (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 fraction bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Types `Rng::gen_range` can sample uniformly from a range.
///
/// The blanket `SampleRange` impls below are deliberately generic over one
/// `T: SampleUniform` (matching the real crate's shape) so that type
/// inference unifies the range's element type with the sampled value's type
/// before float-literal fallback kicks in.
pub trait SampleUniform: Sized {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty => $bits:expr, $denom:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> $bits) as $t / $denom as $t;
                let v = lo + (hi - lo) * unit;
                // Guard against rounding landing exactly on the excluded end.
                if v < hi { v } else { lo }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> $bits) as $t / ($denom - 1) as $t;
                (lo + (hi - lo) * unit).clamp(lo, hi)
            }
        }
    )*};
}
float_sample_uniform!(f32 => 40, (1u64 << 24), f64 => 11, (1u64 << 53));

/// A range (half-open or inclusive) that `Rng::gen_range` can sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Iterator over samples of a distribution, returned by `Rng::sample_iter`.
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<T>,
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: distributions::Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn sample_iter<T, D>(self, distr: D) -> DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        DistIter {
            distr,
            rng: self,
            _marker: PhantomData,
        }
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            let neg = rng.gen_range(-40f32..-2.0);
            assert!((-40.0..-2.0).contains(&neg));
            let u = rng.gen_range(0u8..=255);
            let _ = u;
        }
    }

    #[test]
    fn sample_iter_draws_from_the_stream() {
        let xs: Vec<u32> = StdRng::seed_from_u64(9)
            .sample_iter(crate::distributions::Standard)
            .take(4)
            .collect();
        let ys: Vec<u32> = StdRng::seed_from_u64(9)
            .sample_iter(crate::distributions::Standard)
            .take(4)
            .collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x != xs[0]), "stream should vary");
    }
}
