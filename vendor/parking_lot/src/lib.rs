//! Offline stand-in for the `parking_lot` API surface this workspace uses:
//! a `Mutex` whose `lock()` returns the guard directly (no poison `Result`).
//! Backed by `std::sync::Mutex`; poisoning is swallowed the way parking_lot
//! semantics do (a panicking holder does not wedge later lockers).

use std::fmt;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
