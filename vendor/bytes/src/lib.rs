//! Offline stand-in for the `bytes` crate API surface this workspace uses.
//!
//! [`Bytes`] is a cheaply clonable shared byte buffer with an internal read
//! cursor: the [`Buf`] getters consume from the front (big-endian, like the
//! real crate) and `len()`/`Deref` always reflect the *remaining* bytes.
//! [`BytesMut`] is an append-only builder that `freeze()`s into `Bytes`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read cursor over a byte source, mirroring `bytes::Buf`.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

/// Write cursor over a growable byte sink, mirroring `bytes::BufMut`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A shared, cheaply clonable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// Read cursor: everything before `start` has been consumed.
    start: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::new(data),
            start: 0,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(bytes: &'static [u8]) -> Bytes {
        Bytes::from_static(bytes)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "advance past end of buffer ({} > {})",
            dst.len(),
            self.len()
        );
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// An append-only byte builder.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u64(0x0102_0304_0506_0708);
        m.put_u32(0x0A0B_0C0D);
        m.put_slice(b"xyz");
        let mut b = m.freeze();
        assert_eq!(b.len(), 15);
        assert_eq!(b.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(b.get_u32(), 0x0A0B_0C0D);
        assert_eq!(&b[..], b"xyz");
        assert_eq!(b.to_vec(), b"xyz".to_vec());
    }

    #[test]
    fn clones_share_storage_but_not_cursor() {
        let mut a = Bytes::from(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let b = a.clone();
        let _ = a.get_u32();
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 8);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![0u8; 3]);
        let _ = b.get_u32();
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(vec![9, 1, 2]);
        let _ = a.get_u8();
        assert_eq!(a, Bytes::from(vec![1, 2]));
        assert_eq!(a, [1u8, 2][..]);
    }

    #[test]
    fn constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"hi")[..], b"hi");
        assert_eq!(&Bytes::copy_from_slice(&[3, 4])[..], &[3, 4]);
        assert_eq!(&Bytes::from(String::from("ok"))[..], b"ok");
    }
}
