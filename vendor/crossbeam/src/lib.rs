//! Offline stand-in for the `crossbeam` API surface this workspace uses:
//! bounded MPMC channels with blocking send/recv, non-blocking `try_recv`
//! / `try_send`, `recv_timeout`, and scoped threads.
//!
//! The channel is a real condvar-paced ring buffer (not a wrapper over
//! `std::sync::mpsc`): senders block while the ring is full, receivers
//! block while it is empty, and both `Sender` and `Receiver` are `Sync`
//! and cloneable — the same semantics `crossbeam::channel::bounded` gives
//! the pipeline runner, including capacity-0 rendezvous channels.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Ring<T> {
        queue: VecDeque<T>,
        /// Receivers currently blocked in `recv`/`recv_timeout`; a
        /// capacity-0 rendezvous send needs one to be waiting.
        rendezvous_waiting: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        cap: usize,
        ring: Mutex<Ring<T>>,
        /// Signalled when an item is pushed (wakes receivers).
        not_empty: Condvar,
        /// Signalled when an item is popped or a receiver arrives
        /// (wakes senders).
        not_full: Condvar,
    }

    /// Create a bounded channel with capacity `cap` (0 = rendezvous: a
    /// send blocks until a receiver is actively waiting).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            cap,
            ring: Mutex::new(Ring {
                queue: VecDeque::with_capacity(cap.max(1)),
                rendezvous_waiting: 0,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.ring.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut ring = self.0.ring.lock().unwrap();
            ring.senders -= 1;
            if ring.senders == 0 {
                drop(ring);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Effective room in the ring: a rendezvous channel has one slot
        /// per actively waiting receiver.
        fn room(shared: &Shared<T>, ring: &Ring<T>) -> bool {
            if shared.cap == 0 {
                ring.queue.len() < ring.rendezvous_waiting
            } else {
                ring.queue.len() < shared.cap
            }
        }

        /// Blocking send; errors only when every receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut ring = self.0.ring.lock().unwrap();
            loop {
                if ring.receivers == 0 {
                    return Err(SendError(msg));
                }
                if Self::room(&self.0, &ring) {
                    ring.queue.push_back(msg);
                    drop(ring);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                ring = self.0.not_full.wait(ring).unwrap();
            }
        }

        /// Non-blocking send; errors when the channel is full or every
        /// receiver was dropped.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut ring = self.0.ring.lock().unwrap();
            if ring.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if Self::room(&self.0, &ring) {
                ring.queue.push_back(msg);
                drop(ring);
                self.0.not_empty.notify_one();
                Ok(())
            } else {
                Err(TrySendError::Full(msg))
            }
        }
    }

    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.ring.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut ring = self.0.ring.lock().unwrap();
            ring.receivers -= 1;
            if ring.receivers == 0 {
                drop(ring);
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; errors only when the channel is empty and
        /// every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut ring = self.0.ring.lock().unwrap();
            ring.rendezvous_waiting += 1;
            if self.0.cap == 0 {
                self.0.not_full.notify_one();
            }
            loop {
                if let Some(msg) = ring.queue.pop_front() {
                    ring.rendezvous_waiting -= 1;
                    drop(ring);
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if ring.senders == 0 {
                    ring.rendezvous_waiting -= 1;
                    return Err(RecvError);
                }
                ring = self.0.not_empty.wait(ring).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut ring = self.0.ring.lock().unwrap();
            if let Some(msg) = ring.queue.pop_front() {
                drop(ring);
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if ring.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut ring = self.0.ring.lock().unwrap();
            ring.rendezvous_waiting += 1;
            if self.0.cap == 0 {
                self.0.not_full.notify_one();
            }
            loop {
                if let Some(msg) = ring.queue.pop_front() {
                    ring.rendezvous_waiting -= 1;
                    drop(ring);
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if ring.senders == 0 {
                    ring.rendezvous_waiting -= 1;
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    ring.rendezvous_waiting -= 1;
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) =
                    self.0.not_empty.wait_timeout(ring, deadline - now).unwrap();
                ring = guard;
            }
        }

        /// Messages currently buffered in the ring.
        pub fn len(&self) -> usize {
            self.0.ring.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// The message could not be delivered because the channel disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }
}

pub mod thread {
    //! Scoped threads, standing in for `crossbeam::thread`: spawned
    //! workers may borrow from the enclosing stack frame and are joined
    //! when the scope closes. Delegates to the standard library's scope
    //! (stable since 1.63), which provides the same guarantee.
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError, TryRecvError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(2);
        tx.send(41).unwrap();
        tx.send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1u8).unwrap();
        let t = thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until rx drains one
        });
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn rendezvous_channel_delivers() {
        let (tx, rx) = bounded(0);
        let t = thread::spawn(move || {
            tx.send(7u8).unwrap();
        });
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 7);
        t.join().unwrap();
    }

    #[test]
    fn try_send_reports_full_then_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded(1);
        tx.try_send(1u8).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_late_send() {
        let (tx, rx) = bounded(1);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(9u8).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        t.join().unwrap();
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx1) = bounded(8);
        let rx2 = rx1.clone();
        for i in 0..8u8 {
            tx.send(i).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..4 {
            got.push(rx1.recv().unwrap());
            got.push(rx2.recv().unwrap());
        }
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_order_preserved_under_load() {
        let (tx, rx) = bounded(4);
        let producer = thread::spawn(move || {
            for i in 0..1000u32 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..1000u32 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        producer.join().unwrap();
    }

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|s| {
            for (chunk, v) in out.chunks_mut(1).zip(&data) {
                s.spawn(move || chunk[0] = v * 10);
            }
        });
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
