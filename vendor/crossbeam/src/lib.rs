//! Offline stand-in for the `crossbeam::channel` API surface this workspace
//! uses: bounded MPSC channels with blocking send/recv, non-blocking
//! `try_recv`, and `recv_timeout`. Backed by `std::sync::mpsc::sync_channel`,
//! which has the same backpressure semantics (capacity 0 = rendezvous).
//!
//! Unlike `std::sync::mpsc::Receiver`, crossbeam receivers are `Sync`; the
//! shim restores that by guarding the receiver with a mutex, which is
//! uncontended in this workspace (one consumer per channel).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Create a bounded channel with capacity `cap` (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(Mutex::new(rx)))
    }

    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; errors only when the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }

        /// Non-blocking send; errors when the channel is full or the
        /// receiver was dropped.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            })
        }
    }

    pub struct Receiver<T>(Mutex<mpsc::Receiver<T>>);

    impl<T> Receiver<T> {
        /// Blocking receive; errors only when every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            // A poisoned lock means a consumer panicked mid-recv; the
            // channel state itself is still coherent.
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// The message could not be delivered because the channel disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError, TryRecvError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(2);
        tx.send(41).unwrap();
        tx.send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1u8).unwrap();
        let t = thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until rx drains one
        });
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn try_send_reports_full_then_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded(1);
        tx.try_send(1u8).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
