//! Offline stand-in for the `criterion` API surface this workspace uses.
//!
//! Registry access is unavailable in this environment, so the statistical
//! harness is replaced by a *smoke runner*: every registered benchmark body
//! executes once (so `cargo bench` still validates each measured path and
//! prints the elapsed time), and the full builder API compiles unchanged.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to each benchmark body; runs the measured routine.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
    }
}

fn run_one(id: &BenchmarkId, body: impl FnOnce(&mut Bencher)) {
    let t0 = Instant::now();
    let mut b = Bencher { _private: () };
    body(&mut b);
    println!("bench {:<40} smoke-ran in {:?}", id.id, t0.elapsed());
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnOnce(&mut Bencher),
    {
        let id = BenchmarkId::new(self.name.clone(), id.into());
        run_one(&id, f);
        self
    }

    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnOnce(&mut Bencher, &T),
    {
        let id = BenchmarkId::new(self.name.clone(), id.into());
        run_one(&id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_bodies_execute_once() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("unit", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);

        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(8));
        let mut batched = 0;
        group.bench_with_input(BenchmarkId::new("x", 4), &4usize, |b, &n| {
            b.iter_batched(|| n, |v| batched += v, BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(batched, 4);
    }
}
