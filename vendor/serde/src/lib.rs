//! Offline stand-in for `serde`.
//!
//! The workspace uses serde purely as schema annotation (`#[derive(Serialize)]`
//! on report/config structs); nothing serialises through serde at runtime —
//! JSON/CSV emission is hand-rolled in `scc-bench::report`. This crate keeps
//! the annotations compiling without the registry: the traits are empty
//! markers with blanket impls, and the derives are no-ops re-exported from
//! the sibling `serde_derive` stub.

/// Marker trait mirroring `serde::Serialize` (no methods; blanket impl).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize` (no methods; blanket impl).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

// Same-name derive macros, as in real serde (macro namespace is distinct
// from the trait namespace).
pub use serde_derive::{Deserialize, Serialize};
