# Regenerate the paper's figure plots from the simulator's CSV series.
#
#   cargo run --release -p scc-bench --bin experiments csv target/csv
#   gnuplot -e "csvdir='target/csv'" docs/plots/paper_figures.gp
#
# Produces fig09.png ... fig17.png next to the CSVs, in the style of the
# paper's gnuplot figures.

if (!exists("csvdir")) csvdir = "target/csv"
set datafile separator ","
set terminal pngcairo size 720,480
set key top right
set grid

set xlabel "number of pipelines"
set ylabel "time in sec"

set output csvdir."/fig09.png"
set title "Rendering time with 1 Renderer"
plot csvdir."/fig09.csv" skip 1  using 1:2 with linespoints title "Unordered", \
     "" skip 1  using 1:3 with linespoints title "Ordered", \
     "" skip 1  using 1:4 with linespoints title "Flipped"

set output csvdir."/fig10.png"
set title "Rendering time with n Renderer"
plot csvdir."/fig10.csv" skip 1  using 1:2 with linespoints title "Unordered", \
     "" skip 1  using 1:3 with linespoints title "Ordered", \
     "" skip 1  using 1:4 with linespoints title "Flipped"

set output csvdir."/fig11.png"
set title "Rendering time with MCPC for rendering"
plot csvdir."/fig11.csv" skip 1  using 1:2 with linespoints title "Unordered", \
     "" skip 1  using 1:3 with linespoints title "Ordered", \
     "" skip 1  using 1:4 with linespoints title "Flipped"

set output csvdir."/fig12.png"
set title "Rendering time with increasing image sizes"
set xlabel "image side length (px)"
plot csvdir."/fig12.csv" skip 1  using 1:3 with linespoints title "Time"

set output csvdir."/fig15.png"
set title "Idle times with MCPC renderer and seven pipelines"
set style data histogram
set style fill solid 0.5
set xlabel "stage"
set ylabel "idle time in ms"
plot csvdir."/fig15.csv" skip 1  using 3:xtic(1) title "Median", \
     "" skip 1  using 2 title "Q1", \
     "" skip 1  using 4 title "Q3"

set output csvdir."/fig17.png"
set title "SCC power consumption with fast blur stage"
set style data lines
set xlabel "time in sec"
set ylabel "power in watt"
set yrange [35:50]
plot csvdir."/fig17.csv" skip 1  using 2:(strcol(1) eq "all stages 533MHz" ? $3 : 1/0) with lines title "all stages 533MHz", \
     "" skip 1  using 2:(strcol(1) eq "blur stage 800MHz" ? $3 : 1/0) with lines title "blur stage 800MHz", \
     "" skip 1  using 2:(strcol(1) eq "533MHz, 800MHz, 400MHz" ? $3 : 1/0) with lines title "533/800/400MHz"
